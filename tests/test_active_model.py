"""Tests for the *active* access-control model (the §3 alternative).

The active model synchronizes with every remote child before reclaiming a
page; it stays correct but its reclaim cost grows with the fan-out —
exactly why MITOSIS adopts the passive model instead.
"""

import pytest

from repro.cluster import Cluster
from repro.containers import ContainerRuntime, hello_world_image
from repro.core import MitosisDeployment
from repro.kernel import Kernel
from repro.rdma import RdmaFabric, RpcRuntime
from repro.sim import Environment


def build_rig(access_control, num_machines=4):
    env = Environment()
    cluster = Cluster(env, num_machines=num_machines, num_racks=1)
    fabric = RdmaFabric(env, cluster)
    rpc = RpcRuntime(env, fabric)
    kernels = [Kernel(env, m) for m in cluster]
    runtimes = [ContainerRuntime(env, k) for k in kernels]
    deployment = MitosisDeployment(env, cluster, fabric, rpc, runtimes,
                                   access_control=access_control)
    return env, cluster, kernels, runtimes, deployment


def run(env, gen):
    return env.run(env.process(gen))


class TestActiveModelCorrectness:
    def test_children_registered_at_parent(self):
        env, cluster, kernels, runtimes, deployment = build_rig("active")
        node0 = deployment.node(cluster.machine(0))

        def body():
            parent = yield from runtimes[0].cold_start(hello_world_image())
            meta = yield from node0.fork_prepare(parent)
            for idx in (1, 2):
                node = deployment.node(cluster.machine(idx))
                yield from node.fork_resume(meta)
            return node0.service.children_of(meta.handler_id)

        children = run(env, body())
        assert len(children) == 2
        assert {m for m, _ in children} == {1, 2}

    def test_reclaim_invalidates_then_child_uses_rpc(self):
        env, cluster, kernels, runtimes, deployment = build_rig("active")
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))

        def body():
            parent = yield from runtimes[0].cold_start(hello_world_image())
            heap = parent.task.address_space.vmas[3]
            yield from kernels[0].write_page(parent.task, heap.start_vpn,
                                             "guarded")
            meta = yield from node0.fork_prepare(parent)
            child = yield from node1.fork_resume(meta)
            _, shadow = node0.service.lookup(meta.handler_id, meta.auth_key)
            yield from kernels[0].reclaim(shadow, [heap.start_vpn])
            pte = child.task.address_space.page_table.entry(heap.start_vpn)
            invalidated = pte.remote and pte.remote_pfn is None
            content = yield from kernels[1].touch(child.task, heap.start_vpn)
            return invalidated, content

        invalidated, content = run(env, body())
        assert invalidated     # the parent proactively cleared the PA
        assert content == "guarded"
        node1 = deployment.node(cluster.machine(1))
        # The read went through RPC (Table 2's no-PA row) — and, since the
        # active model never destroyed the DC target, not via a NAK.
        assert node1.pager.counters["revocation_fallbacks"] == 0
        assert node1.pager.counters["fallback_rpcs"] == 1

    def test_dc_targets_survive_reclaim_in_active_mode(self):
        env, cluster, kernels, runtimes, deployment = build_rig("active")
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))

        def body():
            parent = yield from runtimes[0].cold_start(hello_world_image())
            heap = parent.task.address_space.vmas[3]
            meta = yield from node0.fork_prepare(parent)
            child = yield from node1.fork_resume(meta)
            _, shadow = node0.service.lookup(meta.handler_id, meta.auth_key)
            yield from kernels[0].reclaim(shadow, [heap.start_vpn])
            # Other pages of the same VMA still fly over RDMA.
            yield from kernels[1].touch(child.task, heap.start_vpn + 1)
            return node1.pager.counters.as_dict()

        counters = run(env, body())
        assert counters["rdma_reads"] >= 1


class TestActiveModelCost:
    def test_reclaim_cost_grows_with_children(self):
        def reclaim_time(num_children):
            env, cluster, kernels, runtimes, deployment = build_rig(
                "active", num_machines=max(4, num_children + 2))
            node0 = deployment.node(cluster.machine(0))

            def body():
                parent = yield from runtimes[0].cold_start(
                    hello_world_image())
                heap = parent.task.address_space.vmas[3]
                meta = yield from node0.fork_prepare(parent)
                for idx in range(1, num_children + 1):
                    node = deployment.node(cluster.machine(idx))
                    yield from node.fork_resume(meta)
                _, shadow = node0.service.lookup(meta.handler_id,
                                                 meta.auth_key)
                start = env.now
                yield from kernels[0].reclaim(shadow, [heap.start_vpn])
                return env.now - start

            return run(env, body())

        one = reclaim_time(1)
        four = reclaim_time(4)
        assert four > 2.5 * one

    def test_passive_reclaim_flat_in_children(self):
        def reclaim_time(num_children):
            env, cluster, kernels, runtimes, deployment = build_rig(
                "passive", num_machines=max(4, num_children + 2))
            node0 = deployment.node(cluster.machine(0))

            def body():
                parent = yield from runtimes[0].cold_start(
                    hello_world_image())
                heap = parent.task.address_space.vmas[3]
                meta = yield from node0.fork_prepare(parent)
                for idx in range(1, num_children + 1):
                    node = deployment.node(cluster.machine(idx))
                    yield from node.fork_resume(meta)
                _, shadow = node0.service.lookup(meta.handler_id,
                                                 meta.auth_key)
                start = env.now
                yield from kernels[0].reclaim(shadow, [heap.start_vpn])
                return env.now - start

            return run(env, body())

        assert reclaim_time(1) == pytest.approx(reclaim_time(4))

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            build_rig("psychic")
