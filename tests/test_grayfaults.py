"""Tests for the gray-failure & overload resilience layer.

Covers the resilience primitives (circuit breaker state machine, retry
budgets, deadline contexts, hedge-delay tracking), the injector's
degraded-mode queries (slow NICs, lossy links, CPU steal), bounded
admission waits, end-to-end budget conservation over a browned-out
replay, and a hypothesis property that hedged remote reads never
double-commit a page no matter how the race resolves.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import params, sanitizers
from repro.cluster import Cluster
from repro.containers import ContainerRuntime, hello_world_image
from repro.core import MitosisDeployment
from repro.faults import (
    AdmissionShed,
    CpuSteal,
    DeadlineExceeded,
    FaultInjector,
    LossyLink,
    SlowNic,
)
from repro.fn import FnCluster, MitosisPolicy
from repro.kernel import Kernel, VmaKind
from repro.rdma import RdmaFabric, RpcRuntime
from repro.resilience import (
    CircuitBreaker,
    HedgeTracker,
    InvocationContext,
    RetryBudget,
)
from repro.sim import Environment
from repro.workloads import tc0_profile

SETTINGS = settings(max_examples=12, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def run(env, gen):
    return env.run(env.process(gen))


# --- Circuit breaker state machine -------------------------------------------------
class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=100.0):
        return CircuitBreaker("peer", failure_threshold=threshold,
                              cooldown=cooldown)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", cooldown=0.0)

    def test_starts_closed_and_allows(self):
        breaker = self.make()
        assert breaker.state_at(0.0) == "closed"
        for _ in range(10):
            assert breaker.allow(0.0)

    def test_threshold_consecutive_failures_open(self):
        breaker = self.make(threshold=3)
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        assert breaker.state_at(2.0) == "closed"
        breaker.record_failure(3.0)
        assert breaker.state_at(3.0) == "open"
        assert not breaker.allow(3.0)
        assert breaker.transitions == [(3.0, "closed", "open")]

    def test_success_resets_the_failure_count(self):
        breaker = self.make(threshold=3)
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        breaker.record_success(2.5)
        breaker.record_failure(3.0)
        breaker.record_failure(4.0)
        assert breaker.state_at(4.0) == "closed"

    def test_cooldown_elapse_is_half_open_lazily(self):
        breaker = self.make(threshold=1, cooldown=100.0)
        breaker.record_failure(10.0)
        assert breaker.state_at(10.0) == "open"
        assert breaker.state_at(109.9) == "open"
        # No event fired: the half-open state is derived from the clock.
        assert breaker.state_at(110.0) == "half-open"

    def test_half_open_admits_exactly_one_probe(self):
        breaker = self.make(threshold=1, cooldown=100.0)
        breaker.record_failure(0.0)
        assert breaker.allow(100.0)       # the probe
        assert not breaker.allow(100.0)   # concurrent caller: rejected
        assert not breaker.allow(150.0)   # still in flight

    def test_probe_success_closes(self):
        breaker = self.make(threshold=1, cooldown=100.0)
        breaker.record_failure(0.0)
        assert breaker.allow(100.0)
        breaker.record_success(105.0)
        assert breaker.state_at(105.0) == "closed"
        assert breaker.allow(105.0)
        assert breaker.transitions == [
            (0.0, "closed", "open"),
            (100.0, "open", "half-open"),
            (105.0, "half-open", "closed"),
        ]

    def test_probe_failure_reopens_for_another_cooldown(self):
        breaker = self.make(threshold=1, cooldown=100.0)
        breaker.record_failure(0.0)
        assert breaker.allow(100.0)
        breaker.record_failure(101.0)
        assert breaker.state_at(101.0) == "open"
        assert not breaker.allow(150.0)       # 101 + 100 not yet elapsed
        assert breaker.allow(201.0)           # next probe window

    def test_fast_failed_callers_do_not_recount(self):
        breaker = self.make(threshold=1, cooldown=100.0)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)  # a fast-failed caller reporting back
        # The open window still starts at t=0, not t=1.
        assert breaker.state_at(100.0) == "half-open"

    def test_transition_log_passes_the_sanitizer(self):
        breaker = self.make(threshold=1, cooldown=100.0)
        breaker.record_failure(0.0)
        assert breaker.allow(100.0)
        breaker.record_failure(101.0)
        assert breaker.allow(201.0)
        breaker.record_success(202.0)
        assert sanitizers.audit_resilience(
            breakers=[breaker], now=202.0) == []

    def test_stuck_open_breaker_is_a_finding(self):
        breaker = self.make(threshold=1, cooldown=1e9)
        breaker.record_failure(0.0)
        findings = sanitizers.audit_resilience(breakers=[breaker], now=10.0)
        assert len(findings) == 1
        assert "still open" in findings[0]


# --- Retry budgets and invocation contexts -----------------------------------------
class TestRetryBudget:
    def test_spend_and_ledger(self):
        budget = RetryBudget(3)
        assert budget.try_spend(1, label="a")
        assert budget.try_spend(2, label="b")
        assert budget.remaining == 0
        assert budget.ledger == [("a", 1), ("b", 2)]

    def test_exhaustion_refuses_without_debit(self):
        budget = RetryBudget(1)
        assert budget.try_spend(1)
        assert not budget.try_spend(1)
        assert budget.spent == 1
        assert len(budget.ledger) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(-1)
        with pytest.raises(ValueError):
            RetryBudget(2).try_spend(-1)

    def test_conservation_audit_catches_off_books_spend(self):
        ctx = InvocationContext(0.0, retry_budget=RetryBudget(4))
        ctx.retry_budget.try_spend(1)
        assert sanitizers.audit_resilience(contexts=[ctx]) == []
        ctx.retry_budget.spent = 3  # a retry taken off the books
        findings = sanitizers.audit_resilience(contexts=[ctx])
        assert len(findings) == 1
        assert "off the books" in findings[0]

    def test_conservation_audit_catches_overdraft(self):
        ctx = InvocationContext(0.0, retry_budget=RetryBudget(1))
        ctx.retry_budget.try_spend(1)
        ctx.retry_budget.spent = 2
        ctx.retry_budget.ledger.append(("forged", 1))
        findings = sanitizers.audit_resilience(contexts=[ctx])
        assert len(findings) == 1
        assert "overdraft" in findings[0]

    def test_context_deadline_semantics(self):
        ctx = InvocationContext(0.0, deadline_at=100.0)
        assert ctx.remaining(40.0) == 60.0
        assert not ctx.expired(100.0)
        assert ctx.expired(100.1)
        open_ended = InvocationContext(0.0)
        assert open_ended.remaining(1e12) == float("inf")
        assert not open_ended.expired(1e12)


class TestHedgeTracker:
    def test_initial_delay_until_enough_samples(self):
        tracker = HedgeTracker(initial_delay=params.HEDGE_INITIAL_DELAY,
                               min_samples=4)
        for latency in (1.0, 2.0, 3.0):
            tracker.record(latency)
        assert tracker.delay() == params.HEDGE_INITIAL_DELAY
        tracker.record(4.0)
        assert tracker.delay() == pytest.approx(4.0, rel=0.05)

    def test_window_slides(self):
        tracker = HedgeTracker(min_samples=2, window=4)
        for latency in (100.0, 100.0, 100.0, 100.0, 1.0, 1.0, 1.0, 1.0):
            tracker.record(latency)
        assert len(tracker) == 4
        assert tracker.delay() == pytest.approx(1.0)


# --- Degraded-mode injector queries ------------------------------------------------
class TestDegradedQueries:
    @pytest.fixture
    def injector(self):
        env = Environment()
        cluster = Cluster(env, num_machines=4, num_racks=1)
        fabric = RdmaFabric(env, cluster)
        return FaultInjector(env, cluster).install(fabric)

    def test_healthy_identities(self, injector):
        assert not injector.any_degraded
        assert injector.nic_slowdown(0) == 1.0
        assert injector.path_slowdown(0, 1) == 1.0
        assert injector.link_drop_rate(0, 1) == 0.0
        assert injector.cpu_slowdown(0) == 1.0

    def test_slow_nic_nests_multiplicatively(self, injector):
        injector.slow_nic(0, 3.0)
        injector.slow_nic(0, 2.0)
        assert injector.nic_slowdown(0) == 6.0
        # The slower endpoint dominates the path.
        assert injector.path_slowdown(0, 1) == 6.0
        assert injector.path_slowdown(1, 0) == 6.0
        injector.restore_nic_speed(0, 3.0)
        assert injector.nic_slowdown(0) == 2.0
        injector.restore_nic_speed(0, 2.0)
        assert not injector.any_degraded

    def test_lossy_links_combine_independently(self, injector):
        h1 = injector.make_link_lossy(0, 1, 0.5, extra_latency=2.0)
        h2 = injector.make_link_lossy(1, 0, 0.5, extra_latency=3.0)
        assert injector.link_drop_rate(0, 1) == pytest.approx(0.75)
        assert injector.link_drop_rate(1, 0) == pytest.approx(0.75)
        assert injector.link_extra_latency(0, 1) == pytest.approx(5.0)
        assert injector.link_drop_rate(0, 2) == 0.0
        injector.restore_link_quality(h1)
        injector.restore_link_quality(h2)
        assert not injector.any_degraded

    def test_cpu_steal_restore_roundtrip(self, injector):
        injector.steal_cpu(2, 4.0)
        assert injector.cpu_slowdown(2) == 4.0
        assert injector.any_degraded
        injector.restore_cpu(2, 4.0)
        assert injector.cpu_slowdown(2) == 1.0
        assert not injector.any_degraded

    def test_schedule_events_validate(self):
        with pytest.raises(ValueError):
            SlowNic(0.0, 0, factor=0.5, down_for=1.0)
        with pytest.raises(ValueError):
            SlowNic(0.0, 0, factor=2.0, down_for=None)
        with pytest.raises(ValueError):
            LossyLink(0.0, 1, 1, drop_rate=0.1, down_for=1.0)
        with pytest.raises(ValueError):
            LossyLink(0.0, 0, 1, drop_rate=1.0, down_for=1.0)
        with pytest.raises(ValueError):
            CpuSteal(0.0, 0, factor=1.0, down_for=1.0)


# --- Bounded admission waits -------------------------------------------------------
def make_resilient_cluster(**kwargs):
    defaults = dict(num_invokers=2, num_machines=5, num_dfs_osds=2, seed=1)
    defaults.update(kwargs)
    fn = FnCluster(MitosisPolicy(), **defaults)
    fn.enable_faults()
    fn.enable_resilience()
    return fn


class TestBoundedAdmission:
    def saturate(self, invoker):
        """Take every admission slot so later waiters queue."""
        grants = [invoker.admission.acquire()
                  for _ in range(invoker.admission.capacity)]
        assert all(g.triggered for g in grants)
        return grants

    def test_reroute_broadcast_sheds_queued_request(self):
        fn = make_resilient_cluster()
        invoker = fn.invokers[0]
        self.saturate(invoker)
        ctx = InvocationContext(0.0, deadline_at=1e12)

        def waiter():
            yield from fn._admit_bounded(invoker, ctx)

        proc = fn.env.process(waiter())

        def opener():
            yield fn.env.timeout(10.0)
            invoker.reroute.open()

        fn.env.process(opener())
        with pytest.raises(AdmissionShed):
            fn.env.run(proc)
        assert fn.env.now == pytest.approx(10.0)
        # The queued spot was given back, not leaked.
        assert invoker.admission.queued == 0

    def test_deadline_sheds_queued_request(self):
        fn = make_resilient_cluster()
        invoker = fn.invokers[0]
        self.saturate(invoker)
        ctx = InvocationContext(0.0, deadline_at=25.0)

        def waiter():
            yield from fn._admit_bounded(invoker, ctx)

        with pytest.raises(DeadlineExceeded):
            fn.env.run(fn.env.process(waiter()))
        assert fn.env.now == pytest.approx(25.0)
        assert invoker.admission.queued == 0

    def test_grant_before_either_bound_admits(self):
        fn = make_resilient_cluster()
        invoker = fn.invokers[0]
        grants = self.saturate(invoker)
        ctx = InvocationContext(0.0, deadline_at=100.0)

        def waiter():
            yield from fn._admit_bounded(invoker, ctx)
            return fn.env.now

        def releaser():
            yield fn.env.timeout(5.0)
            grants.pop()
            invoker.admission.release()

        fn.env.process(releaser())
        admitted_at = fn.env.run(fn.env.process(waiter()))
        assert admitted_at == pytest.approx(5.0)
        # No reroute waiter left behind on the broadcast gate.
        assert invoker.reroute._waiters == []


# --- End-to-end brownout conservation ----------------------------------------------
class TestBrownoutEndToEnd:
    def test_budgets_conserve_and_rig_audits_clean(self):
        fn = make_resilient_cluster()
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)
            seed_invoker, _, _ = fn.policy.seeds[profile.name]
            machine_id = seed_invoker.machine.machine_id
            fn.faults.apply([
                SlowNic(0.0, machine_id, factor=400.0,
                        down_for=3 * params.SEC),
                CpuSteal(0.0, machine_id, factor=6.0,
                         down_for=3 * params.SEC),
            ])
            records = []
            for _ in range(40):
                records.append((yield from fn.invoke("TC0")))
                yield fn.env.timeout(params.FN_INVOCATION_DEADLINE / 20.0)
            return records

        records = run(fn.env, body())
        fn.stop_fault_daemons()
        assert len(records) == 40
        assert all(r.outcome in ("ok", "recovered", "shed")
                   for r in records)
        # One context was minted per invocation and every budget balances.
        assert len(fn.contexts) == 40
        assert sanitizers.audit_rig(fn) == []
        for ctx in fn.contexts:
            assert ctx.retry_budget.spent <= ctx.retry_budget.granted

    def test_shed_records_stay_out_of_latency_percentiles(self):
        fn = make_resilient_cluster()
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)
            seed_invoker, _, _ = fn.policy.seeds[profile.name]
            # An extreme brownout: every admitted start outlives the
            # deadline, so everything queued behind the 2x8 admission
            # slots must shed rather than run late.
            fn.faults.apply([SlowNic(0.0, seed_invoker.machine.machine_id,
                                     factor=1e5, down_for=600 * params.SEC)])
            procs = [fn.submit("TC0") for _ in range(40)]
            records = []
            for proc in procs:
                records.append((yield proc))
            return records

        records = run(fn.env, body())
        fn.stop_fault_daemons()
        shed = [r for r in records if r.outcome == "shed"]
        assert shed, "expected deadline sheds under an extreme brownout"
        assert fn.counters["deadline_shed"] >= len(shed)
        for record in shed:
            # Zero-width start/finish stamp: a shed invocation never ran.
            assert record.started_at == record.finished_at
            assert record.execution_latency == 0.0
            assert record.invoker_index == -1
            assert record.start_kind == "none"


# --- Hedged reads never double-commit ----------------------------------------------
def build_mitosis_rig(seed=0):
    env = Environment()
    cluster = Cluster(env, num_machines=3, num_racks=1)
    fabric = RdmaFabric(env, cluster)
    rpc = RpcRuntime(env, fabric)
    kernels = [Kernel(env, m) for m in cluster]
    runtimes = [ContainerRuntime(env, k) for k in kernels]
    deployment = MitosisDeployment(env, cluster, fabric, rpc, runtimes,
                                   enable_sharing=True, transport="dct")
    return env, cluster, kernels, runtimes, deployment


class TestHedgedReadsProperty:
    @SETTINGS
    @given(delay_us=st.floats(min_value=0.05, max_value=8.0),
           num_pages=st.integers(min_value=1, max_value=6),
           num_children=st.integers(min_value=1, max_value=3))
    def test_never_double_commits_a_page(self, delay_us, num_pages,
                                         num_children):
        """Whatever the hedge race outcome, each fault commits one frame.

        A tiny hedge delay forces the clone to fire on (almost) every
        read; concurrent children faulting the same pages add coalescing
        and shared-cache COW races on top.  The PTE-install guard must
        keep every (task, vpn) at exactly one mapped frame, and the
        refcount sanitizer must stay clean.
        """
        env, cluster, kernels, runtimes, deployment = build_mitosis_rig()
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))
        # Constant tiny delay: min_samples never reached, so every read
        # uses `delay_us` and the clone path actually exercises.
        node1.pager.enable_resilience(breakers=True, hedging=True)
        node1.pager.resilience.hedge = HedgeTracker(
            initial_delay=delay_us, min_samples=10 ** 9)

        def body():
            parent = yield from runtimes[0].cold_start(hello_world_image())
            meta = yield from node0.fork_prepare(parent)
            children = []
            for _ in range(num_children):
                children.append((yield from node1.fork_resume(meta)))
            heap = next(v for v in parent.task.address_space.vmas
                        if v.kind == VmaKind.HEAP)
            procs = []
            for child in children:
                for page in range(num_pages):
                    procs.append(env.process(kernels[1].touch(
                        child.task, heap.start_vpn + page)))
            for proc in procs:
                yield proc
            return children, heap

        children, heap = env.run(env.process(body()))

        for child in children:
            table = child.task.address_space.page_table
            for page in range(num_pages):
                pte = table.entry(heap.start_vpn + page)
                assert pte.present
                assert pte.frame is not None and pte.frame.live
        assert sanitizers.audit_frame_refcounts(kernels) == []
        counters = node1.pager.counters
        assert (counters["hedges_issued"]
                == counters["hedges_won"] + counters["hedges_wasted"])

    def test_hedge_win_still_single_commit(self):
        """Force the clone to win: the primary is interrupted, the clone's
        completion installs the page once, and the counters agree."""
        env, cluster, kernels, runtimes, deployment = build_mitosis_rig()
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))
        node1.pager.enable_resilience(breakers=True, hedging=True)
        node1.pager.resilience.hedge = HedgeTracker(
            initial_delay=0.01, min_samples=10 ** 9)

        real_dcqp = node1.pager.net_daemon.dcqp
        state = {"armed": False, "stalled": False}

        class _Stall:
            def read(self, *args, **kwargs):
                yield env.timeout(10 * params.SEC)
                return params.PAGE_SIZE

        def stalling_dcqp():
            if state["armed"] and not state["stalled"]:
                # First leg after arming (the primary) gets a QP whose
                # read stalls far past the clone's completion.
                state["stalled"] = True
                return _Stall()
            return real_dcqp()

        node1.pager.net_daemon.dcqp = stalling_dcqp

        def body():
            parent = yield from runtimes[0].cold_start(hello_world_image())
            meta = yield from node0.fork_prepare(parent)
            child = yield from node1.fork_resume(meta)
            state["armed"] = True
            heap = next(v for v in parent.task.address_space.vmas
                        if v.kind == VmaKind.HEAP)
            yield from kernels[1].touch(child.task, heap.start_vpn)
            return child, heap

        child, heap = env.run(env.process(body()))
        pte = child.task.address_space.page_table.entry(heap.start_vpn)
        assert pte.present
        assert node1.pager.counters["hedges_won"] == 1
        assert node1.pager.counters["hedges_wasted"] == 0
        assert sanitizers.audit_frame_refcounts(kernels) == []
