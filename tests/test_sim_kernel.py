"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    EmptySchedule,
    Environment,
    EventAlreadyTriggered,
    Gate,
    Interrupt,
    Resource,
    SeededStreams,
    SimulationError,
    Store,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()

    def body():
        yield env.timeout(5.0)
        return env.now

    proc = env.process(body())
    assert env.run(proc) == 5.0


def test_timeouts_fire_in_order():
    env = Environment()
    seen = []

    def waiter(delay):
        yield env.timeout(delay)
        seen.append(delay)

    for delay in (3.0, 1.0, 2.0):
        env.process(waiter(delay))
    env.run()
    assert seen == [1.0, 2.0, 3.0]


def test_equal_time_events_fifo():
    env = Environment()
    seen = []

    def waiter(tag):
        yield env.timeout(1.0)
        seen.append(tag)

    for tag in "abc":
        env.process(waiter(tag))
    env.run()
    assert seen == ["a", "b", "c"]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_process_return_value():
    env = Environment()

    def body():
        yield env.timeout(1.0)
        return "done"

    assert env.run(env.process(body())) == "done"


def test_process_waits_on_process():
    env = Environment()

    def child():
        yield env.timeout(2.0)
        return 42

    def parent():
        value = yield env.process(child())
        return value + 1

    assert env.run(env.process(parent())) == 43


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    def parent():
        try:
            yield env.process(child())
        except RuntimeError as exc:
            return str(exc)

    assert env.run(env.process(parent())) == "boom"


def test_unhandled_process_exception_surfaces():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        raise RuntimeError("unseen")

    env.process(child())
    with pytest.raises(RuntimeError, match="unseen"):
        env.run()


def test_run_until_time_stops_clock():
    env = Environment()

    def body():
        yield env.timeout(100.0)

    env.process(body())
    env.run(until=30.0)
    assert env.now == 30.0


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_run_until_event_never_fires_raises():
    env = Environment()
    pending = env.event()
    with pytest.raises(EmptySchedule):
        env.run(pending)


def test_manual_event_succeed():
    env = Environment()
    evt = env.event()

    def setter():
        yield env.timeout(2.0)
        evt.succeed("payload")

    def getter():
        value = yield evt
        return (env.now, value)

    env.process(setter())
    assert env.run(env.process(getter())) == (2.0, "payload")


def test_event_double_succeed_rejected():
    env = Environment()
    evt = env.event()
    evt.succeed(1)
    with pytest.raises(EventAlreadyTriggered):
        evt.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_all_of_waits_for_all():
    env = Environment()

    def body():
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(3.0, value="b")
        results = yield AllOf(env, [t1, t2])
        return (env.now, sorted(results.values()))

    assert env.run(env.process(body())) == (3.0, ["a", "b"])


def test_any_of_fires_on_first():
    env = Environment()

    def body():
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        results = yield AnyOf(env, [t1, t2])
        return (env.now, list(results.values()))

    assert env.run(env.process(body())) == (1.0, ["fast"])


def test_condition_operators():
    env = Environment()

    def body():
        t1 = env.timeout(1.0)
        t2 = env.timeout(2.0)
        yield t1 & t2
        return env.now

    assert env.run(env.process(body())) == 2.0


def test_empty_all_of_fires_immediately():
    env = Environment()

    def body():
        result = yield AllOf(env, [])
        return result

    assert env.run(env.process(body())) == {}


def test_interrupt_delivers_cause():
    env = Environment()

    def victim():
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, env.now)

    def attacker(target):
        yield env.timeout(5.0)
        target.interrupt(cause="revoked")

    target = env.process(victim())
    env.process(attacker(target))
    assert env.run(target) == ("interrupted", "revoked", 5.0)


def test_interrupt_dead_process_rejected():
    env = Environment()

    def body():
        yield env.timeout(1.0)

    proc = env.process(body())
    env.run(proc)
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_self_interrupt_rejected():
    env = Environment()

    def body():
        with pytest.raises(SimulationError):
            env.active_process.interrupt()
        yield env.timeout(0)

    env.run(env.process(body()))


class TestResource:
    def test_capacity_enforced(self):
        env = Environment()
        res = Resource(env, capacity=2)
        order = []

        def worker(tag):
            yield res.acquire()
            order.append((tag, env.now))
            yield env.timeout(10.0)
            res.release()

        for tag in "abc":
            env.process(worker(tag))
        env.run()
        assert order == [("a", 0.0), ("b", 0.0), ("c", 10.0)]

    def test_fifo_wakeup(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def worker(tag, start):
            yield env.timeout(start)
            yield res.acquire()
            order.append(tag)
            yield env.timeout(5.0)
            res.release()

        env.process(worker("first", 0.0))
        env.process(worker("second", 1.0))
        env.process(worker("third", 2.0))
        env.run()
        assert order == ["first", "second", "third"]

    def test_release_without_acquire_rejected(self):
        env = Environment()
        res = Resource(env)
        with pytest.raises(SimulationError):
            res.release()

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_counters(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder():
            yield res.acquire()
            yield env.timeout(10.0)
            res.release()

        def observer():
            yield env.timeout(1.0)
            return (res.in_use, res.queued)

        env.process(holder())
        env.process(holder())
        obs = env.process(observer())
        assert env.run(obs) == (1, 1)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)

        def body():
            store.put("x")
            value = yield store.get()
            return value

        assert env.run(env.process(body())) == "x"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)

        def producer():
            yield env.timeout(7.0)
            store.put("late")

        def consumer():
            value = yield store.get()
            return (value, env.now)

        env.process(producer())
        assert env.run(env.process(consumer())) == ("late", 7.0)

    def test_fifo_items(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)

        def body():
            first = yield store.get()
            second = yield store.get()
            return [first, second]

        assert env.run(env.process(body())) == [1, 2]

    def test_len(self):
        env = Environment()
        store = Store(env)
        store.put("a")
        assert len(store) == 1


class TestGate:
    def test_broadcast(self):
        env = Environment()
        gate = Gate(env)
        woken = []

        def waiter(tag):
            value = yield gate.wait()
            woken.append((tag, value))

        def opener():
            yield env.timeout(3.0)
            gate.open("go")

        env.process(waiter("a"))
        env.process(waiter("b"))
        env.process(opener())
        env.run()
        assert sorted(woken) == [("a", "go"), ("b", "go")]

    def test_rearm(self):
        env = Environment()
        gate = Gate(env)
        count = gate.open()
        assert count == 0


class TestSeededStreams:
    def test_deterministic_across_instances(self):
        a = SeededStreams(seed=7).stream("x").random()
        b = SeededStreams(seed=7).stream("x").random()
        assert a == b

    def test_streams_independent(self):
        streams = SeededStreams(seed=7)
        first = [streams.stream("a").random() for _ in range(3)]
        fresh = SeededStreams(seed=7)
        fresh.stream("b").random()  # interleave another stream
        second = [fresh.stream("a").random() for _ in range(3)]
        assert first == second

    def test_different_seeds_differ(self):
        assert (SeededStreams(1).stream("x").random()
                != SeededStreams(2).stream("x").random())

    def test_exponential_positive(self):
        streams = SeededStreams(seed=3)
        for _ in range(100):
            assert streams.exponential("arrivals", mean=10.0) > 0
