"""Unit tests for the cluster hardware model."""

import pytest

from repro import params
from repro.cluster import Cluster, MemoryAccount, OutOfMemoryError
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


class TestMemoryAccount:
    def test_alloc_free_roundtrip(self):
        account = MemoryAccount(capacity=1000)
        account.alloc(400)
        assert account.used == 400
        assert account.available == 600
        account.free(400)
        assert account.used == 0

    def test_over_capacity_rejected(self):
        account = MemoryAccount(capacity=100)
        with pytest.raises(OutOfMemoryError):
            account.alloc(101)

    def test_peak_tracks_high_water_mark(self):
        account = MemoryAccount(capacity=1000)
        account.alloc(700)
        account.free(500)
        account.alloc(100)
        assert account.peak == 700
        assert account.used == 300

    def test_free_more_than_used_rejected(self):
        account = MemoryAccount(capacity=100)
        account.alloc(10)
        with pytest.raises(ValueError):
            account.free(20)

    def test_negative_amounts_rejected(self):
        account = MemoryAccount(capacity=100)
        with pytest.raises(ValueError):
            account.alloc(-1)
        with pytest.raises(ValueError):
            account.free(-1)


class TestCluster:
    def test_paper_testbed_shape(self, env):
        cluster = Cluster(env)
        assert len(cluster) == 24
        invokers, balancers = cluster.split_roles()
        assert len(invokers) == 18
        assert len(balancers) == 6

    def test_machines_spread_over_racks(self, env):
        cluster = Cluster(env, num_machines=4, num_racks=2)
        racks = [m.rack for m in cluster]
        assert racks == [0, 1, 0, 1]

    def test_same_rack_wire_latency_zero(self, env):
        cluster = Cluster(env, num_machines=4, num_racks=2)
        m0, m2 = cluster.machine(0), cluster.machine(2)
        assert cluster.wire_latency(m0, m2) == 0.0

    def test_cross_rack_extra_latency(self, env):
        cluster = Cluster(env, num_machines=4, num_racks=2)
        m0, m1 = cluster.machine(0), cluster.machine(1)
        assert cluster.wire_latency(m0, m1) == params.CROSS_RACK_EXTRA_LATENCY

    def test_loopback_zero(self, env):
        cluster = Cluster(env, num_machines=2)
        m0 = cluster.machine(0)
        assert cluster.wire_latency(m0, m0) == 0.0

    def test_too_many_invokers_rejected(self, env):
        cluster = Cluster(env, num_machines=4)
        with pytest.raises(ValueError):
            cluster.split_roles(num_invokers=5)

    def test_machine_defaults(self, env):
        cluster = Cluster(env, num_machines=1)
        machine = cluster.machine(0)
        assert machine.cores.capacity == params.CORES_PER_MACHINE
        assert machine.memory.capacity == params.DRAM_PER_MACHINE
        assert machine.nic is None

    def test_invalid_shapes_rejected(self, env):
        with pytest.raises(ValueError):
            Cluster(env, num_machines=0)
        with pytest.raises(ValueError):
            Cluster(env, num_machines=2, num_racks=0)

    def test_machine_hash_and_eq(self, env):
        cluster = Cluster(env, num_machines=2)
        assert cluster.machine(0) == cluster.machine(0)
        assert cluster.machine(0) != cluster.machine(1)
        assert len({cluster.machine(0), cluster.machine(0)}) == 1
