"""Shared-fabric model: Clos topology, fluid links, DCQCN pacing,
fabric fault events, and the congestion-control convergence property.

The hypothesis test at the bottom is the PR's acceptance property: for
*any* flow arrival schedule the congestion-control loop converges —
queues stay bounded, every admitted transfer completes, the fabric
conservation audit is clean, and every same-tick write/write conflict
lands on the designed shared-fabric cells (``audit_races`` reports
nothing unclaimed).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import params
from repro.cluster import Cluster
from repro.fabricnet import (FABRIC_MODES, ClosFabricTopology, FabricFlow,
                             FabricLink, FabricNetwork, default_fabric_mode)
from repro.faults import FabricCut, FabricDegrade, NicSaturation
from repro.fn import FnCluster, MitosisPolicy
from repro.rdma.errors import ConnectionError_
from repro.sanitizers import (RaceAuditor, audit_fabric, audit_races,
                              watch_fn_cluster)
from repro.sim import Environment
from repro.workloads import tc0_profile

SETTINGS = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

LINE = params.FABRIC_HOST_BANDWIDTH


class TestFabricLink:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FabricLink("bad", 0.0)

    def test_admit_charges_serialization_and_tracks_backlog(self):
        link = FabricLink("l", 100.0, ecn_threshold=500, max_queue=2000)
        delay, marked, dropped = link.admit(0.0, 400)
        assert (delay, marked, dropped) == (4.0, False, False)
        assert link.backlog(0.0) == pytest.approx(400.0)
        # Halfway through the horizon half the bytes have drained.
        assert link.backlog(2.0) == pytest.approx(200.0)
        assert link.backlog(10.0) == 0.0

    def test_ecn_mark_past_threshold(self):
        link = FabricLink("l", 100.0, ecn_threshold=500, max_queue=2000)
        link.admit(0.0, 400)
        delay, marked, dropped = link.admit(0.0, 400)
        assert marked and not dropped
        assert delay == pytest.approx(8.0)  # queued behind the first
        assert link.ecn_marks == 1

    def test_tail_drop_past_cap_and_force_override(self):
        link = FabricLink("l", 100.0, ecn_threshold=500, max_queue=2000)
        link.admit(0.0, 800)
        delay, marked, dropped = link.admit(0.0, 1500)
        assert dropped and delay == 0.0
        assert link.drops == 1 and link.bytes_dropped == 1500
        assert link.busy_until == pytest.approx(8.0)  # drop charges nothing
        # force (the last go-back-N attempt) bypasses the cap.
        _, _, dropped = link.admit(0.0, 1500, force=True)
        assert not dropped
        assert link.peak_backlog == pytest.approx(2300.0)

    def test_cut_drops_everything_until_uncut(self):
        link = FabricLink("l", 100.0)
        link.cut_link()
        _, _, dropped = link.admit(0.0, 10)
        assert dropped
        link.uncut_link()
        _, _, dropped = link.admit(0.0, 10)
        assert not dropped

    def test_degrade_composes_and_restore_clamps(self):
        link = FabricLink("l", 100.0)
        link.degrade(2.0)
        link.degrade(2.0)
        assert link.rate() == pytest.approx(25.0)
        link.restore(2.0)
        link.restore(2.0)
        assert link.rate() == pytest.approx(100.0)
        with pytest.raises(ValueError):
            link.degrade(1.0)

    def test_inject_backlog_pushes_horizon_and_peak(self):
        link = FabricLink("l", 100.0)
        link.inject_backlog(0.0, 1000)
        assert link.backlog(0.0) == pytest.approx(1000.0)
        assert link.peak_backlog == pytest.approx(1000.0)
        # Injected bytes are background noise, not conservation traffic.
        assert link.bytes_enqueued == 0


class TestClosTopology:
    def _topo(self):
        env = Environment()
        cluster = Cluster(env, num_machines=6, num_racks=2)
        return cluster, ClosFabricTopology(cluster)

    def test_loopback_path_is_empty(self):
        cluster, topo = self._topo()
        assert topo.path(cluster.machine(0), cluster.machine(0)) == []

    def test_same_rack_path_skips_the_spine(self):
        cluster, topo = self._topo()
        path = topo.path(cluster.machine(0), cluster.machine(2))
        assert path == [topo.host_up[0], topo.host_down[2]]

    def test_cross_rack_path_crosses_both_tors(self):
        cluster, topo = self._topo()
        path = topo.path(cluster.machine(0), cluster.machine(1))
        assert path == [topo.host_up[0], topo.tor_up[0],
                        topo.tor_down[1], topo.host_down[1]]

    def test_tor_uplinks_are_oversubscribed(self):
        _, topo = self._topo()
        expected = 3 * topo.host_bandwidth / topo.oversubscription
        assert topo.tor_up[0].capacity == pytest.approx(expected)
        assert topo.tor_up[0].capacity < 3 * topo.host_bandwidth

    def test_links_enumeration_is_deterministic(self):
        _, topo = self._topo()
        names = [link.name for link in topo.links()]
        assert len(names) == 2 * 6 + 2 * 2
        assert names == [link.name for link in topo.links()]


class TestFabricFlow:
    def test_first_mark_halves_the_rate(self):
        flow = FabricFlow((0, 1), LINE)
        assert flow.rate == LINE and flow.alpha == 1.0
        flow.mark(0.0)
        assert flow.rate == pytest.approx(LINE / 2.0)

    def test_marks_floor_at_min_flow_rate(self):
        flow = FabricFlow((0, 1), LINE)
        for _ in range(64):
            flow.mark(0.0)
        assert flow.rate == params.FABRIC_MIN_FLOW_RATE

    def test_observe_recovers_additively_toward_line_rate(self):
        flow = FabricFlow((0, 1), LINE)
        flow.mark(0.0)
        flow.observe(params.FABRIC_DCQCN_RECOVERY_PERIOD)
        assert flow.rate == pytest.approx(
            LINE / 2.0 + params.FABRIC_DCQCN_RECOVERY_STEP)
        flow.observe(1e9)
        assert flow.rate == LINE
        assert flow.alpha < 1e-3

    def test_observe_within_one_period_is_a_noop(self):
        flow = FabricFlow((0, 1), LINE)
        flow.mark(0.0)
        cut = flow.rate
        flow.observe(params.FABRIC_DCQCN_RECOVERY_PERIOD * 0.5)
        assert flow.rate == cut

    def test_pacer_is_transparent_at_line_rate(self):
        flow = FabricFlow((0, 1), LINE)
        position = flow.reserve(0.0, 64 * params.KB)
        assert position == 0.0
        assert flow.ready_in(0.0, position, 64 * params.KB) == 0.0

    def test_pacer_stretches_after_a_cut_and_drains(self):
        flow = FabricFlow((0, 1), LINE)
        flow.mark(0.0)  # rate = LINE / 2
        nbytes = 64 * params.KB
        position = flow.reserve(0.0, nbytes)
        wait = flow.ready_in(0.0, position, nbytes)
        # Pacing delay beyond serialization: n/(L/2) - n/L = n/L.
        assert wait == pytest.approx(nbytes / LINE)
        # After sleeping the quoted wait the reservation has paced out.
        assert flow.ready_in(wait, position, nbytes) == 0.0

    def test_pacer_is_fifo_across_reservations(self):
        flow = FabricFlow((0, 1), LINE)
        flow.mark(0.0)
        nbytes = 64 * params.KB
        first = flow.reserve(0.0, nbytes)
        second = flow.reserve(0.0, nbytes)
        assert second == pytest.approx(nbytes)
        assert (flow.ready_in(0.0, second, nbytes)
                > flow.ready_in(0.0, first, nbytes))

    def test_sub_nanosecond_residue_clamps_to_zero(self):
        # fp-noise waits would never advance a late simulation clock.
        flow = FabricFlow((0, 1), LINE)
        flow.mark(0.0)
        position = flow.reserve(0.0, 8)  # 8 B / LINE ≈ 0.6 ns of pacing
        assert flow.ready_in(0.0, position, 8) == 0.0


class _NetRig:
    """A bare 2-rack cluster + armed FabricNetwork (no fn layer)."""

    def __init__(self, mode):
        self.env = Environment()
        self.cluster = Cluster(self.env, num_machines=4, num_racks=2)
        self.net = FabricNetwork(self.env, self.cluster, mode=mode)

    def send(self, src, dst, nbytes):
        """Run one transfer to completion; returns its duration."""
        start = self.env.now

        def body():
            yield from self.net.transfer(
                self.cluster.machine(src), self.cluster.machine(dst), nbytes)
            return self.env.now - start

        return self.env.run(self.env.process(body()))


class TestFabricNetwork:
    def test_unknown_mode_rejected(self):
        rig = _NetRig("flat")
        with pytest.raises(ValueError):
            FabricNetwork(rig.env, rig.cluster, mode="pfc")

    def test_loopback_costs_serialization_only(self):
        rig = _NetRig("flat")
        nbytes = 64 * params.KB
        took = rig.send(0, 0, nbytes)
        assert took == pytest.approx(params.transfer_time(nbytes, LINE))
        assert rig.net.counters["fabric.transfers"] == 0

    def test_transfer_delivers_and_conserves_bytes(self):
        rig = _NetRig("flat")
        nbytes = 128 * params.KB
        took = rig.send(0, 1, nbytes)  # cross-rack: 4 hops
        assert took >= params.transfer_time(nbytes, LINE)
        assert rig.net.counters["fabric.transfers"] == 1
        for link in rig.net.topology.path(rig.cluster.machine(0),
                                          rig.cluster.machine(1)):
            assert link.bytes_delivered == nbytes
        assert audit_fabric(rig.net) == []

    def test_tail_drop_pays_retx_penalty_but_completes(self):
        rig = _NetRig("flat")
        up, _ = rig.net.topology.host_links(0)
        up.inject_backlog(0.0, 2 * params.FABRIC_MAX_QUEUE_BYTES)
        took = rig.send(0, 2, 64 * params.KB)  # same rack
        assert rig.net.counters["fabric.drops"] >= 1
        assert rig.net.counters["fabric.retransmits"] >= 1
        assert took >= params.FABRIC_RETX_PENALTY
        assert audit_fabric(rig.net) == []

    def test_cut_path_raises_after_retry_budget(self):
        rig = _NetRig("flat")
        rig.net.cut_scope(("host", 0))

        def body():
            with pytest.raises(ConnectionError_):
                yield from rig.net.transfer(rig.cluster.machine(0),
                                            rig.cluster.machine(1),
                                            params.KB)
            return rig.env.now

        gave_up_at = rig.env.run(rig.env.process(body()))
        # One penalty per retry attempt before giving up.
        assert gave_up_at >= params.FABRIC_RETX_PENALTY * params.FABRIC_MAX_RETX
        rig.net.uncut_scope(("host", 0))
        rig.send(0, 1, params.KB)  # path healed
        assert audit_fabric(rig.net) == []

    def test_dcqcn_marks_cut_the_flow_and_pace_the_next_transfer(self):
        rig = _NetRig("dcqcn")
        up, _ = rig.net.topology.host_links(0)
        up.inject_backlog(0.0, params.FABRIC_ECN_THRESHOLD_BYTES)
        rig.send(0, 2, 64 * params.KB)
        flow = rig.net.flow(rig.cluster.machine(0), rig.cluster.machine(2))
        assert rig.net.counters["fabric.ecn_marks"] >= 1
        assert flow.marks >= 1
        assert flow.rate < flow.line_rate
        rig.send(0, 2, 64 * params.KB)
        assert rig.net.counters["fabric.paced"] >= 1

    def test_flat_mode_never_paces(self):
        rig = _NetRig("flat")
        up, _ = rig.net.topology.host_links(0)
        up.inject_backlog(0.0, params.FABRIC_ECN_THRESHOLD_BYTES)
        rig.send(0, 2, 64 * params.KB)
        rig.send(0, 2, 64 * params.KB)
        assert rig.net.counters["fabric.ecn_marks"] >= 1
        assert rig.net.counters["fabric.paced"] == 0
        flow = rig.net.flow(rig.cluster.machine(0), rig.cluster.machine(2))
        assert flow.rate == flow.line_rate

    def test_nic_hot_tracks_standing_backlog(self):
        rig = _NetRig("dcqcn")
        assert not rig.net.nic_hot(0)
        up, _ = rig.net.topology.host_links(0)
        up.inject_backlog(0.0, params.FABRIC_HOT_THRESHOLD_BYTES)
        assert rig.net.nic_hot(0)
        assert not rig.net.nic_hot(1)

    def test_saturate_degrades_then_injects_at_storm_rate(self):
        rig = _NetRig("dcqcn")
        backlog = 256 * params.KB
        rig.net.saturate(0, backlog, 8.0)
        up, down = rig.net.topology.host_links(0)
        for link in (up, down):
            assert link.rate() == pytest.approx(link.capacity / 8.0)
            # Injected after the cut: the backlog stands at full size.
            assert link.backlog(0.0) == pytest.approx(backlog)
        rig.net.unsaturate(0, 8.0)
        assert up.rate() == pytest.approx(up.capacity)

    def test_bad_fault_scope_is_loud(self):
        rig = _NetRig("flat")
        with pytest.raises(ValueError):
            rig.net.degrade_scope(("switch", 0), 2.0)

    def test_stats_shape(self):
        rig = _NetRig("dcqcn")
        rig.send(0, 1, 64 * params.KB)
        stats = rig.net.stats()
        assert stats["mode"] == "dcqcn"
        assert stats["transfers"] == 1
        assert stats["bytes_delivered"] == 4 * 64 * params.KB  # 4 links
        assert stats["flows"] == 1
        assert stats["min_flow_rate"] <= LINE


def _burst(num_forks, enable=None, seed=0):
    """A small fork burst; ``enable`` optionally arms fn layers."""
    fn = FnCluster(MitosisPolicy(), num_invokers=2, num_machines=5,
                   num_dfs_osds=2, seed=seed)
    if enable is not None:
        enable(fn)
    profile = tc0_profile()

    def setup():
        yield from fn.register(profile)

    fn.env.run(fn.env.process(setup()))
    for proc in [fn.submit(profile.name) for _ in range(num_forks)]:
        fn.env.run(proc)
    fn.env.run()
    return fn


def _trace(fn):
    return [(r.function_name, r.submitted_at, r.started_at, r.finished_at,
             r.start_kind, r.invoker_index) for r in fn.records]


class TestFnClusterFabric:
    def test_off_by_default_and_byte_identical(self, monkeypatch):
        monkeypatch.delenv("REPRO_FABRIC", raising=False)
        bare = _burst(12)
        assert bare.fabric.net is None
        # Explicitly asking with no mode and no knob stays unarmed, and
        # the event sequence is byte-identical to never asking at all.
        gated = _burst(12, enable=lambda fn: fn.enable_fabric(None))
        assert gated.fabric.net is None
        assert gated.env.events_processed == bare.env.events_processed
        assert gated.env.now == bare.env.now
        assert _trace(gated) == _trace(bare)

    def test_enable_fabric_is_idempotent(self):
        fn = FnCluster(MitosisPolicy(), num_invokers=2, num_machines=5,
                       num_dfs_osds=2, seed=0)
        net = fn.enable_fabric("flat")
        assert net is not None and net.mode == "flat"
        assert fn.enable_fabric("dcqcn") is net  # first arm wins

    def test_repro_fabric_knob_arms_cluster_wide(self, monkeypatch):
        monkeypatch.setenv("REPRO_FABRIC", "dcqcn")
        assert default_fabric_mode() == "dcqcn"
        fn = FnCluster(MitosisPolicy(), num_invokers=2, num_machines=5,
                       num_dfs_osds=2, seed=0)
        assert fn.fabric.net is not None
        assert fn.fabric.net.mode == "dcqcn"

    def test_repro_fabric_knob_spellings(self, monkeypatch):
        for raw, mode in (("", None), ("0", None), ("off", None),
                          ("1", "dcqcn"), ("flat", "flat"),
                          ("dcqcn", "dcqcn")):
            monkeypatch.setenv("REPRO_FABRIC", raw)
            assert default_fabric_mode() == mode
        monkeypatch.setenv("REPRO_FABRIC", "infiniband")
        with pytest.raises(ValueError):
            default_fabric_mode()
        assert set(FABRIC_MODES) == {"flat", "dcqcn"}

    def test_armed_burst_moves_bytes_and_audits_clean(self):
        fn = _burst(12, enable=lambda fn: fn.enable_fabric("dcqcn"))
        net = fn.fabric.net
        assert net.stats()["transfers"] > 0
        assert net.stats()["bytes_delivered"] > 0
        assert audit_fabric(net) == []

    def test_fabric_fault_without_fabric_layer_is_loud(self):
        fn = FnCluster(MitosisPolicy(), num_invokers=2, num_machines=5,
                       num_dfs_osds=2, seed=0)
        fn.enable_faults()
        with pytest.raises(RuntimeError):
            fn.faults.degrade_fabric(("host", 0), 2.0)

    def test_fault_events_drive_the_armed_model(self):
        fn = FnCluster(MitosisPolicy(), num_invokers=2, num_machines=5,
                       num_dfs_osds=2, seed=0)
        fn.enable_fabric("dcqcn")
        fn.enable_faults(schedule=[
            FabricDegrade(10.0, ("tor", 0), factor=4.0, down_for=50.0),
            FabricCut(10.0, ("host", 1), down_for=50.0),
            NicSaturation(10.0, 0, backlog_bytes=64 * params.KB,
                          factor=2.0, down_for=50.0),
        ])
        net = fn.fabric.net
        tor_up, _ = net.topology.rack_links(0)
        host1_up, _ = net.topology.host_links(1)
        host0_up, _ = net.topology.host_links(0)
        seen = {}

        def probe():
            # Inside every fault window, and before the storm's 64 KB
            # burst (~10 us at the halved line rate) finishes draining.
            yield fn.env.timeout(15.0)
            seen["tor_factor"] = tor_up.degrade_factor
            seen["cut"] = host1_up.cut
            seen["storm_backlog"] = host0_up.backlog(fn.env.now)

        fn.env.run(fn.env.process(probe()))
        # Bounded run past every heal timer: the fault era's monitor
        # daemons never exit, so a full drain would spin forever.
        fn.env.run(until=120.0)
        fn.stop_fault_daemons()
        assert seen["tor_factor"] == pytest.approx(4.0)
        assert seen["cut"] == 1
        assert seen["storm_backlog"] > 0
        assert tor_up.degrade_factor == 1.0
        assert host1_up.cut == 0
        assert fn.faults.counters["fabric_degrades"] == 1
        assert fn.faults.counters["fabric_cuts"] == 1
        assert audit_fabric(net) == []


class TestIncastExperimentWiring:
    def test_incast_is_registered(self):
        from repro.experiments.__main__ import _registry
        assert "incast" in _registry(heavy=False, smoke=True)

    def test_replay_incast_tiny_contrast_counters(self, tmp_path):
        from repro.experiments import incast
        profile = tc0_profile()
        fn, records, stats = incast.replay_incast(
            profile, fabric_mode="dcqcn", topo=True, scale=0.004,
            num_invokers=2, burst_size=20)
        assert records and fn.fabric.net is not None
        assert fn.fabric.net.stats()["transfers"] > 0
        assert stats["max_queue"] >= 0
        assert audit_fabric(fn.fabric.net) == []


#: The shared-fabric cells whose same-tick write ordering the event
#: loop's insertion-order tie-break decides *by design* (see
#: ``watch_fn_cluster``): every sender in an incast mutates the same
#: link's virtual clock.  The static shard-boundary pass cannot reach
#: them (no event-handler entry point owns the transfer path), so the
#: property test claims them explicitly; anything outside this set is
#: an unclaimed race and fails the audit.
CLAIMED_FABRIC_CELLS = frozenset({
    "FabricLink.busy_until",
    "FabricLink.bytes_enqueued",
    "FabricLink.bytes_delivered",
    "FabricLink.bytes_dropped",
    "FabricLink.ecn_marks",
    "FabricNetwork.counters",
})

SCHEDULES = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=2000.0),
              st.integers(min_value=0, max_value=3),
              st.integers(min_value=0, max_value=3),
              st.integers(min_value=1, max_value=256 * 1024)),
    min_size=1, max_size=10)


class TestCongestionControlConvergence:
    @SETTINGS
    @given(mode=st.sampled_from(FABRIC_MODES), schedule=SCHEDULES)
    def test_any_arrival_schedule_converges(self, mode, schedule):
        """Queues bounded, every transfer completes, conservation holds,
        and no same-tick W/W conflict escapes the claimed cell set."""
        rig = _NetRig(mode)
        env, net = rig.env, rig.net
        auditor = RaceAuditor(env, claimed_cells=CLAIMED_FABRIC_CELLS)
        for link in net.topology.links():
            auditor.watch("FabricLink", link,
                          ("busy_until", "bytes_enqueued", "bytes_delivered",
                           "bytes_dropped", "ecn_marks"), label=link.name)
        auditor.watch("FabricNetwork", net, ("counters",), label="net")
        auditor.install()
        done = []

        def sender(delay, src, dst, nbytes):
            if delay > 0:
                yield env.timeout(delay)
            yield from net.transfer(rig.cluster.machine(src),
                                    rig.cluster.machine(dst), nbytes)
            done.append(nbytes)

        for entry in schedule:
            env.process(sender(*entry))
        env.run()
        auditor.uninstall()

        # Every admitted transfer completes (no cuts in these schedules).
        assert len(done) == len(schedule)
        wire = [(s, d, n) for _, s, d, n in schedule if s != d]
        flows = net.flows()
        assert sum(f.bytes_sent for f in flows) == sum(n for _, _, n in wire)
        # Conservation + flow-rate bounds at quiescence.
        assert audit_fabric(net) == []
        # Queues bounded: within the tail-drop cap absent retransmits;
        # force-admitted go-back-N retries can push past it by at most
        # the bytes they carry.
        slack = (sum(n for _, _, n in wire)
                 if net.counters["fabric.retransmits"] else 0)
        for link in net.topology.links():
            assert link.peak_backlog <= params.FABRIC_MAX_QUEUE_BYTES + slack
            assert link.backlog(env.now) == pytest.approx(0.0, abs=1e-6)
        # DCQCN never pushes a marked flow below the floor or above line.
        for flow in flows:
            assert params.FABRIC_MIN_FLOW_RATE <= flow.rate <= flow.line_rate
        # The race audit: nothing outside the designed shared cells.
        assert audit_races(auditor) == []
