"""Unit tests for the Ceph-like DFS substrate."""

import pytest

from repro import params
from repro.cluster import Cluster
from repro.dfs import CephLikeDfs, DfsError
from repro.rdma import RdmaFabric
from repro.sim import Environment


@pytest.fixture
def rig():
    env = Environment()
    cluster = Cluster(env, num_machines=6, num_racks=1)
    fabric = RdmaFabric(env, cluster)
    dfs = CephLikeDfs(env, fabric, osd_machines=cluster.machines[4:])
    return env, cluster, dfs


def run(env, gen):
    return env.run(env.process(gen))


class TestPutGet:
    def test_roundtrip(self, rig):
        env, cluster, dfs = rig
        client = cluster.machine(0)

        def body():
            yield from dfs.put(client, "img", 10 * params.MB, payload="meta")
            nbytes = yield from dfs.get(client, "img")
            return nbytes

        assert run(env, body()) == 10 * params.MB
        assert dfs.payload("img") == "meta"

    def test_missing_object_raises(self, rig):
        env, cluster, dfs = rig

        def body():
            with pytest.raises(DfsError):
                yield from dfs.get(cluster.machine(0), "nope")
            return True

        assert run(env, body())

    def test_put_charges_osd_memory(self, rig):
        env, cluster, dfs = rig
        before = sum(m.memory.used for m in cluster.machines[4:])

        def body():
            yield from dfs.put(cluster.machine(0), "img", params.MB)

        run(env, body())
        after = sum(m.memory.used for m in cluster.machines[4:])
        assert after - before == params.MB

    def test_delete_frees_memory(self, rig):
        env, cluster, dfs = rig

        def body():
            yield from dfs.put(cluster.machine(0), "img", params.MB)

        run(env, body())
        dfs.delete("img")
        assert sum(m.memory.used for m in cluster.machines[4:]) == 0
        assert not dfs.exists("img")

    def test_placement_deterministic(self, rig):
        env, cluster, dfs = rig
        assert dfs._place("x") is dfs._place("x")


class TestRangesAndPages:
    def test_get_range_cheaper_than_full(self, rig):
        env, cluster, dfs = rig
        client = cluster.machine(0)

        def body():
            yield from dfs.put(client, "img", 100 * params.MB)
            start = env.now
            yield from dfs.get_range(client, "img", params.MB)
            partial = env.now - start
            start = env.now
            yield from dfs.get(client, "img")
            full = env.now - start
            return partial, full

        partial, full = run(env, body())
        assert partial < full / 10

    def test_range_beyond_size_rejected(self, rig):
        env, cluster, dfs = rig
        client = cluster.machine(0)

        def body():
            yield from dfs.put(client, "img", params.MB)
            with pytest.raises(DfsError):
                yield from dfs.get_range(client, "img", 2 * params.MB)
            return True

        assert run(env, body())

    def test_page_in_pays_software_overhead(self, rig):
        env, cluster, dfs = rig
        client = cluster.machine(0)

        def body():
            yield from dfs.put(client, "img", params.MB)
            start = env.now
            yield from dfs.page_in(client, "img")
            return env.now - start

        elapsed = run(env, body())
        # The DFS lazy page path is much slower than a raw RDMA page read
        # (this is §2.4 Issue#3: 840% execution slowdowns on TC0).
        raw_rdma = params.RDMA_READ_LATENCY + params.transfer_time(
            params.PAGE_SIZE, params.RDMA_BANDWIDTH)
        assert elapsed > 5 * raw_rdma

    def test_osd_service_queues_concurrent_readers(self, rig):
        env, cluster, dfs = rig
        client = cluster.machine(0)
        done = []

        def setup():
            yield from dfs.put(client, "img", 50 * params.MB)

        run(env, setup())

        def reader():
            yield from dfs.get(client, "img")
            done.append(env.now)

        for _ in range(8):
            env.process(reader())
        env.run()
        # Later readers wait for the OSD's serialized service loop.
        assert max(done) > 1.5 * min(done)
