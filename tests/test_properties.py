"""Property-based tests (hypothesis) on core data structures & invariants."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import params
from repro.cluster import Cluster, MemoryAccount, OutOfMemoryError
from repro.kernel import Kernel, KernelError, VmaKind
from repro.metrics import stats
from repro.sim import Environment, SeededStreams

SETTINGS = settings(max_examples=60, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


class TestStatsProperties:
    @SETTINGS
    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9,
                              allow_nan=False), min_size=1, max_size=200))
    def test_percentile_bounded_by_extremes(self, values):
        for pct in (0, 25, 50, 75, 99, 100):
            p = stats.percentile(values, pct)
            assert min(values) <= p <= max(values)

    @SETTINGS
    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9,
                              allow_nan=False), min_size=1, max_size=200))
    def test_percentile_monotone_in_pct(self, values):
        points = [stats.percentile(values, pct) for pct in (0, 25, 50, 75, 100)]
        assert points == sorted(points)

    @SETTINGS
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    def test_p0_and_p100_are_extremes(self, values):
        assert stats.percentile(values, 0) == min(values)
        assert stats.percentile(values, 100) == max(values)

    @SETTINGS
    @given(st.lists(st.floats(min_value=0.001, max_value=1e6),
                    min_size=1, max_size=100))
    def test_geometric_mean_bounded(self, values):
        gm = stats.geometric_mean(values)
        assert min(values) * 0.999 <= gm <= max(values) * 1.001

    @SETTINGS
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=300),
           st.integers(min_value=1, max_value=50))
    def test_cdf_monotone_and_complete(self, values, num_points):
        curve = stats.cdf_points(values, num_points)
        xs = [x for x, _ in curve]
        fs = [f for _, f in curve]
        assert xs == sorted(xs)
        assert fs == sorted(fs)
        assert abs(fs[-1] - 1.0) < 1e-9


class TestMemoryAccountProperties:
    @SETTINGS
    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=1, max_value=1000)),
                    max_size=100))
    def test_usage_never_exceeds_capacity_or_underflows(self, ops):
        account = MemoryAccount(capacity=10_000)
        outstanding = 0
        for is_alloc, amount in ops:
            if is_alloc:
                try:
                    account.alloc(amount)
                    outstanding += amount
                except OutOfMemoryError:
                    assert outstanding + amount > 10_000
            else:
                if amount <= outstanding:
                    account.free(amount)
                    outstanding -= amount
                else:
                    with pytest.raises(ValueError):
                        account.free(amount)
            assert account.used == outstanding
            assert 0 <= account.used <= account.capacity
            assert account.peak >= account.used


class TestFrameRefcountProperties:
    @SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=2), min_size=1,
                    max_size=60))
    def test_refcounting_conserves_memory(self, ops):
        env = Environment()
        cluster = Cluster(env, num_machines=1)
        kernel = Kernel(env, cluster.machine(0))
        live = []
        for op in ops:
            if op == 0 or not live:
                live.append(kernel.frames.alloc())
            elif op == 1:
                kernel.frames.ref(live[-1])
                live.append(live[-1])
            else:
                frame = live.pop()
                kernel.frames.unref(frame)
        # Outstanding references == live frames' total refcount.
        expected = len(live)
        actual = sum(f.refcount for f in {id(f): f for f in live}.values())
        assert actual == expected
        assert cluster.machine(0).memory.used == (
            len({id(f) for f in live}) * params.PAGE_SIZE)


class TestCowForkProperties:
    @SETTINGS
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 7),
                              st.integers(0, 999)),
                    min_size=1, max_size=40))
    def test_parent_child_isolation_matches_model(self, writes):
        """Random interleaved writes after fork: contents must match a
        plain dict model (full isolation, lazily copied)."""
        env = Environment()
        cluster = Cluster(env, num_machines=1)
        kernel = Kernel(env, cluster.machine(0))
        parent = kernel.create_task("p")
        vma = parent.address_space.add_vma(8, VmaKind.HEAP)
        kernel.warm(parent)

        model = {}
        for vpn in vma.vpns():
            pte = parent.address_space.page_table.entry(vpn)
            model[("p", vpn)] = pte.frame.content
            model[("c", vpn)] = pte.frame.content

        def body():
            child = yield from kernel.fork_local(parent)
            for to_child, offset, value in writes:
                task = child if to_child else parent
                tag = "c" if to_child else "p"
                vpn = vma.start_vpn + offset
                yield from kernel.write_page(task, vpn, value)
                model[(tag, vpn)] = value
            for vpn in vma.vpns():
                pc = yield from kernel.touch(parent, vpn)
                cc = yield from kernel.touch(child, vpn)
                assert pc == model[("p", vpn)]
                assert cc == model[("c", vpn)]
            return True

        assert env.run(env.process(body()))


class TestPteOwnerBits:
    @SETTINGS
    @given(st.integers(min_value=-5, max_value=30))
    def test_owner_index_range_enforced(self, index):
        from repro.kernel import Pte
        pte = Pte()
        if 0 <= index <= params.MAX_FORK_HOPS:
            pte.set_owner_index(index)
            assert pte.owner_index == index
        else:
            with pytest.raises(KernelError):
                pte.set_owner_index(index)


class TestSimDeterminism:
    @SETTINGS
    @given(st.integers(min_value=0, max_value=10_000))
    def test_same_seed_same_trace(self, seed):
        def draw(s):
            streams = SeededStreams(seed=s)
            return [streams.exponential("a", 5.0) for _ in range(5)] + \
                   [streams.uniform("b", 0, 1) for _ in range(5)]

        assert draw(seed) == draw(seed)

    @SETTINGS
    @given(st.lists(st.floats(min_value=0.01, max_value=1000.0),
                    min_size=1, max_size=30))
    def test_event_order_is_time_order(self, delays):
        env = Environment()
        fired = []

        def waiter(d):
            yield env.timeout(d)
            fired.append(d)

        for d in delays:
            env.process(waiter(d))
        env.run()
        assert fired == sorted(fired)


class TestAccessControlInvariant:
    @SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                    max_size=20),
           st.integers(min_value=0, max_value=7))
    def test_successful_remote_read_implies_live_frame(self, reclaims, probe):
        """The passive model's safety property: whenever a child's RDMA
        read is *admitted*, the backing shadow frame is still live; reads
        of reclaimed pages always divert to the fallback path, and every
        read returns the pre-reclaim content."""
        from repro.containers import ContainerRuntime, hello_world_image
        from repro.core import MitosisDeployment
        from repro.rdma import RdmaFabric, RpcRuntime

        env = Environment()
        cluster = Cluster(env, num_machines=2, num_racks=1)
        fabric = RdmaFabric(env, cluster)
        rpc = RpcRuntime(env, fabric)
        kernels = [Kernel(env, m) for m in cluster]
        runtimes = [ContainerRuntime(env, k) for k in kernels]
        deployment = MitosisDeployment(env, cluster, fabric, rpc, runtimes)
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))

        def body():
            parent = yield from runtimes[0].cold_start(hello_world_image())
            heap = parent.task.address_space.vmas[3]
            expected = {}
            for offset in range(8):
                vpn = heap.start_vpn + offset
                content = yield from kernels[0].write_page(
                    parent.task, vpn, "v%d" % offset)
                expected[vpn] = content
            meta = yield from node0.fork_prepare(parent)
            child = yield from node1.fork_resume(meta)
            _, shadow = node0.service.lookup(meta.handler_id, meta.auth_key)
            reclaimed = set()
            for offset in reclaims:
                vpn = heap.start_vpn + offset
                yield from kernels[0].reclaim(shadow, [vpn])
                reclaimed.add(vpn)
            probe_vpn = heap.start_vpn + probe
            content = yield from kernels[1].touch(child.task, probe_vpn)
            assert content == expected[probe_vpn]
            counters = node1.pager.counters.as_dict()
            heap_reclaimed = bool(reclaimed)
            if heap_reclaimed:
                # Any read in the reclaimed VMA must have taken fallback.
                assert counters.get("fallback_rpcs", 0) >= 1
            return True

        assert env.run(env.process(body()))


class TestMultiHopModelProperty:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 99)),
                    min_size=0, max_size=6),
           st.integers(min_value=2, max_value=4))
    def test_chain_reads_match_write_model(self, writes, hops):
        """Fork a chain of `hops` machines; at each hop apply the writes
        assigned to it; the final descendant must observe, for every page,
        the value written by the *nearest* elder that wrote it."""
        from repro.containers import ContainerRuntime, hello_world_image
        from repro.core import MitosisDeployment
        from repro.rdma import RdmaFabric, RpcRuntime

        env = Environment()
        cluster = Cluster(env, num_machines=hops + 1, num_racks=1)
        fabric = RdmaFabric(env, cluster)
        rpc = RpcRuntime(env, fabric)
        kernels = [Kernel(env, m) for m in cluster]
        runtimes = [ContainerRuntime(env, k) for k in kernels]
        deployment = MitosisDeployment(env, cluster, fabric, rpc, runtimes)

        def body():
            container = yield from runtimes[0].cold_start(
                hello_world_image())
            heap = container.task.address_space.vmas[3]
            model = {}
            for hop in range(hops):
                kernel = kernels[hop]
                for w_hop, offset in writes:
                    if w_hop == hop:
                        value = "h%d-o%d" % (hop, offset)
                        yield from kernel.write_page(
                            container.task, heap.start_vpn + offset, value)
                        model[offset] = value
                if hop < hops - 1:
                    node = deployment.node(cluster.machine(hop))
                    meta = yield from node.fork_prepare(container)
                    next_node = deployment.node(cluster.machine(hop + 1))
                    container = yield from next_node.fork_resume(meta)
            last_kernel = kernels[hops - 1]
            for offset, expected in model.items():
                content = yield from last_kernel.touch(
                    container.task, heap.start_vpn + offset)
                assert content == expected
            return True

        assert env.run(env.process(body()))
