"""Edge-case coverage for the simulation kernel and RDMA details."""

import pytest

from repro import params
from repro.cluster import Cluster
from repro.rdma import LoopbackFabric, RdmaFabric
from repro.sim import (
    AllOf,
    AnyOf,
    EmptySchedule,
    Environment,
    Event,
    SimulationError,
    Store,
)


def run(env, gen):
    return env.run(env.process(gen))


class TestEventEdgeCases:
    def test_value_of_pending_event_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().value

    def test_defused_failure_does_not_crash_run(self):
        env = Environment()
        evt = env.event()
        evt.fail(RuntimeError("handled elsewhere"))
        evt.defuse()
        env.run()  # no exception

    def test_run_until_already_triggered_event(self):
        env = Environment()
        evt = env.event()
        evt.succeed("early")
        assert env.run(evt) == "early"

    def test_run_until_already_failed_event(self):
        env = Environment()
        evt = env.event()
        evt.fail(RuntimeError("early failure"))
        evt.defuse()
        with pytest.raises(RuntimeError):
            env.run(evt)

    def test_condition_failure_propagates(self):
        env = Environment()

        def failing():
            yield env.timeout(1.0)
            raise ValueError("inner")

        def waiter():
            p1 = env.process(failing())
            p2 = env.timeout(10.0)
            with pytest.raises(ValueError):
                yield AllOf(env, [p1, p2])
            return True

        assert run(env, waiter())

    def test_any_of_failure_beats_success(self):
        env = Environment()

        def failing():
            yield env.timeout(1.0)
            raise ValueError("first")

        def waiter():
            p1 = env.process(failing())
            p2 = env.timeout(5.0)
            with pytest.raises(ValueError):
                yield AnyOf(env, [p1, p2])
            return True

        assert run(env, waiter())

    def test_yield_bare_none_continues(self):
        env = Environment()

        def body():
            yield
            return env.now

        assert env.run(env.process(body())) == 0.0

    def test_yield_non_event_raises_in_process(self):
        env = Environment()

        def body():
            with pytest.raises(SimulationError):
                yield 42
            return "survived"

        assert env.run(env.process(body())) == "survived"

    def test_peek_empty_queue_is_inf(self):
        env = Environment()
        assert env.peek() == float("inf")

    def test_step_empty_queue_raises(self):
        env = Environment()
        with pytest.raises(EmptySchedule):
            env.step()

    def test_process_requires_generator(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_condition_over_non_event_rejected(self):
        env = Environment()
        with pytest.raises(TypeError):
            AllOf(env, [42])


class TestStoreEdgeCases:
    def test_cancel_pending_getter(self):
        env = Environment()
        store = Store(env)
        getter = store.get()
        store.cancel(getter)
        store.put("x")  # must not be swallowed by the cancelled getter
        assert len(store) == 1

    def test_cancel_unknown_getter_noop(self):
        env = Environment()
        store = Store(env)
        other = Event(env)
        store.cancel(other)  # no error


class TestUdChunking:
    def test_multi_mtu_payload_costs_more_per_byte(self):
        env = Environment()
        cluster = Cluster(env, num_machines=2, num_racks=1)
        fabric = RdmaFabric(env, cluster)
        from repro.rdma.qp import UdQp
        qp = UdQp(fabric.nic_of(cluster.machine(0)))

        def timed(nbytes):
            start = env.now
            yield from qp.send(cluster.machine(1), nbytes)
            return env.now - start

        one_chunk = run(env, timed(4096))
        many_chunks = run(env, timed(64 * 4096))
        # 64 chunks cost 63 extra per-packet overheads on top of 64x wire.
        assert many_chunks > 64 * (one_chunk - params.UD_RPC_BASE_LATENCY / 2)

    def test_loopback_fabric_attaches_all(self):
        env = Environment()
        cluster = Cluster(env, num_machines=3, num_racks=1)
        fabric = LoopbackFabric(env, cluster)
        assert all(m.nic is not None for m in cluster)


class TestRcWrite:
    def test_write_pays_wire_and_bandwidth(self):
        env = Environment()
        cluster = Cluster(env, num_machines=2, num_racks=1)
        fabric = RdmaFabric(env, cluster)
        nic = fabric.nic_of(cluster.machine(0))

        def body():
            qp = yield from nic.create_rc_qp(cluster.machine(1))
            start = env.now
            yield from qp.write(params.MB)
            return env.now - start

        elapsed = run(env, body())
        expected_min = params.transfer_time(params.MB, params.RDMA_BANDWIDTH)
        assert elapsed > expected_min
        assert nic.counters["rc_write"] == 1

    def test_closed_qp_rejects_write(self):
        env = Environment()
        cluster = Cluster(env, num_machines=2, num_racks=1)
        fabric = RdmaFabric(env, cluster)
        nic = fabric.nic_of(cluster.machine(0))

        def body():
            qp = yield from nic.create_rc_qp(cluster.machine(1))
            qp.close()
            from repro.rdma import ConnectionError_
            with pytest.raises(ConnectionError_):
                yield from qp.write(64)
            return True

        assert run(env, body())


class TestPagerLineageErrors:
    def test_fetch_without_lineage_raises_lookup_error(self):
        from repro.containers import ContainerRuntime, hello_world_image
        from repro.core import MitosisDeployment
        from repro.kernel import Kernel
        from repro.rdma import RpcRuntime

        env = Environment()
        cluster = Cluster(env, num_machines=2, num_racks=1)
        fabric = RdmaFabric(env, cluster)
        rpc = RpcRuntime(env, fabric)
        kernels = [Kernel(env, m) for m in cluster]
        runtimes = [ContainerRuntime(env, k) for k in kernels]
        deployment = MitosisDeployment(env, cluster, fabric, rpc, runtimes)

        def body():
            task = kernels[0].create_task("orphan")
            from repro.kernel import VmaKind
            vma = task.address_space.add_vma(2, VmaKind.HEAP)
            pte = task.address_space.page_table.ensure(vma.start_vpn)
            pte.remote = True
            pte.remote_pfn = 1
            with pytest.raises(LookupError):
                yield from kernels[0].touch(task, vma.start_vpn)
            return True

        assert run(env, body())


class ResilienceStyleError(Exception):
    """Kwargs-only, attribute-carrying error like the typed resilience
    exceptions: ``type(exc)(*exc.args)`` cannot rebuild it."""

    def __init__(self, *, machine_id):
        super().__init__("machine %d" % machine_id)
        self.machine_id = machine_id


class TestExceptionFidelity:
    """Failures must propagate the *original* exception object.

    Rebuilding via ``type(exc)(*exc.args)`` would crash on kwargs-only
    constructors and strip attributes attached after construction.
    """

    def test_process_failure_keeps_exception_identity(self):
        env = Environment()
        raised = ResilienceStyleError(machine_id=3)

        def failing():
            yield env.timeout(1.0)
            raise raised

        def waiter():
            try:
                yield env.process(failing())
            except ResilienceStyleError as exc:
                return exc
            return None

        caught = run(env, waiter())
        assert caught is raised
        assert caught.machine_id == 3

    def test_condition_failure_keeps_exception_identity(self):
        env = Environment()
        raised = ResilienceStyleError(machine_id=9)

        def failing():
            yield env.timeout(1.0)
            raise raised

        def waiter():
            try:
                yield AllOf(env, [env.process(failing()), env.timeout(5.0)])
            except ResilienceStyleError as exc:
                return exc
            return None

        assert run(env, waiter()) is raised

    def test_attributes_added_after_construction_survive(self):
        env = Environment()

        def failing():
            yield env.timeout(1.0)
            err = RuntimeError("degraded")
            err.breadcrumb = ("pager", "fetch_range")
            raise err

        def waiter():
            try:
                yield env.process(failing())
            except RuntimeError as exc:
                return exc.breadcrumb

        assert run(env, waiter()) == ("pager", "fetch_range")


class TestConditionFlattening:
    """``a & b & c`` builds ONE condition over three events, not a tree."""

    def test_and_chain_flattens(self):
        env = Environment()
        a, b, c = env.timeout(1), env.timeout(2), env.timeout(3)
        cond = a & b & c
        assert type(cond) is AllOf
        assert cond._events == [a, b, c]

    def test_or_chain_flattens(self):
        env = Environment()
        a, b, c, d = (env.timeout(i) for i in range(1, 5))
        cond = a | b | c | d
        assert type(cond) is AnyOf
        assert cond._events == [a, b, c, d]

    def test_leaf_callback_count_stays_linear(self):
        # Each leaf carries exactly ONE callback (the final condition's
        # settle hook); a nested tree would stack one per chain link.
        env = Environment()
        leaves = [env.event() for _ in range(16)]
        cond = leaves[0]
        for leaf in leaves[1:]:
            cond = cond & leaf
        assert len(cond._events) == len(leaves)
        for leaf in leaves:
            assert len(leaf.callbacks) == 1

    def test_mixed_chain_keeps_inner_condition(self):
        env = Environment()
        a, b, c = env.timeout(1), env.timeout(2), env.timeout(3)
        inner = a | b
        outer = inner & c
        assert outer._events == [inner, c]

    def test_observed_intermediate_not_absorbed(self):
        # Once something waits on the inner condition its identity is
        # load-bearing; flattening would steal its constituents.
        env = Environment()
        a, b, c = env.timeout(1), env.timeout(2), env.timeout(3)
        inner = a & b
        inner.callbacks.append(lambda event: None)
        outer = inner & c
        assert outer._events == [inner, c]

    def test_triggered_intermediate_not_absorbed(self):
        env = Environment()
        inner = AllOf(env, [])  # settles immediately
        c = env.timeout(1)
        outer = inner & c
        assert outer._events == [inner, c]

    def test_flattened_chain_still_collects_all_values(self):
        env = Environment()

        def body():
            a = env.timeout(1, value="a")
            b = env.timeout(2, value="b")
            c = env.timeout(3, value="c")
            got = yield a & b & c
            return sorted(got.values())

        assert run(env, body()) == ["a", "b", "c"]


class TestAnyOfInterruptAbandon:
    """Interrupting a waiter mid-``AnyOf`` releases constituent hooks."""

    def test_queued_resource_grant_released(self):
        from repro.sim import Interrupt, Resource

        env = Environment()
        res = Resource(env, capacity=1)

        def holder():
            yield res.acquire()
            yield env.timeout(100.0)
            res.release()

        def waiter():
            try:
                yield res.acquire() | env.timeout(50.0)
            except Interrupt:
                return "interrupted"
            return "raced"

        def driver():
            env.process(holder())
            yield env.timeout(0)
            victim = env.process(waiter())
            yield env.timeout(5.0)
            assert res.queued == 1
            victim.interrupt()
            result = yield victim
            return result

        assert run(env, driver()) == "interrupted"
        assert res.queued == 0  # the queue spot came back

    def test_pending_store_getter_withdrawn(self):
        from repro.sim import Interrupt

        env = Environment()
        store = Store(env)

        def waiter():
            try:
                yield store.get() | env.timeout(50.0)
            except Interrupt:
                return "interrupted"
            return "raced"

        def driver():
            victim = env.process(waiter())
            yield env.timeout(5.0)
            victim.interrupt()
            result = yield victim
            store.put("x")  # must NOT be swallowed by the dead getter
            return result

        assert run(env, driver()) == "interrupted"
        assert len(store) == 1


class TestSameTimestampFifo:
    """Events at one timestamp fire in scheduling order, deterministically."""

    def test_zero_delay_timeouts_fire_in_creation_order(self):
        env = Environment()
        order = []

        def note(i):
            yield env.timeout(0)
            order.append(i)

        def driver():
            for i in range(20):
                env.process(note(i))
            yield env.timeout(1.0)
            return order

        assert run(env, driver()) == list(range(20))

    def test_equal_delay_from_different_creation_times(self):
        env = Environment()
        order = []

        def note(tag, delay):
            yield env.timeout(delay)
            order.append(tag)

        def driver():
            env.process(note("early-long", 10.0))
            yield env.timeout(4.0)
            env.process(note("late-short", 6.0))  # also lands at t=10
            yield env.timeout(20.0)
            return order

        # Both settle at t=10; the earlier-scheduled one wins the tie.
        assert run(env, driver()) == ["early-long", "late-short"]


class TestTimeoutPooling:
    """Fired timeouts are recycled, but never while anyone can observe them."""

    def test_fired_timeouts_are_recycled(self):
        env = Environment()

        def body():
            for _ in range(8):
                yield env.timeout(1.0)

        run(env, body())
        assert env._timeout_pool
        pooled = env._timeout_pool[-1]
        fresh = env.timeout(2.5, value="v")
        assert fresh is pooled  # reuse, not a new allocation
        assert fresh.callbacks == []
        assert fresh._delay == 2.5
        assert fresh._value == "v"

    def test_held_timeout_is_never_pooled(self):
        env = Environment()

        def body():
            held = env.timeout(1.0)
            yield held
            # Our reference kept it out of the pool; a new timeout must be
            # a different object and `held` stays settled forever.
            replacement = env.timeout(1.0)
            assert replacement is not held
            assert held.processed
            yield replacement
            assert held.processed

        run(env, body())

    def test_settled_event_is_not_resurrected(self):
        env = Environment()
        witness = env.timeout(1.0)
        env.run(until=2.0)
        assert witness.processed
        for _ in range(50):  # churn the pool hard
            env.run(env.process((env.timeout(0.1) for _ in range(1))))
        assert witness.processed  # still the same dead event
        assert witness.callbacks is None

    def test_negative_delay_rejected_even_from_pool(self):
        env = Environment()
        run(env, (env.timeout(1.0) for _ in range(2)))
        assert env._timeout_pool
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_pool_is_bounded(self):
        from repro.sim import loop

        env = Environment()

        def spray():
            conds = [env.timeout(0.001 * i) for i in range(1500)]
            yield AllOf(env, conds)

        run(env, spray())
        assert len(env._timeout_pool) <= loop._TIMEOUT_POOL_MAX
