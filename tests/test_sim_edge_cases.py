"""Edge-case coverage for the simulation kernel and RDMA details."""

import pytest

from repro import params
from repro.cluster import Cluster
from repro.rdma import LoopbackFabric, RdmaFabric
from repro.sim import (
    AllOf,
    AnyOf,
    EmptySchedule,
    Environment,
    Event,
    SimulationError,
    Store,
)


def run(env, gen):
    return env.run(env.process(gen))


class TestEventEdgeCases:
    def test_value_of_pending_event_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().value

    def test_defused_failure_does_not_crash_run(self):
        env = Environment()
        evt = env.event()
        evt.fail(RuntimeError("handled elsewhere"))
        evt.defuse()
        env.run()  # no exception

    def test_run_until_already_triggered_event(self):
        env = Environment()
        evt = env.event()
        evt.succeed("early")
        assert env.run(evt) == "early"

    def test_run_until_already_failed_event(self):
        env = Environment()
        evt = env.event()
        evt.fail(RuntimeError("early failure"))
        evt.defuse()
        with pytest.raises(RuntimeError):
            env.run(evt)

    def test_condition_failure_propagates(self):
        env = Environment()

        def failing():
            yield env.timeout(1.0)
            raise ValueError("inner")

        def waiter():
            p1 = env.process(failing())
            p2 = env.timeout(10.0)
            with pytest.raises(ValueError):
                yield AllOf(env, [p1, p2])
            return True

        assert run(env, waiter())

    def test_any_of_failure_beats_success(self):
        env = Environment()

        def failing():
            yield env.timeout(1.0)
            raise ValueError("first")

        def waiter():
            p1 = env.process(failing())
            p2 = env.timeout(5.0)
            with pytest.raises(ValueError):
                yield AnyOf(env, [p1, p2])
            return True

        assert run(env, waiter())

    def test_yield_bare_none_continues(self):
        env = Environment()

        def body():
            yield
            return env.now

        assert env.run(env.process(body())) == 0.0

    def test_yield_non_event_raises_in_process(self):
        env = Environment()

        def body():
            with pytest.raises(SimulationError):
                yield 42
            return "survived"

        assert env.run(env.process(body())) == "survived"

    def test_peek_empty_queue_is_inf(self):
        env = Environment()
        assert env.peek() == float("inf")

    def test_step_empty_queue_raises(self):
        env = Environment()
        with pytest.raises(EmptySchedule):
            env.step()

    def test_process_requires_generator(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_condition_over_non_event_rejected(self):
        env = Environment()
        with pytest.raises(TypeError):
            AllOf(env, [42])


class TestStoreEdgeCases:
    def test_cancel_pending_getter(self):
        env = Environment()
        store = Store(env)
        getter = store.get()
        store.cancel(getter)
        store.put("x")  # must not be swallowed by the cancelled getter
        assert len(store) == 1

    def test_cancel_unknown_getter_noop(self):
        env = Environment()
        store = Store(env)
        other = Event(env)
        store.cancel(other)  # no error


class TestUdChunking:
    def test_multi_mtu_payload_costs_more_per_byte(self):
        env = Environment()
        cluster = Cluster(env, num_machines=2, num_racks=1)
        fabric = RdmaFabric(env, cluster)
        from repro.rdma.qp import UdQp
        qp = UdQp(fabric.nic_of(cluster.machine(0)))

        def timed(nbytes):
            start = env.now
            yield from qp.send(cluster.machine(1), nbytes)
            return env.now - start

        one_chunk = run(env, timed(4096))
        many_chunks = run(env, timed(64 * 4096))
        # 64 chunks cost 63 extra per-packet overheads on top of 64x wire.
        assert many_chunks > 64 * (one_chunk - params.UD_RPC_BASE_LATENCY / 2)

    def test_loopback_fabric_attaches_all(self):
        env = Environment()
        cluster = Cluster(env, num_machines=3, num_racks=1)
        fabric = LoopbackFabric(env, cluster)
        assert all(m.nic is not None for m in cluster)


class TestRcWrite:
    def test_write_pays_wire_and_bandwidth(self):
        env = Environment()
        cluster = Cluster(env, num_machines=2, num_racks=1)
        fabric = RdmaFabric(env, cluster)
        nic = fabric.nic_of(cluster.machine(0))

        def body():
            qp = yield from nic.create_rc_qp(cluster.machine(1))
            start = env.now
            yield from qp.write(params.MB)
            return env.now - start

        elapsed = run(env, body())
        expected_min = params.transfer_time(params.MB, params.RDMA_BANDWIDTH)
        assert elapsed > expected_min
        assert nic.counters["rc_write"] == 1

    def test_closed_qp_rejects_write(self):
        env = Environment()
        cluster = Cluster(env, num_machines=2, num_racks=1)
        fabric = RdmaFabric(env, cluster)
        nic = fabric.nic_of(cluster.machine(0))

        def body():
            qp = yield from nic.create_rc_qp(cluster.machine(1))
            qp.close()
            from repro.rdma import ConnectionError_
            with pytest.raises(ConnectionError_):
                yield from qp.write(64)
            return True

        assert run(env, body())


class TestPagerLineageErrors:
    def test_fetch_without_lineage_raises_lookup_error(self):
        from repro.containers import ContainerRuntime, hello_world_image
        from repro.core import MitosisDeployment
        from repro.kernel import Kernel
        from repro.rdma import RpcRuntime

        env = Environment()
        cluster = Cluster(env, num_machines=2, num_racks=1)
        fabric = RdmaFabric(env, cluster)
        rpc = RpcRuntime(env, fabric)
        kernels = [Kernel(env, m) for m in cluster]
        runtimes = [ContainerRuntime(env, k) for k in kernels]
        deployment = MitosisDeployment(env, cluster, fabric, rpc, runtimes)

        def body():
            task = kernels[0].create_task("orphan")
            from repro.kernel import VmaKind
            vma = task.address_space.add_vma(2, VmaKind.HEAP)
            pte = task.address_space.page_table.ensure(vma.start_vpn)
            pte.remote = True
            pte.remote_pfn = 1
            with pytest.raises(LookupError):
                yield from kernels[0].touch(task, vma.start_vpn)
            return True

        assert run(env, body())
