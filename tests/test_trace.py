"""Tests for ``repro.trace``: spans, context propagation, analysis, export.

Covers the tracer core (per-process span stacks, spawn inheritance, the
null objects behind zero-cost-off call sites), the critical-path analyzer
(exact partition of a root's duration), both exporters, the trace
sanitizer, the ``experiments trace`` rig with its trace-vs-recorder
cross-check, and a hypothesis property that arbitrary interleaved spawn
trees always produce a single well-formed span tree.
"""

import json

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.cluster import Cluster
from repro.experiments import tracecli
from repro.faults import FaultInjector
from repro.metrics import LatencyRecorder
from repro.sanitizers import SanitizerViolation, audit_traces, check_traces
from repro.sim import Environment
from repro.trace import (
    NULL_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
    breakdown,
    chrome_trace,
    critical_path,
    enabled_by_env,
    get_tracer,
    maybe_install,
    self_time,
    text_tree,
    write_chrome_trace,
)

SETTINGS = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


class TestSpanBasics:
    def test_environment_default_has_no_tracer(self):
        assert Environment().tracer is None

    def test_install_and_times(self):
        env = Environment()
        tracer = Tracer(env)
        assert env.tracer is tracer

        def proc():
            span = tracer.start_span("work", vpn=7)
            assert span.start == 0.0
            assert not span.ended
            with pytest.raises(ValueError):
                _ = span.duration
            yield env.timeout(12.5)
            span.end()
            assert span.ended
            assert span.duration == pytest.approx(12.5)

        env.run(env.process(proc()))
        assert [s.name for s in tracer.spans] == ["work"]
        assert tracer.roots == tracer.spans
        assert tracer.open_spans() == []

    def test_nesting_parent_links(self):
        env = Environment()
        tracer = Tracer(env)

        def proc():
            with tracer.start_span("outer") as outer:
                with tracer.start_span("inner") as inner:
                    assert tracer.current() is inner
                    yield env.timeout(1.0)
                assert tracer.current() is outer

        env.run(env.process(proc()))
        outer, inner = tracer.spans
        assert inner.parent is outer
        assert outer.children == [inner]
        assert tracer.roots == [outer]

    def test_end_is_idempotent_and_stamps_attrs(self):
        env = Environment()
        tracer = Tracer(env)

        def proc():
            span = tracer.start_span("s")
            yield env.timeout(3.0)
            span.end(outcome="ok")
            first = span.end_time
            yield env.timeout(5.0)
            span.end(outcome="late")  # ignored: already closed
            assert span.end_time == first
            assert span.attrs["outcome"] == "ok"

        env.run(env.process(proc()))

    def test_context_manager_records_error_type(self):
        env = Environment()
        tracer = Tracer(env)

        def proc():
            with pytest.raises(RuntimeError):
                with tracer.start_span("risky"):
                    yield env.timeout(1.0)
                    raise RuntimeError("boom")

        env.run(env.process(proc()))
        (span,) = tracer.spans
        assert span.ended
        assert span.attrs["error"] == "RuntimeError"

    def test_set_and_event(self):
        env = Environment()
        tracer = Tracer(env)

        def proc():
            with tracer.start_span("s") as span:
                assert span.set(a=1) is span
                yield env.timeout(2.0)
                span.event("tick", n=3)

        env.run(env.process(proc()))
        (span,) = tracer.spans
        assert span.attrs == {"a": 1}
        assert span.events == [(2.0, "tick", {"n": 3})]

    def test_repr_open_and_closed(self):
        env = Environment()
        tracer = Tracer(env)
        span = tracer.start_span("x")
        assert "open" in repr(span)
        span.end()
        assert "open" not in repr(span)


class TestContextPropagation:
    def test_spawned_process_inherits_current_span(self):
        env = Environment()
        tracer = Tracer(env)

        def child():
            with tracer.start_span("child"):
                yield env.timeout(1.0)

        def parent():
            with tracer.start_span("parent"):
                proc = env.process(child())
                yield env.timeout(0.5)
                yield proc

        env.run(env.process(parent()))
        names = {s.name: s for s in tracer.spans}
        assert names["child"].parent is names["parent"]
        assert tracer.roots == [names["parent"]]

    def test_inheritance_cleaned_up_after_process_exit(self):
        env = Environment()
        tracer = Tracer(env)

        def child():
            yield env.timeout(1.0)

        def parent():
            with tracer.start_span("parent"):
                yield env.process(child())

        env.run(env.process(parent()))
        assert tracer._inherited == {}
        assert tracer._stacks == {}

    def test_root_flag_escapes_current_context(self):
        env = Environment()
        tracer = Tracer(env)

        def proc():
            with tracer.start_span("outer"):
                with tracer.start_span("detached", root=True):
                    yield env.timeout(1.0)

        env.run(env.process(proc()))
        assert sorted(s.name for s in tracer.roots) == ["detached", "outer"]

    def test_disabled_tracer_records_nothing_on_spawn(self):
        env = Environment()
        tracer = Tracer(env, enabled=False)

        def child():
            yield env.timeout(1.0)

        env.run(env.process(child()))
        assert tracer.spans == []
        assert tracer._inherited == {}

    def test_driver_context_spans_are_roots(self):
        env = Environment()
        tracer = Tracer(env)
        span = tracer.start_span("driver")
        assert env.active_process is None
        assert span.parent is None
        span.end()
        assert tracer.roots == [span]

    def test_annotate_targets_current_span_else_mark(self):
        env = Environment()
        tracer = Tracer(env)
        tracer.annotate("orphan", k=1)
        assert tracer.marks == [(0.0, "orphan", {"k": 1})]
        with tracer.start_span("s") as span:
            tracer.annotate("attached", k=2)
        assert span.events == [(0.0, "attached", {"k": 2})]
        assert len(tracer.marks) == 1


class TestInstallation:
    def test_maybe_install_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        env = Environment()
        assert not enabled_by_env()
        assert maybe_install(env) is None
        assert env.tracer is None

    @pytest.mark.parametrize("value", ["", "0"])
    def test_maybe_install_explicit_off(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE", value)
        assert maybe_install(Environment()) is None

    def test_maybe_install_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        env = Environment()
        tracer = maybe_install(env)
        assert isinstance(tracer, Tracer)
        assert env.tracer is tracer

    def test_existing_tracer_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        env = Environment()
        mine = Tracer(env)
        assert maybe_install(env) is mine

    def test_get_tracer_falls_back_to_null(self):
        env = Environment()
        assert get_tracer(env) is NULL_TRACER
        tracer = Tracer(env)
        assert get_tracer(env) is tracer


class TestNullObjects:
    def test_null_span_is_inert_context_manager(self):
        with NULL_SPAN as span:
            assert span is NULL_SPAN
        assert NULL_SPAN.set(a=1) is NULL_SPAN
        assert NULL_SPAN.end() is NULL_SPAN
        NULL_SPAN.event("x", y=2)
        assert NULL_SPAN.attrs == {}
        assert NULL_SPAN.ended
        assert NULL_SPAN.duration == 0.0
        assert isinstance(NULL_SPAN, NullSpan)

    def test_null_tracer_records_nothing(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.start_span("x", vpn=1) is NULL_SPAN
        assert NULL_TRACER.current() is None
        NULL_TRACER.mark("m")
        NULL_TRACER.annotate("a")
        NULL_TRACER.on_spawn(object())
        assert NULL_TRACER.open_spans() == []
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.marks == ()


class TestMetricsRegistry:
    def test_histogram_created_once(self):
        registry = MetricsRegistry()
        rec = registry.histogram("lat")
        assert registry.histogram("lat") is rec
        assert isinstance(rec, LatencyRecorder)
        assert registry.histograms() == {"lat": rec}

    def test_adopt_existing_recorder(self):
        registry = MetricsRegistry()
        rec = LatencyRecorder("fork.total")
        assert registry.adopt(rec) is rec
        assert registry.histogram("fork.total") is rec

    def test_counters(self):
        registry = MetricsRegistry()
        registry.incr("hits")
        registry.incr("hits", 4)
        assert registry.counters["hits"] == 5

    def test_record_durations_feeds_histograms(self):
        env = Environment()
        tracer = Tracer(env, record_durations=True)

        def proc():
            with tracer.start_span("phase"):
                yield env.timeout(9.0)

        env.run(env.process(proc()))
        assert tracer.registry.histogram("phase").values == [9.0]

    def test_durations_not_recorded_by_default(self):
        env = Environment()
        tracer = Tracer(env)
        with tracer.start_span("phase"):
            pass
        assert tracer.registry.histograms() == {}


class TestAnalysis:
    def _build(self):
        """root spans [0, 35]: a=[0,10], gap 5, b=[15,35] (b has leaf)."""
        env = Environment()
        tracer = Tracer(env)

        def proc():
            with tracer.start_span("root") as root:
                with tracer.start_span("a"):
                    yield env.timeout(10.0)
                yield env.timeout(5.0)
                with tracer.start_span("b"):
                    with tracer.start_span("b.leaf"):
                        yield env.timeout(20.0)
            self.root = root

        env.run(env.process(proc()))
        return self.root

    def test_breakdown_sums_exactly_to_duration(self):
        root = self._build()
        parts = breakdown(root)
        assert parts == {"a": 10.0, "root": 5.0, "b.leaf": 20.0}
        assert sum(parts.values()) == pytest.approx(root.duration)

    def test_breakdown_max_depth_collapses_detail(self):
        root = self._build()
        parts = breakdown(root, max_depth=1)
        assert parts == {"a": 10.0, "root": 5.0, "b": 20.0}

    def test_breakdown_rejects_open_spans(self):
        env = Environment()
        tracer = Tracer(env)
        span = tracer.start_span("open")
        with pytest.raises(ValueError):
            breakdown(span)

    def test_critical_path_follows_latest_finishers(self):
        root = self._build()
        assert [s.name for s in critical_path(root)] == \
            ["root", "b", "b.leaf"]

    def test_self_time(self):
        root = self._build()
        assert self_time(root) == pytest.approx(5.0)

    def test_overlapping_children_clip_without_double_counting(self):
        env = Environment()
        tracer = Tracer(env)

        def leg(name, duration):
            with tracer.start_span(name):
                yield env.timeout(duration)

        def proc():
            with tracer.start_span("root") as root:
                first = env.process(leg("first", 10.0))
                second = env.process(leg("second", 6.0))
                yield first
                yield second
            self.root = root

        env.run(env.process(proc()))
        parts = breakdown(self.root)
        # Concurrent legs: with equal starts the earlier finisher sorts
        # first and owns [0, 6); the longer leg is clipped to [6, 10).
        # The partition still sums exactly to the end-to-end duration.
        assert sum(parts.values()) == pytest.approx(self.root.duration)
        assert parts["second"] == pytest.approx(6.0)
        assert parts["first"] == pytest.approx(4.0)


class TestExport:
    def _traced_env(self):
        env = Environment()
        tracer = Tracer(env)

        def proc():
            with tracer.start_span("invocation", machine=2, root=False):
                with tracer.start_span("rpc.call", peer=1) as span:
                    yield env.timeout(4.0)
                    span.event("rpc_retry", attempt=2)

        env.run(env.process(proc()))
        tracer.mark("fault.machine_crash", machine=1)
        return tracer

    def test_chrome_trace_schema(self):
        doc = chrome_trace(self._traced_env())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert {e["ph"] for e in events} <= {"X", "i", "M"}
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"invocation", "rpc.call"}
        for event in complete:
            for key in ("name", "cat", "pid", "tid", "ts", "dur", "args"):
                assert key in event
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in instants} == \
            {"rpc_retry", "fault.machine_crash"}
        by_name = {e["name"]: e for e in instants}
        assert by_name["rpc_retry"]["s"] == "t"
        assert by_name["fault.machine_crash"]["s"] == "g"
        # Both spans ride the same root tree -> same tid.
        assert len({e["tid"] for e in complete}) == 1

    def test_chrome_trace_flags_unfinished_spans(self):
        env = Environment()
        tracer = Tracer(env)
        tracer.start_span("leak")
        doc = chrome_trace(tracer)
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event["args"]["unfinished"] is True
        assert event["dur"] == 0.0

    def test_chrome_trace_stringifies_non_primitive_args(self):
        env = Environment()
        tracer = Tracer(env)
        tracer.start_span("s", blob=object()).end()
        doc = chrome_trace(tracer)
        json.dumps(doc)  # must be serializable

    def test_write_chrome_trace_round_trips(self, tmp_path):
        path = str(tmp_path / "trace.json")
        assert write_chrome_trace(self._traced_env(), path) == path
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["traceEvents"]

    def test_text_tree_indents_and_annotates(self):
        tracer = self._traced_env()
        (root,) = tracer.roots
        rendered = text_tree(root)
        lines = rendered.splitlines()
        assert lines[0].startswith("invocation")
        assert any(line.startswith("  rpc.call") for line in lines)
        assert any("* rpc_retry @" in line for line in lines)
        assert "machine=2" in lines[0]
        assert text_tree(root, max_depth=1).splitlines() == lines[:1]


class TestAuditTraces:
    def test_none_and_clean_tracers_pass(self):
        assert audit_traces(None) == []
        env = Environment()
        tracer = Tracer(env)
        with tracer.start_span("ok"):
            pass
        assert audit_traces(tracer) == []
        check_traces(tracer)

    def test_unclosed_span_flagged(self):
        env = Environment()
        tracer = Tracer(env)
        tracer.start_span("leak")
        (violation,) = audit_traces(tracer)
        assert "never ended" in violation
        with pytest.raises(SanitizerViolation):
            check_traces(tracer)

    def test_child_escaping_closed_parent_flagged(self):
        env = Environment()
        tracer = Tracer(env)

        def proc():
            parent = tracer.start_span("parent")
            child = tracer.start_span("child")
            parent.end()
            yield env.timeout(5.0)
            child.end()  # outlives the already-closed parent

        env.run(env.process(proc()))
        violations = audit_traces(tracer)
        assert any("escapes its parent" in v for v in violations)

    def test_end_before_start_flagged(self):
        env = Environment()
        tracer = Tracer(env)
        span = tracer.start_span("warped")
        span.end()
        span.end_time = -1.0  # corrupt the stamp to exercise the check
        violations = audit_traces(tracer)
        assert any("before its start" in v for v in violations)

    def test_orphaned_span_flagged(self):
        env = Environment()
        tracer = Tracer(env)
        span = tracer.start_span("orphan")
        span.end()
        tracer.roots.remove(span)
        violations = audit_traces(tracer)
        assert any("unreachable" in v for v in violations)

    def test_duplicate_invocation_roots_flagged(self):
        env = Environment()
        tracer = Tracer(env)
        tracer.start_span("invocation", root=True, invocation=7).end()
        tracer.start_span("invocation", root=True, invocation=7).end()
        violations = audit_traces(tracer)
        assert any("more than one root" in v for v in violations)


class TestFaultMarks:
    def test_injected_faults_stamp_the_timeline(self):
        env = Environment()
        tracer = Tracer(env)
        cluster = Cluster(env, num_machines=2)
        injector = FaultInjector(env, cluster)
        assert injector.crash_machine(0)
        assert injector.restart_machine(0)
        names = [name for _, name, _ in tracer.marks]
        assert names == ["fault.machine_crash", "fault.machine_restart"]
        assert all(attrs == {"machine": 0} for _, _, attrs in tracer.marks)

    def test_untraced_faults_cost_nothing(self):
        env = Environment()
        cluster = Cluster(env, num_machines=2)
        injector = FaultInjector(env, cluster)
        assert injector.crash_machine(0)  # guard path: env.tracer is None


class TestWarmForkTrace:
    @pytest.fixture(scope="class")
    def warm(self):
        return tracecli.run_warm_fork()

    def test_fork_tree_reaches_rpc_and_daemon(self, warm):
        _, _, fork_span = warm
        names = set()
        stack = [fork_span]
        while stack:
            span = stack.pop()
            names.add(span.name)
            stack.extend(span.children)
        assert "fork.descriptor_query" in names
        assert "rpc.call" in names
        assert "daemon.query_descriptor" in names

    def test_cross_check_within_tolerance(self, warm):
        _, recorders, fork_span = warm
        rows, worst = tracecli.cross_check(fork_span, recorders)
        assert worst <= tracecli.CROSS_CHECK_TOLERANCE
        assert [row["stage"] for row in rows] == \
            list(tracecli.PHASES) + ["total"]

    def test_breakdown_partitions_fork_duration(self, warm):
        _, _, fork_span = warm
        parts = breakdown(fork_span)
        assert sum(parts.values()) == pytest.approx(fork_span.duration)

    def test_trace_audit_clean(self, warm):
        tracer, _, _ = warm
        check_traces(tracer)


class TestTraceCliSmoke:
    def test_smoke_report_and_artifacts(self, tmp_path):
        out_json = str(tmp_path / "TRACE_fork.json")
        report = tracecli.run(smoke=True, out_json=out_json)
        assert report.rows
        with open(out_json) as fh:
            doc = json.load(fh)
        names = {e["name"] for e in doc["traceEvents"]}
        for expected in ("invocation", "lb.dispatch", "mitosis.fork_resume",
                         "rdma.ud_send"):
            assert expected in names, expected
        text = (tmp_path / "TRACE_fork.txt").read_text()
        assert text.startswith("invocation")


def _tree_specs():
    return st.recursive(st.just([]),
                        lambda children: st.lists(children, max_size=3),
                        max_leaves=8)


class TestSpawnTreeProperty:
    @SETTINGS
    @given(spec=_tree_specs(), delay=st.floats(min_value=0.0, max_value=5.0))
    def test_interleaved_spawns_yield_one_wellformed_tree(self, spec, delay):
        env = Environment()
        tracer = Tracer(env)

        def node(sub_specs):
            with tracer.start_span("node"):
                children = [env.process(node(sub)) for sub in sub_specs]
                yield env.timeout(delay)
                for child in children:
                    yield child

        env.run(env.process(node(spec)))

        def count(sub_specs):
            return 1 + sum(count(sub) for sub in sub_specs)

        assert len(tracer.spans) == count(spec)
        assert len(tracer.roots) == 1
        assert audit_traces(tracer) == []
