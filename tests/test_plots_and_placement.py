"""Tests for the terminal plots and seed-placement strategies."""

import pytest

from repro.experiments import plots
from repro.fn import FnCluster, MitosisPolicy
from repro.workloads import tc0_profile


class TestSparkline:
    def test_length_capped_at_width(self):
        line = plots.sparkline(range(1000), width=40)
        assert len(line) == 40

    def test_short_input_kept(self):
        assert len(plots.sparkline([1, 2, 3], width=40)) == 3

    def test_flat_series_renders_baseline(self):
        assert plots.sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series_monotone_blocks(self):
        line = plots.sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_empty(self):
        assert plots.sparkline([]) == ""


class TestBarChart:
    def test_scales_to_peak(self):
        chart = plots.bar_chart([("a", 10.0), ("b", 5.0)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_empty(self):
        assert plots.bar_chart([]) == ""


class TestCdfGrid:
    def test_renders_axes_and_legend(self):
        curves = {"mitosis": [(1.0, 0.5), (2.0, 1.0)],
                  "fn": [(5.0, 0.5), (10.0, 1.0)]}
        grid = plots.cdf_grid(curves, width=20, height=6)
        assert "1.0 |" in grid
        assert "0.0 |" in grid
        assert "mitosis" in grid and "fn" in grid

    def test_empty(self):
        assert plots.cdf_grid({}) == ""


class TestSeedPlacement:
    def _cluster(self, placement):
        return FnCluster(MitosisPolicy(placement=placement),
                         num_invokers=4, num_machines=7, num_dfs_osds=2,
                         seed=9)

    def _register_many(self, fn, count=4):
        from repro.containers import ContainerImage, MemoryLayout
        from repro.kernel import VmaKind
        from repro.workloads import FunctionProfile

        def profile(i):
            layout = MemoryLayout(20, 100, 20, 50)
            image = ContainerImage("f%d" % i, layout, 4 * 1024 * 1024,
                                   100000.0)
            return FunctionProfile("f%d" % i, image, 1000.0,
                                   {VmaKind.CODE: 0.5})

        def body():
            for i in range(count):
                yield from fn.register(profile(i))

        fn.env.run(fn.env.process(body()))

    def test_round_robin_spreads_seeds(self):
        fn = self._cluster("round-robin")
        self._register_many(fn, count=4)
        indices = [fn.policy.seeds["f%d" % i][0].index for i in range(4)]
        assert indices == [0, 1, 2, 3]

    def test_least_memory_avoids_loaded_invoker(self):
        fn = self._cluster("least-memory")
        self._register_many(fn, count=2)
        first = fn.policy.seeds["f0"][0].index
        second = fn.policy.seeds["f1"][0].index
        assert first != second

    def test_random_is_deterministic_per_seed(self):
        a = self._cluster("random")
        self._register_many(a, count=3)
        b = self._cluster("random")
        self._register_many(b, count=3)
        for i in range(3):
            assert (a.policy.seeds["f%d" % i][0].index
                    == b.policy.seeds["f%d" % i][0].index)

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            MitosisPolicy(placement="astrology")
