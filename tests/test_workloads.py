"""Unit tests for function profiles, execution, and trace generation."""

import pytest

from repro import params
from repro.cluster import Cluster
from repro.containers import ContainerRuntime
from repro.kernel import Kernel, VmaKind
from repro.sim import Environment, SeededStreams
from repro.workloads import (
    FunctionProfile,
    execute,
    func_660323,
    func_9a3e4e,
    functionbench,
    tc0_profile,
    tc1_profile,
)


@pytest.fixture
def rig():
    env = Environment()
    cluster = Cluster(env, num_machines=1)
    kernel = Kernel(env, cluster.machine(0))
    runtime = ContainerRuntime(env, kernel)
    return env, kernel, runtime


def run(env, gen):
    return env.run(env.process(gen))


class TestProfiles:
    def test_tc0_is_small_and_fast(self):
        profile = tc0_profile()
        assert profile.compute_us == params.MS
        assert profile.image.name == "tc0-hello-world"

    def test_tc1_touches_more_than_tc0(self, rig):
        env, kernel, runtime = rig
        tc0, tc1 = tc0_profile(), tc1_profile()

        def count(profile):
            container = yield from runtime.cold_start(profile.image)
            return profile.touched_pages(container.task.address_space)

        n0 = run(env, count(tc0))
        n1 = run(env, count(tc1))
        assert n1 > 3 * n0

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            FunctionProfile("x", tc0_profile().image, 1000.0,
                            {VmaKind.CODE: 1.5})

    def test_plan_is_deterministic(self, rig):
        env, kernel, runtime = rig
        profile = tc0_profile()

        def body():
            container = yield from runtime.cold_start(profile.image)
            return (profile.planned_touches(container.task.address_space),
                    profile.planned_touches(container.task.address_space))

        first, second = run(env, body())
        assert first == second
        assert len(first) > 0

    def test_writes_only_in_writable_regions(self, rig):
        env, kernel, runtime = rig
        profile = tc0_profile()

        def body():
            container = yield from runtime.cold_start(profile.image)
            return container, profile.planned_touches(
                container.task.address_space)

        container, plan = run(env, body())
        space = container.task.address_space
        for vpn, write in plan:
            if write:
                assert space.find_vma(vpn).writable


class TestExecution:
    def test_warm_execution_is_fast(self, rig):
        env, kernel, runtime = rig
        profile = tc0_profile()

        def body():
            container = yield from runtime.cold_start(profile.image)
            result = yield from execute(env, container, profile)
            return result

        result = run(env, body())
        # All pages resident: latency ~= compute time + new-page faults.
        assert result.latency < 2 * profile.compute_us
        assert result.pages_touched > 0

    def test_execution_grows_heap(self, rig):
        env, kernel, runtime = rig
        profile = tc0_profile()

        def body():
            container = yield from runtime.cold_start(profile.image)
            pages_before = container.task.address_space.total_pages
            yield from execute(env, container, profile)
            return pages_before, container.task.address_space.total_pages

        before, after = run(env, body())
        assert after == before + profile.new_heap_pages

    def test_chameleon_touch_count_near_2303(self, rig):
        env, kernel, runtime = rig
        profile = functionbench.chameleon()

        def body():
            container = yield from runtime.cold_start(profile.image)
            return profile.touched_pages(container.task.address_space)

        touched = run(env, body())
        assert abs(touched - 2303) < 120  # §6.4: 2,303 pages

    def test_functionbench_suite_has_named_apps(self):
        names = {p.name for p in functionbench.suite()}
        assert "chameleon" in names
        assert len(names) >= 6


class TestAzureTraces:
    def test_spike_ratio_matches_claim(self):
        trace = func_660323()
        # §2.2: invocation frequencies fluctuate up to 33,000x in a minute.
        assert trace.peak_ratio() >= 33000

    def test_machines_required_match_figure1(self):
        assert max(func_660323().machines_required()) == 31
        assert max(func_9a3e4e().machines_required()) == 10

    def test_arrivals_sorted_and_scaled(self):
        trace = func_660323()
        streams = SeededStreams(seed=1)
        arrivals = trace.arrival_times(streams, scale=0.001)
        assert arrivals == sorted(arrivals)
        expected = sum(int(round(c * 0.001)) for c in trace.minute_counts)
        assert len(arrivals) == expected

    def test_arrivals_deterministic_per_seed(self):
        trace = func_9a3e4e()
        a = trace.arrival_times(SeededStreams(7), scale=0.01)
        b = trace.arrival_times(SeededStreams(7), scale=0.01)
        assert a == b

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            func_660323().arrival_times(SeededStreams(0), scale=0)

    def test_empty_trace_rejected(self):
        from repro.workloads import SpikeTrace
        with pytest.raises(ValueError):
            SpikeTrace("empty", [], exec_time_us=1000)
