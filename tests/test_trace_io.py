"""Tests for trace persistence and Azure-CSV ingestion."""

import csv

import pytest

from repro.workloads import func_660323
from repro.workloads.trace_io import (
    load_azure_csv,
    load_trace,
    save_trace,
    summarize,
    trim_to_spike,
)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        trace = func_660323()
        path = tmp_path / "trace.csv"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.minute_counts == trace.minute_counts
        assert loaded.exec_time_us == trace.exec_time_us

    def test_load_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk.csv"
        path.write_text("not,a,trace\n1,2,3\n")
        with pytest.raises(ValueError):
            load_trace(path)


def write_azure_csv(path, rows, minutes=8):
    header = (["HashOwner", "HashApp", "HashFunction", "Trigger"]
              + [str(i) for i in range(1, minutes + 1)])
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(header)
        for function_hash, counts in rows:
            writer.writerow(["own", "app", function_hash, "http"]
                            + [str(c) for c in counts])


class TestAzureCsv:
    def test_load_by_prefix(self, tmp_path):
        path = tmp_path / "azure.csv"
        write_azure_csv(path, [
            ("abc123def", [1, 2, 3, 4, 900, 40, 5, 1]),
            ("zzz999", [7] * 8),
        ])
        trace = load_azure_csv(path, "abc123")
        assert trace.minute_counts == [1, 2, 3, 4, 900, 40, 5, 1]
        assert trace.name == "abc123"

    def test_ambiguous_prefix_rejected(self, tmp_path):
        path = tmp_path / "azure.csv"
        write_azure_csv(path, [("aaa1", [1] * 8), ("aaa2", [2] * 8)])
        with pytest.raises(KeyError, match="use a longer prefix"):
            load_azure_csv(path, "aaa")

    def test_missing_function_rejected(self, tmp_path):
        path = tmp_path / "azure.csv"
        write_azure_csv(path, [("aaa1", [1] * 8)])
        with pytest.raises(KeyError, match="no function"):
            load_azure_csv(path, "bbb")

    def test_max_minutes_truncates(self, tmp_path):
        path = tmp_path / "azure.csv"
        write_azure_csv(path, [("aaa1", [1, 2, 3, 4, 5, 6, 7, 8])])
        trace = load_azure_csv(path, "aaa1", max_minutes=3)
        assert trace.minute_counts == [1, 2, 3]

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "azure.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError):
            load_azure_csv(path, "x")


class TestAnalysis:
    def test_trim_to_spike_centers_on_peak(self):
        trace = func_660323()
        trimmed = trim_to_spike(trace, context_minutes=2)
        assert max(trimmed.minute_counts) == max(trace.minute_counts)
        assert trimmed.minutes <= 5

    def test_summarize_matches_fig1(self):
        stats = summarize(func_660323())
        assert stats["peak_ratio"] == 33000
        assert stats["max_machines_required"] == 31
