"""Tests for the reprolint static-analysis pass.

The fixture tree under ``tests/reprolint_fixtures`` mirrors the repo
layout (``src/repro/...``) so the rules' path prefixes and exemptions
apply exactly as they do on the real tree.  Per rule it holds positive,
negative, pragma-suppressed and (via a generated baseline) baseline-
suppressed cases.  The meta-test at the bottom holds the real tree to
zero non-baselined findings.
"""

import json
import os
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO, "tests", "reprolint_fixtures")
if REPO not in sys.path:
    sys.path.insert(0, REPO)

from tools.reprolint import engine  # noqa: E402
from tools import reprolint  # noqa: E402,F401  (registers the rules)

ALL_RULES = (
    "no-wallclock-or-global-random",
    "rpc-deadline",
    "no-bare-except",
    "no-raw-pte-mutation",
    "acquire-release-balance",
    "event-handler-hygiene",
    "hot-path-alloc",
    "unclosed-span",
    "stale-generation-compare",
    "raw-link-capacity",
    "cross-shard-mutation",
    "tie-order-hazard",
    "scheduler-abstraction-leak",
    "qp-create-outside-connplane",
)


def run_fixtures(rule_names=None, baseline_path=None):
    return engine.run(repo_root=FIXTURES, scan_paths=("src/repro",),
                      rule_names=rule_names, baseline_path=baseline_path)


@pytest.fixture(scope="module")
def report():
    return run_fixtures()


def by_rule(findings, name):
    return [f for f in findings if f.rule == name]


class TestRegistry:
    def test_all_rules_registered(self):
        for name in ALL_RULES:
            assert name in engine.REGISTRY
            assert engine.REGISTRY[name].severity == "error"
            assert engine.REGISTRY[name].doc

    def test_unknown_rule_rejected(self):
        with pytest.raises(KeyError):
            engine.run(rule_names=("no-such-rule",))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            engine.rule("no-bare-except")(lambda f: ())


class TestRulePositives:
    """Every planted violation is found; nothing clean is flagged."""

    def test_wallclock(self, report):
        found = by_rule(report.findings, "no-wallclock-or-global-random")
        assert len(found) == 4  # from-import, random.random, time.time, now
        assert all(f.path == "src/repro/wallclock_bad.py" for f in found)

    def test_rpc_deadline(self, report):
        found = by_rule(report.findings, "rpc-deadline")
        # rpc_bad.py: missing deadline; hedge_bad.py: bare-literal
        # deadline, breaker cooldown, and hedge delay.
        assert sorted(f.path for f in found) == [
            "src/repro/hedge_bad.py",
            "src/repro/hedge_bad.py",
            "src/repro/hedge_bad.py",
            "src/repro/rpc_bad.py",
        ]
        assert sum("bare literal" in f.message for f in found) == 3

    def test_bare_except(self, report):
        found = by_rule(report.findings, "no-bare-except")
        assert [f.path for f in found] == ["src/repro/bare_except_bad.py"]

    def test_raw_pte_mutation(self, report):
        found = by_rule(report.findings, "no-raw-pte-mutation")
        assert len(found) == 3  # pte.frame, pte.present, frame.refcount
        assert all(f.path == "src/repro/pte_bad.py" for f in found)

    def test_acquire_release(self, report):
        found = by_rule(report.findings, "acquire-release-balance")
        messages = sorted(f.message for f in found)
        assert len(found) == 2
        assert "no matching" in messages[1]
        assert "released outside" in messages[0]

    def test_event_handler(self, report):
        found = by_rule(report.findings, "event-handler-hygiene")
        assert len(found) == 2  # callback re-entry + library env.run()
        assert any("event callback" in f.message for f in found)
        assert any("library code" in f.message for f in found)

    def test_hot_path_alloc(self, report):
        found = by_rule(report.findings, "hot-path-alloc")
        # Only the marked spawner: the batched function and the unmarked
        # demand entry point stay clean.
        assert [f.path for f in found] == ["src/repro/hotpath_bad.py"]
        assert "fetch_range_bad" in found[0].message

    def test_stale_generation_compare(self, report):
        found = by_rule(report.findings, "stale-generation-compare")
        # Eq on an attribute, NotEq on a subscript key, and the lease
        # path with no ordering; the `<`-fenced, `genre` and `release`
        # cases stay clean.
        assert len(found) == 3
        assert all(f.path == "src/repro/generation_bad.py" for f in found)
        assert sum("fencing tokens are ordered" in f.message
                   for f in found) == 2
        assert sum("never orders" in f.message for f in found) == 1

    def test_raw_link_capacity(self, report):
        found = by_rule(report.findings, "raw-link-capacity")
        # Module constant, literal arithmetic, parameter default, call
        # keyword, and attribute binding; the params-derived, zero
        # (neutral-element), Resource-slot and drop-rate cases stay
        # clean.
        assert all(f.path == "src/repro/fabric_bad.py" for f in found)
        assert len(found) == 5
        messages = sorted(f.message for f in found)
        assert sum("assigned to" in m for m in messages) == 3
        assert sum("passed as" in m for m in messages) == 1
        assert sum("default for" in m for m in messages) == 1

    def test_unclosed_span(self, report):
        found = by_rule(report.findings, "unclosed-span")
        # The discarded expression and the leaked binding; the with /
        # finally / factory / handoff patterns stay clean.
        assert len(found) == 2
        assert all(f.path == "src/repro/span_bad.py" for f in found)
        messages = sorted(f.message for f in found)
        assert "discarded" in messages[0]
        assert "never" in messages[1]

    def test_cross_shard_mutation(self, report):
        found = by_rule(report.findings, "cross-shard-mutation")
        # All four flavours: machine->cluster, cluster->machine,
        # foreign-instance receiver, and unproven owner.  Quietist's
        # same-class self writes stay clean.
        assert all(f.path == "src/repro/shard_bad.py" for f in found)
        messages = sorted(f.message for f in found)
        assert len(found) == 4
        assert "foreign-instance receiver" in messages[0]
        assert "owning shard is unproven" in messages[1]
        assert "cluster-global Balancer writes machine-owned" in messages[2]
        assert "machine-owned Agent writes cluster-global" in messages[3]

    def test_tie_order_hazard(self, report):
        found = by_rule(report.findings, "tie-order-hazard")
        # Directory.table (publisher vs reclaimer, unordered) and
        # Directory.counter (Agent._beat racing its own executions);
        # both report at the cell's defining line.
        assert all(f.path == "src/repro/shard_bad.py" for f in found)
        assert len(found) == 2
        cells = sorted(f.message.split(" ")[0] for f in found)
        assert cells == ["Directory.counter", "Directory.table"]
        assert all("_eid tie-break" in f.message for f in found)

    def test_scheduler_abstraction_leak(self, report):
        found = by_rule(report.findings, "scheduler-abstraction-leak")
        # The depth probe and the head indexing; the suppressed case and
        # the peek_entry() path stay clean, as does sim/loop.py (exempt:
        # it owns the storage layout).
        assert all(f.path == "src/repro/scheduler_bad.py" for f in found)
        assert len(found) == 2
        assert all("peek_entry" in f.message for f in found)

    def test_qp_create_outside_connplane(self, report):
        found = by_rule(report.findings, "qp-create-outside-connplane")
        # The direct RcQp and DcTarget constructions; the suppressed case
        # and the factory/lease paths stay clean, as does rdma/ (exempt:
        # it owns the constructors).
        assert all(f.path == "src/repro/qpcreate_bad.py" for f in found)
        assert len(found) == 2
        types = sorted(f.message.split("`")[1] for f in found)
        assert types == ["DcTarget(...)", "RcQp(...)"]
        assert all("NIC" in f.message for f in found)


class TestSuppression:
    def test_one_pragma_suppression_per_rule(self, report):
        suppressed = {f.rule for f in report.suppressed}
        assert suppressed == set(ALL_RULES)
        # One pragma case per rule (the program-scope shard rules
        # included), plus hedge_bad.py's suppressed bare-literal case
        # (rpc-deadline has two suppression fixtures).
        assert len(report.suppressed) == len(ALL_RULES) + 1

    def test_exempt_paths_never_flagged(self, report):
        flagged = {f.path for f in report.findings + report.suppressed}
        assert "src/repro/sim/rng.py" not in flagged
        assert "src/repro/kernel/page_table.py" not in flagged
        assert "src/repro/experiments/driver.py" not in flagged
        assert "src/repro/sim/loop.py" not in flagged

    def test_baseline_roundtrip(self, report, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        engine.save_baseline(baseline, report.findings)
        rerun = run_fixtures(baseline_path=baseline)
        assert rerun.findings == []
        assert rerun.exit_code == 0
        assert len(rerun.baselined) == len(report.findings)

    def test_baseline_keys_are_line_insensitive(self, report):
        finding = report.findings[0]
        moved = engine.Finding(finding.rule, finding.severity, finding.path,
                               finding.line + 40, finding.message)
        assert moved.key() == finding.key()

    def test_multi_rule_pragma_suppresses_both(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "multi.py").write_text(
            "import time\n"
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except: return time.time()  "
            "# reprolint: disable=no-bare-except,"
            "no-wallclock-or-global-random\n")
        report = engine.run(
            repo_root=str(tmp_path), scan_paths=("src/repro",),
            rule_names=("no-bare-except", "no-wallclock-or-global-random"),
            baseline_path=None)
        assert report.findings == []
        assert sorted(f.rule for f in report.suppressed) == [
            "no-bare-except", "no-wallclock-or-global-random"]

    def test_count_aware_baseline_pins_duplicates(self, tmp_path):
        # Three identical violations share one line-insensitive key; a
        # baseline built from two of them must keep pinning exactly two
        # and report the third (the old v1 format collapsed all three).
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "dupes.py").write_text(
            "import time\n"
            "def f():\n"
            "    a = time.time()\n"
            "    b = time.time()\n"
            "    c = time.time()\n")
        kwargs = dict(repo_root=str(tmp_path), scan_paths=("src/repro",),
                      rule_names=("no-wallclock-or-global-random",))
        first = engine.run(baseline_path=None, **kwargs)
        assert len(first.findings) == 3
        assert len({f.key() for f in first.findings}) == 1
        baseline = str(tmp_path / "baseline.json")
        engine.save_baseline(baseline, first.findings[:2])
        assert engine.load_baseline(baseline) == {
            first.findings[0].key(): 2}
        second = engine.run(baseline_path=baseline, **kwargs)
        assert len(second.baselined) == 2
        assert len(second.findings) == 1

    def test_v1_baseline_entries_read_as_count_one(self, tmp_path):
        baseline = tmp_path / "v1.json"
        baseline.write_text(json.dumps({"version": 1, "findings": ["k"]}))
        assert engine.load_baseline(str(baseline)) == {"k": 1}

    def test_update_baseline_is_a_fixed_point(self, tmp_path):
        # --update-baseline writes findings *plus* already-baselined
        # entries, so updating twice is byte-stable and never bleeds
        # grandfathered debt (the CLI does findings + baselined too).
        baseline = str(tmp_path / "b.json")
        first = run_fixtures()
        engine.save_baseline(baseline, first.findings + first.baselined)
        with open(baseline) as handle:
            saved_once = handle.read()
        second = run_fixtures(baseline_path=baseline)
        assert second.findings == []
        assert len(second.baselined) == len(first.findings)
        engine.save_baseline(baseline, second.findings + second.baselined)
        with open(baseline) as handle:
            assert handle.read() == saved_once


class TestReportFormats:
    def test_exit_code_and_text_footer(self, report):
        assert report.exit_code == 1
        footer = report.to_text().splitlines()[-1]
        assert footer.startswith("reprolint:")
        assert "%d finding(s)" % len(report.findings) in footer

    def test_json_payload(self, report):
        payload = json.loads(report.to_json())
        assert payload["errors"] == len(report.findings)
        assert payload["suppressed"] == len(report.suppressed)
        assert sorted(payload["rules"]) == sorted(ALL_RULES)


class TestSeverityFilter:
    def test_min_severity_drops_warning_rules(self):
        engine.rule("probe-warning", severity="warning",
                    paths=("src/repro",))(lambda f: ())
        try:
            errors_only = run_fixtures(
                rule_names=("probe-warning", "no-bare-except"))
            assert "probe-warning" in errors_only.rules_run
            filtered = engine.run(
                repo_root=FIXTURES, scan_paths=("src/repro",),
                rule_names=("probe-warning", "no-bare-except"),
                baseline_path=None, min_severity="error")
            assert filtered.rules_run == {"no-bare-except"}
        finally:
            engine.REGISTRY.pop("probe-warning", None)

    def test_warning_findings_do_not_fail_the_run(self):
        engine.rule("probe-warning", severity="warning",
                    paths=("src/repro",))(
            lambda f: [(1, "advisory only")])
        try:
            report = engine.run(
                repo_root=FIXTURES, scan_paths=("src/repro",),
                rule_names=("probe-warning",), baseline_path=None)
            assert report.findings and report.errors == []
            assert report.exit_code == 0
        finally:
            engine.REGISTRY.pop("probe-warning", None)

    def test_unknown_severity_rejected(self):
        with pytest.raises(KeyError):
            engine.run(min_severity="fatal")


class TestParallelScan:
    def test_jobs_output_identical_to_serial(self):
        serial = run_fixtures()
        parallel = engine.run(repo_root=FIXTURES, scan_paths=("src/repro",),
                              baseline_path=None, jobs=2)
        assert parallel.to_json() == serial.to_json()
        assert ([f.render() for f in parallel.suppressed]
                == [f.render() for f in serial.suppressed])


class TestCli:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "tools.reprolint"] + list(args),
            cwd=REPO, capture_output=True, text=True)

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        for name in ALL_RULES:
            assert name in proc.stdout

    def test_unknown_rule_exits_2(self):
        proc = self.run_cli("--rule", "no-such-rule")
        assert proc.returncode == 2

    def test_json_run_over_real_tree(self):
        proc = self.run_cli("--format=json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["findings"] == []
        assert payload["errors"] == 0


class TestMetaRealTree:
    def test_real_tree_has_zero_nonbaselined_findings(self):
        report = engine.run()  # src/repro with the committed baseline
        assert report.findings == [], report.to_text()

    def test_committed_baseline_holds_known_debt_only(self):
        # Two kinds of grandfathered debt, nothing else: the one
        # audit_lineage probe that deliberately `!=`-compares its
        # WAL-replay snapshot (replay *equivalence*, not fencing), and
        # the existing shard couplings the dataflow rules surfaced —
        # the worklist for ROADMAP item 1, paid down incrementally.
        baseline = engine.load_baseline(engine.DEFAULT_BASELINE)
        assert isinstance(baseline, dict)
        probes = [k for k in baseline
                  if k.startswith("stale-generation-compare:")]
        assert probes == [k for k in baseline if k.startswith(
            "stale-generation-compare:src/repro/sanitizers/__init__.py:")]
        assert len(probes) == 1
        rest = [k for k in baseline if k not in probes]
        assert rest, "shard-coupling debt unexpectedly empty"
        assert all(k.startswith(("cross-shard-mutation:",
                                 "tie-order-hazard:")) for k in rest)
