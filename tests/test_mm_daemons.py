"""Tests for KSM and page migration, and their interplay with MITOSIS's
passive access control (§4.3's list of mapping-changing mechanisms)."""

import pytest

from repro import params
from repro.cluster import Cluster
from repro.containers import ContainerRuntime, hello_world_image
from repro.core import MitosisDeployment
from repro.kernel import Kernel, KsmDaemon, PageMigrator, VmaKind
from repro.rdma import RdmaFabric, RpcRuntime
from repro.sim import Environment


@pytest.fixture
def rig():
    env = Environment()
    cluster = Cluster(env, num_machines=2, num_racks=1)
    kernels = [Kernel(env, m) for m in cluster]
    return env, cluster, kernels


def run(env, gen):
    return env.run(env.process(gen))


def make_task(kernel, pages=8):
    task = kernel.create_task("t")
    task.address_space.add_vma(pages, VmaKind.HEAP)
    return task


class TestKsm:
    def test_merges_identical_pages_across_tasks(self, rig):
        env, cluster, (k0, _) = rig
        a = make_task(k0)
        b = make_task(k0)
        vma_a = a.address_space.vmas[0]
        vma_b = b.address_space.vmas[0]

        def body():
            for i in range(4):
                yield from k0.write_page(a, vma_a.start_vpn + i, "same")
                yield from k0.write_page(b, vma_b.start_vpn + i, "same")
            before = cluster.machine(0).memory.used
            ksm = KsmDaemon(k0)
            merged = yield from ksm.scan()
            return merged, before, cluster.machine(0).memory.used, ksm

        merged, before, after, ksm = run(env, body())
        # Eight identical pages collapse onto one canonical frame.
        assert merged == 7
        assert after == before - 7 * params.PAGE_SIZE
        assert ksm.bytes_saved == 7 * params.PAGE_SIZE

    def test_merged_pages_are_cow(self, rig):
        env, cluster, (k0, _) = rig
        a = make_task(k0)
        b = make_task(k0)
        vma_a = a.address_space.vmas[0]
        vma_b = b.address_space.vmas[0]

        def body():
            yield from k0.write_page(a, vma_a.start_vpn, "dup")
            yield from k0.write_page(b, vma_b.start_vpn, "dup")
            yield from KsmDaemon(k0).scan()
            shared = (a.address_space.page_table.entry(vma_a.start_vpn).frame
                      is b.address_space.page_table.entry(vma_b.start_vpn).frame)
            # Writing after the merge must un-share.
            yield from k0.write_page(b, vma_b.start_vpn, "mine")
            a_sees = yield from k0.touch(a, vma_a.start_vpn)
            b_sees = yield from k0.touch(b, vma_b.start_vpn)
            return shared, a_sees, b_sees

        shared, a_sees, b_sees = run(env, body())
        assert shared
        assert a_sees == "dup"
        assert b_sees == "mine"

    def test_distinct_content_untouched(self, rig):
        env, cluster, (k0, _) = rig
        a = make_task(k0)
        vma = a.address_space.vmas[0]

        def body():
            for i in range(4):
                yield from k0.write_page(a, vma.start_vpn + i, "v%d" % i)
            return (yield from KsmDaemon(k0).scan())

        assert run(env, body()) == 0

    def test_scan_charges_compare_time(self, rig):
        env, cluster, (k0, _) = rig
        a = make_task(k0, pages=16)
        k0.warm(a)

        def body():
            start = env.now
            yield from KsmDaemon(k0).scan()
            return env.now - start

        assert run(env, body()) > 0


class TestMigration:
    def test_migration_preserves_content_changes_frame(self, rig):
        env, cluster, (k0, _) = rig
        task = make_task(k0)
        vma = task.address_space.vmas[0]

        def body():
            yield from k0.write_page(task, vma.start_vpn, "payload")
            old_frame = task.address_space.page_table.entry(
                vma.start_vpn).frame
            moved = yield from PageMigrator(k0).migrate(
                task, [vma.start_vpn])
            new_frame = task.address_space.page_table.entry(
                vma.start_vpn).frame
            content = yield from k0.touch(task, vma.start_vpn)
            return moved, old_frame, new_frame, content

        moved, old_frame, new_frame, content = run(env, body())
        assert moved == 1
        assert new_frame is not old_frame
        assert not old_frame.live
        assert content == "payload"

    def test_shared_frames_skipped(self, rig):
        env, cluster, (k0, _) = rig
        parent = make_task(k0)
        k0.warm(parent)
        vma = parent.address_space.vmas[0]

        def body():
            yield from k0.fork_local(parent)  # COW-shares every frame
            return (yield from PageMigrator(k0).migrate(
                parent, [vma.start_vpn]))

        assert run(env, body()) == 0

    def test_absent_pages_skipped(self, rig):
        env, cluster, (k0, _) = rig
        task = make_task(k0)
        vma = task.address_space.vmas[0]

        def body():
            return (yield from PageMigrator(k0).migrate(
                task, [vma.start_vpn]))

        assert run(env, body()) == 0


class TestPassiveControlUnderMmActivity:
    """KSM / migration on the parent must revoke remote access first; the
    children keep reading correct data through the fallback path."""

    def _mitosis_rig(self):
        env = Environment()
        cluster = Cluster(env, num_machines=2, num_racks=1)
        fabric = RdmaFabric(env, cluster)
        rpc = RpcRuntime(env, fabric)
        kernels = [Kernel(env, m) for m in cluster]
        runtimes = [ContainerRuntime(env, k) for k in kernels]
        deployment = MitosisDeployment(env, cluster, fabric, rpc, runtimes)
        return env, cluster, kernels, runtimes, deployment

    def test_ksm_on_parent_triggers_revocation_and_fallback(self):
        env, cluster, kernels, runtimes, deployment = self._mitosis_rig()
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))

        def body():
            parent = yield from runtimes[0].cold_start(hello_world_image())
            heap = parent.task.address_space.vmas[3]
            # Two identical pages in the parent, so KSM will merge them.
            yield from kernels[0].write_page(parent.task, heap.start_vpn,
                                             "dup")
            yield from kernels[0].write_page(parent.task,
                                             heap.start_vpn + 1, "dup")
            meta = yield from node0.fork_prepare(parent)
            child = yield from node1.fork_resume(meta)
            # KSM pass over everything on machine 0 (shadow included).
            yield from KsmDaemon(kernels[0]).scan()
            c0 = yield from kernels[1].touch(child.task, heap.start_vpn)
            c1 = yield from kernels[1].touch(child.task, heap.start_vpn + 1)
            return c0, c1

        c0, c1 = env.run(env.process(body()))
        assert c0 == "dup"
        assert c1 == "dup"
        node1 = deployment.node(cluster.machine(1))
        # The merge revoked (at least) the heap VMA's target, so reads in
        # it came back through the fallback daemon.
        assert node1.pager.counters["fallback_rpcs"] >= 1

    def test_migration_on_shadow_triggers_fallback(self):
        env, cluster, kernels, runtimes, deployment = self._mitosis_rig()
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))

        def body():
            parent = yield from runtimes[0].cold_start(hello_world_image())
            heap = parent.task.address_space.vmas[3]
            yield from kernels[0].write_page(parent.task, heap.start_vpn,
                                             "precious")
            meta = yield from node0.fork_prepare(parent)
            child = yield from node1.fork_resume(meta)
            _, shadow = node0.service.lookup(meta.handler_id, meta.auth_key)
            # The shadow's frame is COW-shared with the parent, so migrate
            # the *parent's* copy first to un-share, then the shadow's.
            yield from kernels[0].touch(parent.task, heap.start_vpn,
                                        write=True)
            yield from PageMigrator(kernels[0]).migrate(
                shadow, [heap.start_vpn])
            content = yield from kernels[1].touch(child.task, heap.start_vpn)
            return content

        content = env.run(env.process(body()))
        assert content == "precious"
        node1 = deployment.node(cluster.machine(1))
        assert node1.pager.counters["revocation_fallbacks"] == 1


class TestThp:
    def test_collapse_aligned_private_run(self, rig):
        env, cluster, (k0, _) = rig
        from repro.kernel import ThpDaemon
        task = k0.create_task("t")
        vma = task.address_space.add_vma(
            40, VmaKind.HEAP, start_vpn=1024)  # aligned for span=16
        k0.warm(task)
        thp = ThpDaemon(k0, span=16)

        def body():
            return (yield from thp.collapse(task, vma))

        collapsed = run(env, body())
        assert collapsed == 2  # [1024,1040) and [1040,1056); tail too short
        table = task.address_space.page_table
        assert table.entry(1024).huge
        assert not table.entry(1056).huge

    def test_collapse_preserves_content(self, rig):
        env, cluster, (k0, _) = rig
        from repro.kernel import ThpDaemon
        task = k0.create_task("t")
        vma = task.address_space.add_vma(16, VmaKind.HEAP, start_vpn=512)
        thp = ThpDaemon(k0, span=16)

        def body():
            for i in range(16):
                yield from k0.write_page(task, 512 + i, "p%d" % i)
            yield from thp.collapse(task, vma)
            contents = []
            for i in range(16):
                contents.append((yield from k0.touch(task, 512 + i)))
            return contents

        contents = run(env, body())
        assert contents == ["p%d" % i for i in range(16)]

    def test_shared_runs_not_collapsed(self, rig):
        env, cluster, (k0, _) = rig
        from repro.kernel import ThpDaemon
        parent = k0.create_task("p")
        vma = parent.address_space.add_vma(16, VmaKind.HEAP, start_vpn=512)
        k0.warm(parent)

        def body():
            yield from k0.fork_local(parent)  # every frame COW-shared
            return (yield from ThpDaemon(k0, span=16).collapse(parent, vma))

        assert run(env, body()) == 0

    def test_collapse_on_shadow_revokes_remote_access(self):
        env = Environment()
        cluster = Cluster(env, num_machines=2, num_racks=1)
        fabric = RdmaFabric(env, cluster)
        rpc = RpcRuntime(env, fabric)
        kernels = [Kernel(env, m) for m in cluster]
        runtimes = [ContainerRuntime(env, k) for k in kernels]
        deployment = MitosisDeployment(env, cluster, fabric, rpc, runtimes)
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))
        from repro.kernel import ThpDaemon

        def body():
            parent = yield from runtimes[0].cold_start(hello_world_image())
            heap = parent.task.address_space.vmas[3]
            meta = yield from node0.fork_prepare(parent)
            child = yield from node1.fork_resume(meta)
            _, shadow = node0.service.lookup(meta.handler_id, meta.auth_key)
            # Un-share the shadow's heap frames (parent writes), then
            # collapse them into huge pages on the shadow.
            for vpn in heap.vpns():
                yield from kernels[0].touch(parent.task, vpn, write=True)
            shadow_heap = shadow.address_space.find_vma(heap.start_vpn)
            collapsed = yield from ThpDaemon(kernels[0], span=16).collapse(
                shadow, shadow_heap)
            content = yield from kernels[1].touch(child.task,
                                                  heap.start_vpn)
            return collapsed, content

        collapsed, content = env.run(env.process(body()))
        assert collapsed >= 1
        assert content is not None
        node1 = deployment.node(cluster.machine(1))
        assert node1.pager.counters["revocation_fallbacks"] >= 1
