"""Tests for the sequential remote-page prefetching extension."""

import pytest

from repro.cluster import Cluster
from repro.containers import ContainerRuntime, hello_world_image
from repro.core import MitosisDeployment
from repro.kernel import Kernel
from repro.rdma import RdmaFabric, RpcRuntime
from repro.sim import Environment


def build_rig(prefetch_depth):
    env = Environment()
    cluster = Cluster(env, num_machines=2, num_racks=1)
    fabric = RdmaFabric(env, cluster)
    rpc = RpcRuntime(env, fabric)
    kernels = [Kernel(env, m) for m in cluster]
    runtimes = [ContainerRuntime(env, k) for k in kernels]
    deployment = MitosisDeployment(env, cluster, fabric, rpc, runtimes,
                                   prefetch_depth=prefetch_depth)
    return env, cluster, kernels, runtimes, deployment


def forked_child(env, cluster, runtimes, deployment):
    node0 = deployment.node(cluster.machine(0))
    node1 = deployment.node(cluster.machine(1))

    def body():
        parent = yield from runtimes[0].cold_start(hello_world_image())
        meta = yield from node0.fork_prepare(parent)
        child = yield from node1.fork_resume(meta)
        return parent, child

    return env.run(env.process(body()))


class TestPrefetch:
    def test_prefetch_pulls_following_pages(self):
        env, cluster, kernels, runtimes, deployment = build_rig(
            prefetch_depth=4)
        parent, child = forked_child(env, cluster, runtimes, deployment)
        heap = parent.task.address_space.vmas[3]

        def body():
            yield from kernels[1].touch(child.task, heap.start_vpn)
            # Let the async prefetch worker drain.
            yield env.timeout(1000.0)
            table = child.task.address_space.page_table
            return [table.entry(heap.start_vpn + i).present
                    for i in range(6)]

        present = env.run(env.process(body()))
        assert present[:5] == [True] * 5   # faulted page + 4 prefetched
        assert not present[5]
        node1 = deployment.node(cluster.machine(1))
        assert node1.pager.counters["prefetched_pages"] == 4

    def test_prefetched_pages_cost_no_fault_time(self):
        env, cluster, kernels, runtimes, deployment = build_rig(
            prefetch_depth=4)
        parent, child = forked_child(env, cluster, runtimes, deployment)
        heap = parent.task.address_space.vmas[3]

        def body():
            yield from kernels[1].touch(child.task, heap.start_vpn)
            yield env.timeout(1000.0)
            start = env.now
            yield from kernels[1].touch(child.task, heap.start_vpn + 1)
            return env.now - start

        assert env.run(env.process(body())) == 0.0

    def test_sequential_scan_faster_with_prefetch(self):
        def scan_time(depth):
            env, cluster, kernels, runtimes, deployment = build_rig(depth)
            parent, child = forked_child(env, cluster, runtimes, deployment)
            heap = parent.task.address_space.vmas[3]

            def body():
                start = env.now
                for i in range(64):
                    yield from kernels[1].touch(child.task,
                                                heap.start_vpn + i)
                return env.now - start

            return env.run(env.process(body()))

        without = scan_time(0)
        with_prefetch = scan_time(8)
        assert with_prefetch < 0.7 * without

    def test_depth_zero_never_prefetches(self):
        env, cluster, kernels, runtimes, deployment = build_rig(0)
        parent, child = forked_child(env, cluster, runtimes, deployment)
        heap = parent.task.address_space.vmas[3]

        def body():
            yield from kernels[1].touch(child.task, heap.start_vpn)
            yield env.timeout(1000.0)
            return child.task.address_space.resident_pages

        assert env.run(env.process(body())) == 1

    def test_prefetch_correct_content(self):
        env, cluster, kernels, runtimes, deployment = build_rig(4)
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))

        def body():
            parent = yield from runtimes[0].cold_start(hello_world_image())
            heap = parent.task.address_space.vmas[3]
            for i in range(5):
                yield from kernels[0].write_page(
                    parent.task, heap.start_vpn + i, "v%d" % i)
            meta = yield from node0.fork_prepare(parent)
            child = yield from node1.fork_resume(meta)
            yield from kernels[1].touch(child.task, heap.start_vpn)
            yield env.timeout(1000.0)
            contents = []
            for i in range(5):
                contents.append((yield from kernels[1].touch(
                    child.task, heap.start_vpn + i)))
            return contents

        assert env.run(env.process(body())) == ["v%d" % i for i in range(5)]
