"""Unit tests for the simulated RDMA stack."""

import pytest

from repro import params
from repro.cluster import Cluster
from repro.rdma import (
    RdmaFabric,
    RemoteAccessError,
    RpcError,
    RpcRuntime,
)
from repro.sim import Environment


@pytest.fixture
def rig():
    env = Environment()
    cluster = Cluster(env, num_machines=4, num_racks=1)
    fabric = RdmaFabric(env, cluster)
    return env, cluster, fabric


def run(env, gen):
    return env.run(env.process(gen))


class TestRcQp:
    def test_creation_pays_rate_limit_and_handshake(self, rig):
        env, cluster, fabric = rig
        nic = fabric.nic_of(cluster.machine(0))

        def body():
            yield from nic.create_rc_qp(cluster.machine(1))
            return env.now

        elapsed = run(env, body())
        assert elapsed == pytest.approx(
            params.RCQP_CREATE_LATENCY + params.RC_CONNECT_LATENCY)

    def test_creation_serialized_at_700_per_sec(self, rig):
        env, cluster, fabric = rig
        nic = fabric.nic_of(cluster.machine(0))
        done = []

        def creator():
            yield from nic.create_rc_qp(cluster.machine(1))
            done.append(env.now)

        for _ in range(3):
            env.process(creator())
        env.run()
        # Creation slots are serialized; handshakes overlap.
        assert done[1] - done[0] == pytest.approx(params.RCQP_CREATE_LATENCY)
        assert done[2] - done[1] == pytest.approx(params.RCQP_CREATE_LATENCY)

    def test_read_latency_small_payload(self, rig):
        env, cluster, fabric = rig
        nic = fabric.nic_of(cluster.machine(0))

        def body():
            qp = yield from nic.create_rc_qp(cluster.machine(1))
            start = env.now
            yield from qp.read(64)
            return env.now - start

        elapsed = run(env, body())
        expected = params.RDMA_READ_LATENCY + params.transfer_time(
            64, params.RDMA_BANDWIDTH)
        assert elapsed == pytest.approx(expected)

    def test_read_page_dominated_by_bandwidth(self, rig):
        env, cluster, fabric = rig
        nic = fabric.nic_of(cluster.machine(0))

        def body():
            qp = yield from nic.create_rc_qp(cluster.machine(1))
            start = env.now
            yield from qp.read(params.PAGE_SIZE)
            return env.now - start

        elapsed = run(env, body())
        assert elapsed > params.RDMA_READ_LATENCY

    def test_mr_check_rejects_out_of_bounds(self, rig):
        env, cluster, fabric = rig
        src = fabric.nic_of(cluster.machine(0))
        dst = fabric.nic_of(cluster.machine(1))

        def body():
            region = yield from dst.mrs.register(addr=0x1000, length=4096)
            qp = yield from src.create_rc_qp(cluster.machine(1))
            yield from qp.read(64, rkey=region.rkey, addr=0x1000)  # in bounds
            with pytest.raises(RemoteAccessError):
                yield from qp.read(64, rkey=region.rkey, addr=0x9000)
            return True

        assert run(env, body())

    def test_deregistered_mr_rejects(self, rig):
        env, cluster, fabric = rig
        src = fabric.nic_of(cluster.machine(0))
        dst = fabric.nic_of(cluster.machine(1))

        def body():
            region = yield from dst.mrs.register(addr=0, length=4096)
            qp = yield from src.create_rc_qp(cluster.machine(1))
            yield from dst.mrs.deregister(region)
            with pytest.raises(RemoteAccessError):
                yield from qp.read(64, rkey=region.rkey, addr=0)
            return True

        assert run(env, body())

    def test_mr_registration_cost_linear(self, rig):
        env, cluster, fabric = rig
        nic = fabric.nic_of(cluster.machine(0))

        def timed_register(length):
            start = env.now
            yield from nic.mrs.register(addr=0, length=length)
            return env.now - start

        small = run(env, timed_register(params.MB))
        env2 = Environment()
        cluster2 = Cluster(env2, num_machines=1)
        fabric2 = RdmaFabric(env2, cluster2)
        nic2 = fabric2.nic_of(cluster2.machine(0))

        def timed_register2():
            start = env2.now
            yield from nic2.mrs.register(addr=0, length=64 * params.MB)
            return env2.now - start

        large = env2.run(env2.process(timed_register2()))
        assert large > small

    def test_closed_qp_rejects(self, rig):
        env, cluster, fabric = rig
        nic = fabric.nic_of(cluster.machine(0))

        def body():
            qp = yield from nic.create_rc_qp(cluster.machine(1))
            qp.close()
            try:
                yield from qp.read(64)
            except Exception as exc:
                return type(exc).__name__

        assert run(env, body()) == "ConnectionError_"


class TestDcQp:
    def test_one_dcqp_reaches_many_machines(self, rig):
        env, cluster, fabric = rig
        src = fabric.nic_of(cluster.machine(0))

        def body():
            dcqp = yield from src.create_dc_qp()
            targets = []
            for mid in (1, 2, 3):
                peer = fabric.nic_of(cluster.machine(mid))
                target = peer._new_target(user_key=mid)
                targets.append((cluster.machine(mid), target))
            for machine, target in targets:
                yield from dcqp.read(machine, target.target_id, target.key, 4096)
            return src.counters["dc_read"]

        assert run(env, body()) == 3

    def test_destroyed_target_rejected(self, rig):
        env, cluster, fabric = rig
        src = fabric.nic_of(cluster.machine(0))
        dst = fabric.nic_of(cluster.machine(1))

        def body():
            dcqp = yield from src.create_dc_qp()
            target = dst._new_target(user_key=9)
            yield from dcqp.read(cluster.machine(1), target.target_id,
                                 target.key, 4096)
            dst.destroy_target(target)
            with pytest.raises(RemoteAccessError):
                yield from dcqp.read(cluster.machine(1), target.target_id,
                                     target.key, 4096)
            return src.counters.as_dict()

        counters = run(env, body())
        assert counters["dc_read"] == 1
        assert counters["dc_read_rejected"] == 1

    def test_wrong_key_rejected(self, rig):
        env, cluster, fabric = rig
        src = fabric.nic_of(cluster.machine(0))
        dst = fabric.nic_of(cluster.machine(1))

        def body():
            dcqp = yield from src.create_dc_qp()
            target = dst._new_target(user_key=1)
            other = dst._new_target(user_key=2)
            with pytest.raises(RemoteAccessError):
                yield from dcqp.read(cluster.machine(1), target.target_id,
                                     other.key, 4096)
            return True

        assert run(env, body())

    def test_reconnect_cost_only_on_target_switch(self, rig):
        env, cluster, fabric = rig
        src = fabric.nic_of(cluster.machine(0))
        dst = fabric.nic_of(cluster.machine(1))

        def timed_reads():
            dcqp = yield from src.create_dc_qp()
            target = dst._new_target(user_key=1)
            start = env.now
            yield from dcqp.read(cluster.machine(1), target.target_id,
                                 target.key, 64)
            first = env.now - start
            start = env.now
            yield from dcqp.read(cluster.machine(1), target.target_id,
                                 target.key, 64)
            second = env.now - start
            return first, second

        first, second = run(env, timed_reads())
        assert first == pytest.approx(second + params.DCT_RECONNECT_LATENCY)

    def test_dct_slower_than_rc_for_small_fast_for_pages(self, rig):
        env, cluster, fabric = rig
        src = fabric.nic_of(cluster.machine(0))
        dst = fabric.nic_of(cluster.machine(1))

        def body():
            rc = yield from src.create_rc_qp(cluster.machine(1))
            dcqp = yield from src.create_dc_qp()
            target = dst._new_target(user_key=1)
            # Warm the DC connection so we compare steady-state requests.
            yield from dcqp.read(cluster.machine(1), target.target_id,
                                 target.key, 16)

            start = env.now
            yield from rc.read(16)
            rc_small = env.now - start
            start = env.now
            yield from dcqp.read(cluster.machine(1), target.target_id,
                                 target.key, 16)
            dc_small = env.now - start

            start = env.now
            yield from rc.read(params.PAGE_SIZE)
            rc_page = env.now - start
            start = env.now
            yield from dcqp.read(cluster.machine(1), target.target_id,
                                 target.key, params.PAGE_SIZE)
            dc_page = env.now - start
            return rc_small, dc_small, rc_page, dc_page

        rc_small, dc_small, rc_page, dc_page = run(env, body())
        # Paper §4.2: DCT overhead is visible for tiny payloads but has
        # "little impact" at page granularity.
        assert dc_small > rc_small
        small_ratio = dc_small / rc_small
        page_ratio = dc_page / rc_page
        assert page_ratio < small_ratio
        assert page_ratio < 1.10


class TestDcTargetPool:
    def test_pooled_take_is_instant(self, rig):
        env, cluster, fabric = rig
        nic = fabric.nic_of(cluster.machine(0))

        def body():
            yield from nic.target_pool.prefill()
            start = env.now
            target = yield from nic.target_pool.take()
            return env.now - start, target

        elapsed, target = run(env, body())
        assert elapsed == 0.0
        assert target.active

    def test_empty_pool_pays_creation(self, rig):
        env, cluster, fabric = rig
        nic = fabric.nic_of(cluster.machine(0))

        def body():
            start = env.now
            yield from nic.target_pool.take()
            return env.now - start

        assert run(env, body()) == pytest.approx(params.DC_TARGET_CREATE_LATENCY)

    def test_pool_refills_in_background(self, rig):
        env, cluster, fabric = rig
        nic = fabric.nic_of(cluster.machine(0))

        def body():
            yield from nic.target_pool.prefill()
            before = nic.target_pool.available
            yield from nic.target_pool.take()
            drained = nic.target_pool.available
            yield env.timeout(2 * params.DC_TARGET_CREATE_LATENCY)
            refilled = nic.target_pool.available
            return before, drained, refilled

        before, drained, refilled = run(env, body())
        assert drained == before - 1
        assert refilled == before


class TestFootprints:
    def test_dc_target_storage_claim(self, rig):
        # §4.3: 1MB of memory stores >7,000 DC targets.
        assert params.MB // params.DC_TARGET_BYTES > 7000

    def test_rcqp_footprint_is_kb_scale(self, rig):
        assert params.RCQP_FOOTPRINT_BYTES >= 30 * params.DC_TARGET_BYTES


class TestRpc:
    def test_call_roundtrip(self, rig):
        env, cluster, fabric = rig
        rpc = RpcRuntime(env, fabric)
        target = cluster.machine(1)

        def handler(args):
            yield env.timeout(5.0)
            return args["x"] * 2, 128

        rpc.endpoint(target).register("double", handler)

        def body():
            value = yield from rpc.call(
                cluster.machine(0), target, "double", {"x": 21})
            return value, env.now

        value, elapsed = run(env, body())
        assert value == 42
        assert elapsed > 5.0  # handler time + wire time

    def test_unknown_method_raises(self, rig):
        env, cluster, fabric = rig
        rpc = RpcRuntime(env, fabric)

        def body():
            with pytest.raises(RpcError):
                yield from rpc.call(cluster.machine(0), cluster.machine(1),
                                    "nope", {})
            return True

        assert run(env, body())

    def test_workers_bound_concurrency(self, rig):
        env, cluster, fabric = rig
        rpc = RpcRuntime(env, fabric)
        target = cluster.machine(1)
        finish_times = []

        def slow_handler(args):
            yield env.timeout(100.0)
            return None, 64

        rpc.endpoint(target).register("slow", slow_handler)

        def caller():
            yield from rpc.call(cluster.machine(0), target, "slow", {})
            finish_times.append(env.now)

        for _ in range(4):
            env.process(caller())
        env.run()
        # Two workers (paper deploys two kernel threads): 4 calls finish in
        # two waves of two.
        assert len(finish_times) == 4
        assert finish_times[1] - finish_times[0] < 50.0
        assert finish_times[2] - finish_times[1] > 50.0

    def test_local_call_skips_wire(self, rig):
        env, cluster, fabric = rig
        rpc = RpcRuntime(env, fabric)
        machine = cluster.machine(0)

        def handler(args):
            yield env.timeout(1.0)
            return "ok", 8

        rpc.endpoint(machine).register("ping", handler)

        def body():
            start = env.now
            value = yield from rpc.call(machine, machine, "ping", {})
            return value, env.now - start

        value, elapsed = run(env, body())
        assert value == "ok"
        assert elapsed == pytest.approx(1.0)

    def test_duplicate_handler_rejected(self, rig):
        env, cluster, fabric = rig
        rpc = RpcRuntime(env, fabric)
        ep = rpc.endpoint(cluster.machine(0))

        def handler(args):
            yield env.timeout(0)
            return None, 0

        ep.register("m", handler)
        with pytest.raises(ValueError):
            ep.register("m", handler)
