"""Tests for cgroup memory-limit enforcement."""

import pytest

from repro import params
from repro.cluster import Cluster
from repro.containers import ContainerRuntime, hello_world_image
from repro.core import MitosisDeployment
from repro.kernel import Kernel, OomKilled, VmaKind
from repro.rdma import RdmaFabric, RpcRuntime
from repro.sim import Environment


@pytest.fixture
def rig():
    env = Environment()
    cluster = Cluster(env, num_machines=2, num_racks=1)
    kernels = [Kernel(env, m) for m in cluster]
    return env, cluster, kernels


def run(env, gen):
    return env.run(env.process(gen))


class TestCgroupLimits:
    def test_unlimited_by_default(self, rig):
        env, _, (k0, _) = rig
        task = k0.create_task("t")
        vma = task.address_space.add_vma(64, VmaKind.HEAP)

        def body():
            for vpn in vma.vpns():
                yield from k0.touch(task, vpn)
            return task.address_space.resident_pages

        assert run(env, body()) == 64

    def test_limit_enforced_on_fault(self, rig):
        env, _, (k0, _) = rig
        task = k0.create_task("t")
        task.cgroup.assign(memory_limit=4 * params.PAGE_SIZE)
        vma = task.address_space.add_vma(16, VmaKind.HEAP)

        def body():
            faulted = 0
            with pytest.raises(OomKilled):
                for vpn in vma.vpns():
                    yield from k0.touch(task, vpn)
                    faulted += 1
            return faulted

        assert run(env, body()) == 4
        assert task.state == "oom-killed"
        assert k0.counters["oom_kills"] == 1

    def test_limit_applies_to_remote_children(self, rig):
        env, cluster, kernels = rig
        fabric = RdmaFabric(env, cluster)
        rpc = RpcRuntime(env, fabric)
        runtimes = [ContainerRuntime(env, k) for k in kernels]
        deployment = MitosisDeployment(env, cluster, fabric, rpc, runtimes)
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))

        def body():
            parent = yield from runtimes[0].cold_start(hello_world_image())
            # The parent's cgroup limit rides the descriptor to children.
            parent.task.cgroup.assign(memory_limit=8 * params.PAGE_SIZE)
            meta = yield from node0.fork_prepare(parent)
            child = yield from node1.fork_resume(meta)
            heap = child.task.address_space.vmas[3]
            with pytest.raises(OomKilled):
                for vpn in heap.vpns():
                    yield from kernels[1].touch(child.task, vpn)
            return child.task.address_space.resident_pages

        assert run(env, body()) <= 8

    def test_cow_break_not_charged_as_growth(self, rig):
        # Breaking COW replaces a frame, it does not add a resident page —
        # the limit check must not fire spuriously.
        env, _, (k0, _) = rig
        parent = k0.create_task("p")
        vma = parent.address_space.add_vma(4, VmaKind.HEAP)
        k0.warm(parent)
        parent.cgroup.assign(memory_limit=4 * params.PAGE_SIZE)

        def body():
            yield from k0.touch(parent, vma.start_vpn, write=True)
            return parent.state

        assert run(env, body()) == "runnable"
