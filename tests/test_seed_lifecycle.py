"""Tests for seed renewal and background CRIU seed migration (§5)."""

import pytest

from repro import params
from repro.fn import FnCluster, MitosisPolicy
from repro.workloads import tc0_profile


def make_cluster():
    policy = MitosisPolicy()
    fn = FnCluster(policy, num_invokers=3, num_machines=6, num_dfs_osds=2,
                   seed=5)
    return fn, policy


def run(fn, gen):
    return fn.env.run(fn.env.process(gen))


class TestSeedRenewalLoop:
    def test_loop_renews_on_schedule(self):
        fn, policy = make_cluster()
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)
            first_meta = policy.seeds["TC0"][2]
            policy.start_renewal_loop(fn, "TC0", period=1 * params.SEC)
            yield fn.env.timeout(2.5 * params.SEC)
            return first_meta, policy.seeds["TC0"][2]

        first, current = run(fn, body())
        assert current != first  # renewed at least once

    def test_renewed_descriptor_reflects_new_parent_state(self):
        fn, policy = make_cluster()
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)
            invoker, seed, _ = policy.seeds["TC0"]
            heap = seed.task.address_space.vmas[3]
            # The seed's state evolves after the initial prepare.
            yield from seed.kernel.write_page(seed.task, heap.start_vpn,
                                              "new-state")
            yield from policy.renew_seed(fn, "TC0")
            child = yield from fn.deployment.node(
                fn.invokers[1].machine).fork_resume(policy.seeds["TC0"][2])
            content = yield from child.kernel.touch(child.task,
                                                    heap.start_vpn)
            return content

        assert run(fn, body()) == "new-state"

    def test_stale_descriptor_still_serves_old_state(self):
        # Until renewal, children fork the checkpointed (shadow) state —
        # the §5 staleness the renewal period bounds.
        fn, policy = make_cluster()
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)
            invoker, seed, meta = policy.seeds["TC0"]
            heap = seed.task.address_space.vmas[3]
            yield from seed.kernel.write_page(seed.task, heap.start_vpn,
                                              "after-prepare")
            child = yield from fn.deployment.node(
                fn.invokers[1].machine).fork_resume(meta)
            content = yield from child.kernel.touch(child.task,
                                                    heap.start_vpn)
            return content

        content = run(fn, body())
        assert content != "after-prepare"


class TestSeedMigration:
    def test_migration_moves_seed_and_keeps_forking(self):
        fn, policy = make_cluster()
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)
            old_invoker = policy.seeds["TC0"][0]
            target = next(i for i in fn.invokers
                          if i.index != old_invoker.index)
            yield from policy.migrate_seed(fn, "TC0", target)
            new_invoker, new_seed, new_meta = policy.seeds["TC0"]
            record = yield from fn.invoke("TC0")
            return (old_invoker.index, new_invoker.index,
                    len(old_invoker.live_containers), record)

        old_idx, new_idx, old_live, record = run(fn, body())
        assert new_idx != old_idx
        assert old_live == 0          # old seed torn down
        assert record.start_kind == "mitosis"

    def test_migration_to_same_invoker_rejected(self):
        fn, policy = make_cluster()
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)
            seed_invoker = policy.seeds["TC0"][0]
            with pytest.raises(ValueError):
                yield from policy.migrate_seed(fn, "TC0", seed_invoker)
            return True

        assert run(fn, body())

    def test_migration_frees_old_machine_memory(self):
        fn, policy = make_cluster()
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)
            old_invoker = policy.seeds["TC0"][0]
            target = next(i for i in fn.invokers
                          if i.index != old_invoker.index)
            before = old_invoker.machine.memory.used
            yield from policy.migrate_seed(fn, "TC0", target)
            return before, old_invoker.machine.memory.used

        before, after = run(fn, body())
        assert after < before / 2

    def test_old_children_survive_migration(self):
        # A child forked before the migration keeps its already-fetched
        # pages; only *new* faults would hit the retired descriptor.
        fn, policy = make_cluster()
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)
            old_invoker, seed, meta = policy.seeds["TC0"]
            heap = seed.task.address_space.vmas[3]
            node1 = fn.deployment.node(fn.invokers[1].machine)
            child = yield from node1.fork_resume(meta)
            fetched = yield from child.kernel.touch(child.task,
                                                    heap.start_vpn)
            target = next(i for i in fn.invokers
                          if i.index != old_invoker.index)
            yield from policy.migrate_seed(fn, "TC0", target)
            still = yield from child.kernel.touch(child.task, heap.start_vpn)
            return fetched, still

        fetched, still = run(fn, body())
        assert fetched == still
