"""Integration tests for the Fn framework under every start policy."""

import pytest

from repro import params
from repro.fn import (
    ColdPolicy,
    CriuPolicy,
    DagScheduler,
    FlowService,
    FnCachingPolicy,
    FnCluster,
    IdealCachePolicy,
    MitosisPolicy,
)
from repro.sim import Environment
from repro.workloads import tc0_profile


def make_cluster(policy, **kwargs):
    defaults = dict(num_invokers=3, num_machines=6, num_dfs_osds=2, seed=1)
    defaults.update(kwargs)
    return FnCluster(policy, **defaults)


def run(fn, gen):
    return fn.env.run(fn.env.process(gen))


def register_and_invoke(policy, invocations=1, **kwargs):
    fn = make_cluster(policy, **kwargs)
    profile = tc0_profile()

    def body():
        yield from fn.register(profile)
        records = []
        for _ in range(invocations):
            records.append((yield from fn.invoke("TC0")))
        return records

    return fn, run(fn, body())


class TestColdPolicy:
    def test_every_start_is_cold(self):
        fn, records = register_and_invoke(ColdPolicy(), invocations=2)
        assert all(r.start_kind == "cold" for r in records)
        assert all(r.latency > params.DOCKER_COLD_START for r in records)

    def test_no_lingering_containers(self):
        fn, _ = register_and_invoke(ColdPolicy())
        assert all(not i.live_containers for i in fn.invokers)


class TestFnCachingPolicy:
    def test_second_hit_is_warm(self):
        policy = FnCachingPolicy()
        fn = make_cluster(policy)
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)
            first = yield from fn.invoke("TC0")
            second = yield from fn.invoke("TC0")
            return first, second

        first, second = run(fn, body())
        assert first.start_kind == "cold"
        assert second.start_kind == "warm-cache"
        assert second.latency < first.latency / 100
        assert policy.hit_rate() == 0.5

    def test_keepalive_eviction(self):
        policy = FnCachingPolicy(keepalive=1 * params.SEC)
        fn = make_cluster(policy)
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)
            yield from fn.invoke("TC0")
            yield fn.env.timeout(2 * params.SEC)
            cached = sum(i.cached_count("TC0") for i in fn.invokers)
            third = yield from fn.invoke("TC0")
            return cached, third

        cached, third = run(fn, body())
        assert cached == 0          # evicted after keepalive
        assert third.start_kind == "cold"

    def test_reuse_within_keepalive(self):
        policy = FnCachingPolicy(keepalive=30 * params.SEC)
        fn = make_cluster(policy)
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)
            yield from fn.invoke("TC0")
            yield fn.env.timeout(5 * params.SEC)
            return (yield from fn.invoke("TC0"))

        record = run(fn, body())
        assert record.start_kind == "warm-cache"

    def test_prefers_invoker_with_cache(self):
        policy = FnCachingPolicy()
        fn = make_cluster(policy)
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)
            first = yield from fn.invoke("TC0")
            second = yield from fn.invoke("TC0")
            return first, second

        first, second = run(fn, body())
        assert first.invoker_index == second.invoker_index


class TestIdealCachePolicy:
    def test_never_cold_starts(self):
        policy = IdealCachePolicy(instances_per_invoker=2)
        fn, records = register_and_invoke(policy, invocations=4)
        assert all(r.start_kind == "warm-cache" for r in records)

    def test_warm_start_under_1ms(self):
        policy = IdealCachePolicy(instances_per_invoker=2)
        fn, records = register_and_invoke(policy, invocations=1)
        # Table 1: caching warm start < 1ms (plus execution time here).
        assert records[0].startup_latency < 2 * params.MS

    def test_provisioning_memory_is_n_containers(self):
        policy = IdealCachePolicy(instances_per_invoker=4)
        fn = make_cluster(policy)
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)

        run(fn, body())
        for invoker in fn.invokers:
            assert len(invoker.live_containers) == 4


class TestCriuPolicies:
    def test_tmpfs_provisions_image_everywhere(self):
        policy = CriuPolicy(mode="tmpfs")
        fn = make_cluster(policy)
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)

        run(fn, body())
        for invoker in fn.invokers:
            assert invoker.tmpfs.exists("TC0")
            assert invoker.provisioned_bytes() > 0

    def test_dfs_provisions_once(self):
        policy = CriuPolicy(mode="dfs")
        fn = make_cluster(policy)
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)

        run(fn, body())
        assert fn.dfs.exists("TC0")
        assert all(not i.tmpfs.exists("TC0") for i in fn.invokers)

    def test_tmpfs_restore_invocation(self):
        fn, records = register_and_invoke(CriuPolicy(mode="tmpfs"))
        assert records[0].start_kind == "criu"
        assert records[0].latency < 100 * params.MS

    def test_remote_slower_than_tmpfs(self):
        _, tmpfs_records = register_and_invoke(CriuPolicy(mode="tmpfs"))
        _, dfs_records = register_and_invoke(CriuPolicy(mode="dfs"))
        assert dfs_records[0].latency > tmpfs_records[0].latency

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            CriuPolicy(mode="nfs")


class TestMitosisPolicy:
    def test_one_seed_total(self):
        policy = MitosisPolicy()
        fn, records = register_and_invoke(policy, invocations=3)
        seeds = sum(
            1 for i in fn.invokers for c in i.live_containers
            if c.image.name == "tc0-hello-world")
        assert seeds == 1  # only the seed survives; children are destroyed
        assert all(r.start_kind == "mitosis" for r in records)

    def test_remote_warm_start_around_11ms(self):
        fn, records = register_and_invoke(MitosisPolicy())
        # Table 1: MITOSIS remote warm start 11ms (+ ~1ms TC0 execution).
        assert records[0].startup_latency < 16 * params.MS
        assert records[0].startup_latency > 8 * params.MS

    def test_mitosis_beats_criu_remote(self):
        _, mitosis_records = register_and_invoke(MitosisPolicy())
        _, criu_records = register_and_invoke(CriuPolicy(mode="dfs"))
        assert mitosis_records[0].latency < criu_records[0].latency

    def test_seed_renewal_swaps_descriptor(self):
        policy = MitosisPolicy()
        fn = make_cluster(policy)
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)
            _, _, old_meta = policy.seeds["TC0"]
            new_meta = yield from policy.renew_seed(fn, "TC0")
            record = yield from fn.invoke("TC0")
            return old_meta, new_meta, record

        old_meta, new_meta, record = run(fn, body())
        assert old_meta != new_meta
        assert record.start_kind == "mitosis"

    def test_memory_orders_of_magnitude_below_caching(self):
        mitosis_fn, _ = register_and_invoke(MitosisPolicy())
        ideal_fn, _ = register_and_invoke(IdealCachePolicy(
            instances_per_invoker=16))
        seed_invoker = max(mitosis_fn.invokers, key=lambda i: i.memory_bytes())
        non_seed = [i for i in mitosis_fn.invokers if i is not seed_invoker]
        mitosis_mem = sum(i.memory_bytes() for i in non_seed)
        ideal_mem = sum(i.memory_bytes() for i in ideal_fn.invokers[:2])
        assert mitosis_mem * 10 < ideal_mem


class TestFramework:
    def test_duplicate_registration_rejected(self):
        fn = make_cluster(ColdPolicy())
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)
            with pytest.raises(ValueError):
                yield from fn.register(profile)
            return True

        assert run(fn, body())

    def test_replay_runs_all_arrivals(self):
        fn = make_cluster(MitosisPolicy())
        profile = tc0_profile()
        arrivals = [i * 50 * params.MS for i in range(5)]

        def body():
            yield from fn.register(profile)
            return (yield from fn.replay("TC0", arrivals))

        records = run(fn, body())
        assert len(records) == 5

    def test_load_spreads_across_invokers(self):
        fn = make_cluster(MitosisPolicy())
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)
            procs = [fn.submit("TC0") for _ in range(6)]
            for p in procs:
                yield p

        run(fn, body())
        used = {r.invoker_index for r in fn.records}
        assert len(used) == 3

    def test_memory_sampler_collects(self):
        fn = make_cluster(ColdPolicy())
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)
            series, _ = fn.start_memory_sampler(period=10 * params.MS)
            yield from fn.invoke("TC0")
            return series

        series = run(fn, body())
        assert len(series) > 1

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            FnCluster(ColdPolicy(), num_invokers=5, num_machines=6,
                      num_dfs_osds=2)


class TestFlowService:
    def test_small_payload_piggybacks(self):
        env = Environment()
        flow = FlowService(env)

        def body():
            return (yield from flow.transfer(10 * params.KB))

        latency = env.run(env.process(body()))
        assert latency == pytest.approx(params.LB_DISPATCH_LATENCY)

    def test_large_payload_two_hops(self):
        env = Environment()
        flow = FlowService(env)

        def body():
            return (yield from flow.transfer(params.MB))

        latency = env.run(env.process(body()))
        expected = 2 * (params.FLOW_BASE_LATENCY
                        + params.transfer_time(params.MB, params.FLOW_BANDWIDTH))
        assert latency == pytest.approx(expected)

    def test_negative_payload_rejected(self):
        env = Environment()
        flow = FlowService(env)

        def body():
            with pytest.raises(ValueError):
                yield from flow.transfer(-1)
            return True

        assert env.run(env.process(body()))


class TestDagScheduler:
    def test_chain_shares_data_across_hops(self):
        fn = make_cluster(MitosisPolicy())
        scheduler = DagScheduler(fn)
        profile = tc0_profile()

        def writer(container, hop):
            vpn = scheduler.heap_vpn(container, offset=hop)
            yield from container.kernel.write_page(
                container.task, vpn, "hop-%d" % hop)

        def body():
            yield from fn.register(profile)
            result = yield from scheduler.run_chain(
                [profile, profile, profile], [0, 1, 2],
                payload_vpn_writer=writer)
            last = fn.invokers[2]
            container = next(iter(
                c for c in last.live_containers
                if c.image.name == profile.image.name))
            d0 = yield from container.kernel.touch(
                container.task, scheduler.heap_vpn(container, 0))
            d1 = yield from container.kernel.touch(
                container.task, scheduler.heap_vpn(container, 1))
            return result, d0, d1

        result, d0, d1 = run(fn, body())
        assert len(result.hop_latencies) == 3
        assert d0 == "hop-0"  # written two machines up the lineage
        assert d1 == "hop-1"

    def test_chain_gc_retires_descriptors(self):
        fn = make_cluster(MitosisPolicy())
        scheduler = DagScheduler(fn)
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)
            result = yield from scheduler.run_chain(
                [profile, profile], [0, 1])
            node0 = fn.deployment.node(fn.invokers[0].machine)
            during = len(node0.service)
            yield from scheduler.finish_chain(result)
            # Only the seed's descriptor remains on invoker 0 after GC.
            return during, len(node0.service)

        during, after = run(fn, body())
        assert during == 2   # seed + the chain's temporary descriptor
        assert after == 1

    def test_chain_remote_reads_work_until_finished(self):
        # A descendant can still pull from elder descriptors until the DAG
        # is explicitly finished (the §5 GC ordering).
        fn = make_cluster(MitosisPolicy())
        scheduler = DagScheduler(fn)
        profile = tc0_profile()

        def writer(container, hop):
            vpn = scheduler.heap_vpn(container, offset=100 + hop)
            yield from container.kernel.write_page(
                container.task, vpn, "late-%d" % hop)

        def body():
            yield from fn.register(profile)
            result = yield from scheduler.run_chain(
                [profile, profile], [0, 1], payload_vpn_writer=writer)
            last = result.last_container
            content = yield from last.kernel.touch(
                last.task, scheduler.heap_vpn(last, offset=100))
            yield from scheduler.finish_chain(result)
            return content

        assert run(fn, body()) == "late-0"

    def test_mismatched_lengths_rejected(self):
        fn = make_cluster(MitosisPolicy())
        scheduler = DagScheduler(fn)
        profile = tc0_profile()

        def body():
            with pytest.raises(ValueError):
                yield from scheduler.run_chain([profile], [0, 1])
            return True

        assert run(fn, body())
