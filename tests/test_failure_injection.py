"""Failure-injection tests: wrong-path behaviour must be loud and correct."""

import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import params
from repro.cluster import Cluster
from repro.containers import ContainerRuntime, hello_world_image
from repro.core import MitosisDeployment
from repro.faults import (
    FaultInjector,
    MachineCrash,
    NicFlap,
    ParentUnreachable,
    UdDropStorm,
)
from repro.fn import FnCluster, MitosisPolicy
from repro.kernel import Kernel
from repro.rdma import RdmaFabric, RpcError, RpcRuntime
from repro.sim import Environment, SeededStreams
from repro.workloads import tc0_profile


def build_rig(num_machines=3):
    env = Environment()
    cluster = Cluster(env, num_machines=num_machines, num_racks=1)
    fabric = RdmaFabric(env, cluster)
    rpc = RpcRuntime(env, fabric)
    kernels = [Kernel(env, m) for m in cluster]
    runtimes = [ContainerRuntime(env, k) for k in kernels]
    deployment = MitosisDeployment(env, cluster, fabric, rpc, runtimes)
    return env, cluster, kernels, runtimes, deployment


def faulty_rig(num_machines=3, leases=False):
    """A MITOSIS rig with an armed injector and fault-aware deadlines."""
    env = Environment()
    cluster = Cluster(env, num_machines=num_machines, num_racks=1)
    fabric = RdmaFabric(env, cluster)
    injector = FaultInjector(env, cluster,
                             streams=SeededStreams(3)).install(fabric)
    rpc = RpcRuntime(env, fabric, streams=SeededStreams(4))
    kernels = [Kernel(env, m) for m in cluster]
    runtimes = [ContainerRuntime(env, k) for k in kernels]
    deployment = MitosisDeployment(env, cluster, fabric, rpc, runtimes)
    deployment.connect_faults(injector, leases=leases)
    return env, cluster, kernels, runtimes, deployment, injector


def run(env, gen):
    return env.run(env.process(gen))


def forked_pair(env, runtimes, deployment, cluster):
    node0 = deployment.node(cluster.machine(0))
    node1 = deployment.node(cluster.machine(1))

    def body():
        parent = yield from runtimes[0].cold_start(hello_world_image())
        meta = yield from node0.fork_prepare(parent)
        child = yield from node1.fork_resume(meta)
        return parent, meta, child

    return run(env, body()), node0, node1


class TestParentFailure:
    def test_full_parent_loss_raises_not_corrupts(self):
        env, cluster, kernels, runtimes, deployment = build_rig()
        (parent, meta, child), node0, node1 = forked_pair(
            env, runtimes, deployment, cluster)
        heap = parent.task.address_space.vmas[3]

        # Simulate the parent machine failing: every DC target dies and
        # the descriptor service forgets everything.
        for target in list(node0.nic.dc_targets.values()):
            node0.nic.destroy_target(target)
        node0.service._table.clear()

        def body():
            with pytest.raises(RpcError):
                yield from kernels[1].touch(child.task, heap.start_vpn)
            return True

        assert run(env, body())

    def test_pages_fetched_before_failure_survive(self):
        env, cluster, kernels, runtimes, deployment = build_rig()
        (parent, meta, child), node0, node1 = forked_pair(
            env, runtimes, deployment, cluster)
        heap = parent.task.address_space.vmas[3]

        def body():
            early = yield from kernels[1].touch(child.task, heap.start_vpn)
            for target in list(node0.nic.dc_targets.values()):
                node0.nic.destroy_target(target)
            node0.service._table.clear()
            late = yield from kernels[1].touch(child.task, heap.start_vpn)
            return early, late

        early, late = run(env, body())
        assert early == late  # local frame, no remote dependency anymore

    def test_resume_after_retire_raises(self):
        env, cluster, kernels, runtimes, deployment = build_rig()
        (parent, meta, child), node0, node1 = forked_pair(
            env, runtimes, deployment, cluster)
        assert node0.retire_descriptor(meta)
        assert not node0.retire_descriptor(meta)  # idempotent

        def body():
            with pytest.raises(RpcError):
                yield from node1.fork_resume(meta)
            return True

        assert run(env, body())


class TestTotalReclaim:
    def test_child_survives_parent_swapping_everything(self):
        """Reclaim every shadow page: the child must still read all of its
        memory correctly, entirely through the fallback daemon."""
        env, cluster, kernels, runtimes, deployment = build_rig()
        (parent, meta, child), node0, node1 = forked_pair(
            env, runtimes, deployment, cluster)
        heap = parent.task.address_space.vmas[3]

        def body():
            expected = {}
            for i in range(6):
                expected[i] = parent.task.address_space.page_table.entry(
                    heap.start_vpn + i).frame.content
            _, shadow = node0.service.lookup(meta.handler_id, meta.auth_key)
            all_vpns = list(shadow.address_space.page_table.present_vpns())
            yield from kernels[0].reclaim(shadow, all_vpns)
            for i in range(6):
                content = yield from kernels[1].touch(
                    child.task, heap.start_vpn + i)
                assert content == expected[i]
            return node1.pager.counters.as_dict()

        counters = run(env, body())
        assert counters["fallback_rpcs"] == 6
        assert counters.get("rdma_reads", 0) == 0

    def test_fallback_serves_from_swap_with_storage_latency(self):
        env, cluster, kernels, runtimes, deployment = build_rig()
        (parent, meta, child), node0, node1 = forked_pair(
            env, runtimes, deployment, cluster)
        heap = parent.task.address_space.vmas[3]

        def body():
            _, shadow = node0.service.lookup(meta.handler_id, meta.auth_key)
            yield from kernels[0].reclaim(shadow, [heap.start_vpn])
            start = env.now
            yield from kernels[1].touch(child.task, heap.start_vpn)
            return env.now - start

        elapsed = run(env, body())
        assert elapsed > params.FALLBACK_STORAGE_PAGE_LATENCY


class TestFallbackOverload:
    def test_daemon_workers_bound_fallback_throughput(self):
        env, cluster, kernels, runtimes, deployment = build_rig()
        (parent, meta, child), node0, node1 = forked_pair(
            env, runtimes, deployment, cluster)
        heap = parent.task.address_space.vmas[3]
        finish = []

        def setup():
            _, shadow = node0.service.lookup(meta.handler_id, meta.auth_key)
            vpns = [heap.start_vpn + i for i in range(8)]
            yield from kernels[0].reclaim(shadow, vpns)

        run(env, setup())

        def reader(i):
            yield from kernels[1].touch(child.task, heap.start_vpn + i)
            finish.append(env.now)

        for i in range(8):
            env.process(reader(i))
        env.run()
        # Two daemon threads serve 8 fallbacks in four waves: total span
        # must exceed a single service time several times over.
        span = max(finish) - min(finish)
        assert span > 2 * params.FALLBACK_RPC_PAGE_LATENCY


class TestBadInput:
    def test_fork_resume_with_forged_meta(self):
        env, cluster, kernels, runtimes, deployment = build_rig()
        from repro.core import ForkMeta
        node1 = deployment.node(cluster.machine(1))

        def body():
            with pytest.raises(RpcError):
                yield from node1.fork_resume(ForkMeta(0, 4242, 9999))
            return True

        assert run(env, body())

    def test_resume_on_machine_without_mitosis(self):
        env = Environment()
        cluster = Cluster(env, num_machines=3, num_racks=1)
        fabric = RdmaFabric(env, cluster)
        rpc = RpcRuntime(env, fabric)
        kernels = [Kernel(env, m) for m in cluster]
        runtimes = [ContainerRuntime(env, k) for k in kernels]
        # Deploy MITOSIS on machines 0-1 only.
        deployment = MitosisDeployment(env, cluster, fabric, rpc,
                                       runtimes[:2])
        with pytest.raises(ValueError):
            deployment.node(cluster.machine(2))


class TestParentCrash:
    """Injector-driven parent death: the child must fail loudly, then the
    restarted (amnesiac) parent must reject — never corrupt — the child."""

    def test_parent_crash_mid_fetch_raises_parent_unreachable(self):
        env, cluster, kernels, runtimes, deployment, injector = faulty_rig()
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))

        def body():
            parent = yield from runtimes[0].cold_start(hello_world_image())
            meta = yield from node0.fork_prepare(parent)
            child = yield from node1.fork_resume(meta)
            heap = parent.task.address_space.vmas[3]
            injector.crash_machine(0)
            # The DC read sees a dead peer (retry timeout, not a NAK), the
            # fallback RPC then times out too: typed ParentUnreachable.
            with pytest.raises(ParentUnreachable):
                yield from kernels[1].touch(child.task, heap.start_vpn + 3)
            return child, heap, node1.pager.counters.as_dict()

        child, heap, counters = run(env, body())
        assert counters["dead_parent_fallbacks"] == 1
        assert counters.get("revocation_fallbacks", 0) == 0

        def after_restart():
            injector.restart_machine(0)
            # The restarted parent lost every descriptor in the crash: the
            # fallback daemon is live again but answers with an
            # authoritative rejection, not a timeout.
            with pytest.raises(RpcError):
                yield from kernels[1].touch(child.task, heap.start_vpn + 4)
            return True

        assert run(env, after_restart())

    def test_revocation_disambiguated_from_death(self):
        """A revoked DC target (live parent said no) falls back and
        succeeds; only an unreachable parent raises."""
        env, cluster, kernels, runtimes, deployment, injector = faulty_rig()
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))

        def body():
            parent = yield from runtimes[0].cold_start(hello_world_image())
            meta = yield from node0.fork_prepare(parent)
            child = yield from node1.fork_resume(meta)
            heap = parent.task.address_space.vmas[3]
            expected = parent.task.address_space.page_table.entry(
                heap.start_vpn).frame.content
            # Revoke every target while the parent stays up: RNIC NAKs
            # steer the pager onto the fallback daemon, which still serves.
            for target in list(node0.nic.dc_targets.values()):
                node0.nic.destroy_target(target)
            content = yield from kernels[1].touch(child.task, heap.start_vpn)
            assert content == expected
            return node1.pager.counters.as_dict()

        counters = run(env, body())
        assert counters["revocation_fallbacks"] == 1
        assert counters.get("dead_parent_fallbacks", 0) == 0


class TestMemoryAudit:
    """Every descriptor exit path — retract, lease expiry, crash — must
    free exactly the memory it charged (satellite: no phantom bytes)."""

    def test_charge_balances_on_retract_expire_and_crash(self):
        env, cluster, kernels, runtimes, deployment, injector = faulty_rig(
            leases=True)
        node0 = deployment.node(cluster.machine(0))
        machine = cluster.machine(0)

        def body():
            parent = yield from runtimes[0].cold_start(hello_world_image())
            base = machine.memory.used

            # Path 1: explicit retract (GC after the DAG runs).
            meta = yield from node0.fork_prepare(parent)
            charged = machine.memory.used
            assert charged > base
            assert node0.retire_descriptor(meta)
            after_retract = machine.memory.used

            # Path 2: lease expiry reclaims lazily on the next lookup.
            meta = yield from node0.fork_prepare(parent)
            assert machine.memory.used == charged  # same charge both times
            yield env.timeout(params.LEASE_DURATION + 1.0)
            assert node0.service.sweep_leases() == 1
            after_expiry = machine.memory.used

            # Path 3: fail-stop crash wipes the whole table.
            meta = yield from node0.fork_prepare(parent)
            assert machine.memory.used == charged
            injector.crash_machine(0)
            after_crash = machine.memory.used
            return base, after_retract, after_expiry, after_crash

        base, after_retract, after_expiry, after_crash = run(env, body())
        assert after_retract == base
        assert after_expiry == base
        assert after_crash == base


# --- Property: no schedule may hang the event loop ---------------------------------
def _schedules():
    """Bounded fault schedules over a 2-invoker cluster: every outage has a
    finite duration, so recovery is always eventually possible."""
    crash = st.builds(
        lambda at, mid, down: MachineCrash(float(at), mid,
                                           down_for=float(down)),
        st.integers(0, 300_000), st.integers(0, 1),
        st.integers(50_000, 500_000))
    flap = st.builds(
        lambda at, mid, down: NicFlap(float(at), mid, float(down)),
        st.integers(0, 300_000), st.integers(0, 1),
        st.integers(1_000, 100_000))
    storm = st.builds(
        lambda at, decirate, down: UdDropStorm(float(at), decirate / 10.0,
                                               float(down)),
        st.integers(0, 300_000), st.integers(0, 8),
        st.integers(1_000, 100_000))
    return st.lists(st.one_of(crash, flap, storm), max_size=4)


class TestScheduleProperty:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(schedule=_schedules())
    def test_any_recovering_schedule_drains(self, schedule):
        """Under any bounded fault schedule, every invocation completes or
        fails loudly, and the event loop drains — no silent hangs."""
        policy = MitosisPolicy(durable_seed=True)
        fn = FnCluster(policy, num_invokers=2, num_machines=5,
                       num_dfs_osds=2, seed=0)
        fn.enable_faults()
        profile = tc0_profile()

        def setup():
            yield from fn.register(profile)

        fn.env.run(fn.env.process(setup()))
        fn.faults.apply(schedule)
        arrivals = [fn.env.now + i * 20_000.0 for i in range(10)]
        records = fn.env.run(fn.env.process(
            fn.replay(profile.name, arrivals)))
        assert len(records) == 10
        assert all(r.outcome in ("ok", "recovered", "lost")
                   for r in records)
        fn.stop_fault_daemons()
        fn.env.run()  # must drain to quiescence, not loop forever
