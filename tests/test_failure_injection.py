"""Failure-injection tests: wrong-path behaviour must be loud and correct."""

import pytest

from repro import params
from repro.cluster import Cluster
from repro.containers import ContainerRuntime, hello_world_image
from repro.core import MitosisDeployment
from repro.kernel import Kernel
from repro.rdma import RdmaFabric, RpcError, RpcRuntime
from repro.sim import Environment


def build_rig(num_machines=3):
    env = Environment()
    cluster = Cluster(env, num_machines=num_machines, num_racks=1)
    fabric = RdmaFabric(env, cluster)
    rpc = RpcRuntime(env, fabric)
    kernels = [Kernel(env, m) for m in cluster]
    runtimes = [ContainerRuntime(env, k) for k in kernels]
    deployment = MitosisDeployment(env, cluster, fabric, rpc, runtimes)
    return env, cluster, kernels, runtimes, deployment


def run(env, gen):
    return env.run(env.process(gen))


def forked_pair(env, runtimes, deployment, cluster):
    node0 = deployment.node(cluster.machine(0))
    node1 = deployment.node(cluster.machine(1))

    def body():
        parent = yield from runtimes[0].cold_start(hello_world_image())
        meta = yield from node0.fork_prepare(parent)
        child = yield from node1.fork_resume(meta)
        return parent, meta, child

    return run(env, body()), node0, node1


class TestParentFailure:
    def test_full_parent_loss_raises_not_corrupts(self):
        env, cluster, kernels, runtimes, deployment = build_rig()
        (parent, meta, child), node0, node1 = forked_pair(
            env, runtimes, deployment, cluster)
        heap = parent.task.address_space.vmas[3]

        # Simulate the parent machine failing: every DC target dies and
        # the descriptor service forgets everything.
        for target in list(node0.nic.dc_targets.values()):
            node0.nic.destroy_target(target)
        node0.service._table.clear()

        def body():
            with pytest.raises(RpcError):
                yield from kernels[1].touch(child.task, heap.start_vpn)
            return True

        assert run(env, body())

    def test_pages_fetched_before_failure_survive(self):
        env, cluster, kernels, runtimes, deployment = build_rig()
        (parent, meta, child), node0, node1 = forked_pair(
            env, runtimes, deployment, cluster)
        heap = parent.task.address_space.vmas[3]

        def body():
            early = yield from kernels[1].touch(child.task, heap.start_vpn)
            for target in list(node0.nic.dc_targets.values()):
                node0.nic.destroy_target(target)
            node0.service._table.clear()
            late = yield from kernels[1].touch(child.task, heap.start_vpn)
            return early, late

        early, late = run(env, body())
        assert early == late  # local frame, no remote dependency anymore

    def test_resume_after_retire_raises(self):
        env, cluster, kernels, runtimes, deployment = build_rig()
        (parent, meta, child), node0, node1 = forked_pair(
            env, runtimes, deployment, cluster)
        assert node0.retire_descriptor(meta)
        assert not node0.retire_descriptor(meta)  # idempotent

        def body():
            with pytest.raises(RpcError):
                yield from node1.fork_resume(meta)
            return True

        assert run(env, body())


class TestTotalReclaim:
    def test_child_survives_parent_swapping_everything(self):
        """Reclaim every shadow page: the child must still read all of its
        memory correctly, entirely through the fallback daemon."""
        env, cluster, kernels, runtimes, deployment = build_rig()
        (parent, meta, child), node0, node1 = forked_pair(
            env, runtimes, deployment, cluster)
        heap = parent.task.address_space.vmas[3]

        def body():
            expected = {}
            for i in range(6):
                expected[i] = parent.task.address_space.page_table.entry(
                    heap.start_vpn + i).frame.content
            _, shadow = node0.service.lookup(meta.handler_id, meta.auth_key)
            all_vpns = list(shadow.address_space.page_table.present_vpns())
            yield from kernels[0].reclaim(shadow, all_vpns)
            for i in range(6):
                content = yield from kernels[1].touch(
                    child.task, heap.start_vpn + i)
                assert content == expected[i]
            return node1.pager.counters.as_dict()

        counters = run(env, body())
        assert counters["fallback_rpcs"] == 6
        assert counters.get("rdma_reads", 0) == 0

    def test_fallback_serves_from_swap_with_storage_latency(self):
        env, cluster, kernels, runtimes, deployment = build_rig()
        (parent, meta, child), node0, node1 = forked_pair(
            env, runtimes, deployment, cluster)
        heap = parent.task.address_space.vmas[3]

        def body():
            _, shadow = node0.service.lookup(meta.handler_id, meta.auth_key)
            yield from kernels[0].reclaim(shadow, [heap.start_vpn])
            start = env.now
            yield from kernels[1].touch(child.task, heap.start_vpn)
            return env.now - start

        elapsed = run(env, body())
        assert elapsed > params.FALLBACK_STORAGE_PAGE_LATENCY


class TestFallbackOverload:
    def test_daemon_workers_bound_fallback_throughput(self):
        env, cluster, kernels, runtimes, deployment = build_rig()
        (parent, meta, child), node0, node1 = forked_pair(
            env, runtimes, deployment, cluster)
        heap = parent.task.address_space.vmas[3]
        finish = []

        def setup():
            _, shadow = node0.service.lookup(meta.handler_id, meta.auth_key)
            vpns = [heap.start_vpn + i for i in range(8)]
            yield from kernels[0].reclaim(shadow, vpns)

        run(env, setup())

        def reader(i):
            yield from kernels[1].touch(child.task, heap.start_vpn + i)
            finish.append(env.now)

        for i in range(8):
            env.process(reader(i))
        env.run()
        # Two daemon threads serve 8 fallbacks in four waves: total span
        # must exceed a single service time several times over.
        span = max(finish) - min(finish)
        assert span > 2 * params.FALLBACK_RPC_PAGE_LATENCY


class TestBadInput:
    def test_fork_resume_with_forged_meta(self):
        env, cluster, kernels, runtimes, deployment = build_rig()
        from repro.core import ForkMeta
        node1 = deployment.node(cluster.machine(1))

        def body():
            with pytest.raises(RpcError):
                yield from node1.fork_resume(ForkMeta(0, 4242, 9999))
            return True

        assert run(env, body())

    def test_resume_on_machine_without_mitosis(self):
        env = Environment()
        cluster = Cluster(env, num_machines=3, num_racks=1)
        fabric = RdmaFabric(env, cluster)
        rpc = RpcRuntime(env, fabric)
        kernels = [Kernel(env, m) for m in cluster]
        runtimes = [ContainerRuntime(env, k) for k in kernels]
        # Deploy MITOSIS on machines 0-1 only.
        deployment = MitosisDeployment(env, cluster, fabric, rpc,
                                       runtimes[:2])
        with pytest.raises(ValueError):
            deployment.node(cluster.machine(2))
