"""Connection control plane: QP pooling, adverts, and the gating invariant.

Three layers of coverage:

* unit tests against :class:`QpPool` / :class:`AdvertCache` directly
  (LRU eviction order, refcounted sharing, crash invalidation, batched
  miss creation, memory-charge balance);
* rig tests over :class:`FnCluster` (off-path byte identity, the
  ``REPRO_CONNPLANE`` knob, advert fast-path forks, crash propagation,
  the connplane sanitizer);
* the hypothesis property at the bottom — the PR's acceptance property:
  for *any* small fork schedule, the pooled and unpooled runs produce
  identical per-invocation outcomes, only timestamps may shrink, and
  every audit stays clean.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import params, sanitizers
from repro.cluster import Cluster
from repro.connplane import AdvertCache, AdvertEntry, ConnPlane, QpPool, \
    default_connplane
from repro.fn import FnCluster, MitosisPolicy
from repro.metrics import CounterSet
from repro.rdma import ConnectionError_, RdmaFabric
from repro.sim import Environment
from repro.workloads import tc0_profile

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

QP = params.RCQP_FOOTPRINT_BYTES


# --- Harness helpers ------------------------------------------------------------

def _rig(num_machines=6):
    """A bare env + cluster + fabric (machines with NICs and memory)."""
    env = Environment()
    cluster = Cluster(env, num_machines=num_machines)
    fabric = RdmaFabric(env, cluster)
    return env, cluster, fabric


def _pool(env, cluster, capacity_qps=2):
    return QpPool(env, cluster.machine(0), CounterSet(),
                  capacity_bytes=capacity_qps * QP)


def _run(env, gen):
    """Drive one generator to completion; returns its value."""
    return env.run(env.process(gen))


def _burst(num_forks, enable=None, seed=0, transport="rc", gap=0.0):
    """A small fork burst; ``enable`` optionally arms fn layers."""
    fn = FnCluster(MitosisPolicy(), num_invokers=2, num_machines=5,
                   num_dfs_osds=2, seed=seed, transport=transport)
    if enable is not None:
        enable(fn)
    profile = tc0_profile()

    def setup():
        yield from fn.register(profile)

    fn.env.run(fn.env.process(setup()))
    if gap:
        arrivals = [i * gap for i in range(num_forks)]
        fn.env.run(fn.env.process(fn.replay(profile.name, arrivals)))
    else:
        for proc in [fn.submit(profile.name) for _ in range(num_forks)]:
            fn.env.run(proc)
    fn.env.run()
    return fn


def _trace(fn):
    return [(r.function_name, r.submitted_at, r.started_at, r.finished_at,
             r.start_kind, r.invoker_index) for r in fn.records]


def _outcomes(fn):
    return [(r.function_name, r.start_kind, r.invoker_index, r.outcome,
             r.attempts) for r in fn.records]


# --- The env knob ---------------------------------------------------------------

class TestKnob:
    def test_spellings(self, monkeypatch):
        for raw, armed in (("", False), ("0", False), ("off", False),
                           ("none", False), ("no", False), ("false", False),
                           ("1", True), ("yes", True), ("on", True)):
            monkeypatch.setenv("REPRO_CONNPLANE", raw)
            assert default_connplane() is armed, raw
        monkeypatch.delenv("REPRO_CONNPLANE")
        assert default_connplane() is False

    def test_knob_arms_cluster_wide(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONNPLANE", "1")
        fn = FnCluster(MitosisPolicy(), num_invokers=2, num_machines=5,
                       num_dfs_osds=2, seed=0)
        assert fn.connplane is not None
        for node in fn.deployment.nodes():
            assert node.connplane is fn.connplane
            assert node.pager.connplane is fn.connplane
            assert node.service.connplane is fn.connplane

    def test_enable_is_idempotent(self):
        fn = FnCluster(MitosisPolicy(), num_invokers=2, num_machines=5,
                       num_dfs_osds=2, seed=0)
        plane = fn.enable_connplane()
        assert fn.enable_connplane() is plane


# --- Off-path guarantees --------------------------------------------------------

class TestOffPath:
    def test_off_by_default_and_byte_identical(self, monkeypatch):
        monkeypatch.delenv("REPRO_CONNPLANE", raising=False)
        for transport in ("rc", "dct"):
            bare = _burst(10, transport=transport)
            assert bare.connplane is None
            again = _burst(10, transport=transport)
            assert again.env.events_processed == bare.env.events_processed
            assert again.env.now == bare.env.now
            assert _trace(again) == _trace(bare)

    def test_single_qp_create_cost_unchanged(self):
        # The shared `create_rc_qps` seam must cost a count=1 creation
        # exactly like the seed: one serialized factory pass each side
        # overlapping one 4 ms handshake.
        assert (params.RCQP_CREATE_LATENCY
                == pytest.approx(params.SEC / 700.0))
        env, cluster, fabric = _rig()
        nic = fabric.nics[0]
        assert nic._creation_pass_cost(1) == params.RCQP_CREATE_LATENCY
        started = env.now
        qp = _run(env, nic.create_rc_qp(cluster.machine(1)))
        assert qp.usable
        assert env.now - started == pytest.approx(
            params.RCQP_CREATE_LATENCY + params.RC_CONNECT_LATENCY)

    def test_batched_creation_amortizes_the_factory(self):
        env, cluster, fabric = _rig()
        nic = fabric.nics[0]
        started = env.now
        qps = _run(env, nic.create_rc_qps(cluster.machine(1), 4))
        assert len(qps) == 4 and all(q.usable for q in qps)
        pass_cost = (params.RCQP_CREATE_LATENCY
                     + 3 * params.CONNPLANE_QP_BATCH_LATENCY)
        assert env.now - started == pytest.approx(
            pass_cost + params.RC_CONNECT_LATENCY)
        # Strictly cheaper than four sequential seed-path creations.
        assert env.now - started < 4 * (params.RCQP_CREATE_LATENCY
                                        + params.RC_CONNECT_LATENCY)


# --- QpPool unit tests ----------------------------------------------------------

class TestQpPool:
    def test_miss_then_hit_and_memory_charge(self):
        env, cluster, _ = _rig()
        pool = _pool(env, cluster)
        lease = _run(env, pool.acquire(cluster.machine(1)))
        assert pool.counters["pool_misses"] == 1
        assert cluster.machine(0).memory.used == QP
        lease.release()
        hit_at = env.now
        again = _run(env, pool.acquire(cluster.machine(1)))
        assert env.now == hit_at  # a warm hit costs zero simulated time
        assert pool.counters["pool_hits"] == 1
        assert again.qp is lease.qp
        again.release()
        assert not sanitizers.audit_connplane(_plane_of(pool))

    def test_release_is_idempotent(self):
        env, cluster, _ = _rig()
        pool = _pool(env, cluster)
        lease = _run(env, pool.acquire(cluster.machine(1)))
        lease.release()
        lease.release()
        assert pool.leases_released == 1
        assert pool.live_refs() == 0

    def test_colocated_children_share_one_qp(self):
        env, cluster, _ = _rig()
        pool = _pool(env, cluster)
        first = _run(env, pool.acquire(cluster.machine(1)))
        second = _run(env, pool.acquire(cluster.machine(1)))  # busy entry shared
        assert second.qp is first.qp
        assert pool.counters["pool_shared"] == 1
        assert first.entry.refs == 2
        assert cluster.machine(0).memory.used == QP  # one QP, one charge
        first.release()
        assert first.entry.refs == 1  # still pinned by the second lease
        second.release()
        assert pool.live_refs() == 0

    def test_concurrent_misses_batch_into_one_factory_pass(self):
        env, cluster, _ = _rig()
        pool = _pool(env, cluster, capacity_qps=8)
        leases = []

        def claim():
            lease = yield from pool.acquire(cluster.machine(1))
            leases.append(lease)

        procs = [env.process(claim()) for _ in range(4)]
        for proc in procs:
            env.run(proc)
        assert len(leases) == 4
        assert pool.counters["pool_misses"] == 4
        assert pool.counters["pool_batched_creates"] == 3
        # One batched pass, not four serialized handshakes.
        assert env.now == pytest.approx(
            params.RCQP_CREATE_LATENCY
            + 3 * params.CONNPLANE_QP_BATCH_LATENCY
            + params.RC_CONNECT_LATENCY)
        qps = {id(lease.qp) for lease in leases}
        assert len(qps) == 4  # each waiter got its own QP
        for lease in leases:
            lease.release()

    def test_lru_evicts_least_recently_released(self):
        env, cluster, _ = _rig()
        pool = _pool(env, cluster, capacity_qps=2)
        a = _run(env, pool.acquire(cluster.machine(1)))
        a.release()
        b = _run(env, pool.acquire(cluster.machine(2)))
        b.release()
        # Re-claim A (hit), create C, then release both: the warm set
        # would be {B, C, A} = 3 QPs over a 2-QP budget, and B — the
        # least recently *released* — must be the one evicted.
        a2 = _run(env, pool.acquire(cluster.machine(1)))
        c = _run(env, pool.acquire(cluster.machine(3)))
        c.release()
        a2.release()
        assert pool.counters["pool_evictions"] == 1
        peers = sorted(e.peer_id for e in pool.entries())
        assert peers == [1, 3]  # B (peer 2) evicted; A and C stay warm
        assert not b.qp.usable  # the evicted QP was closed
        assert cluster.machine(0).memory.used == 2 * QP

    def test_in_use_qps_are_never_evicted(self):
        env, cluster, _ = _rig()
        pool = _pool(env, cluster, capacity_qps=1)
        held = [_run(env, pool.acquire(cluster.machine(p))) for p in (1, 2, 3)]
        # Three busy QPs transiently exceed the 1-QP budget: pinned
        # entries are not eviction candidates.
        assert pool.counters["pool_evictions"] == 0
        assert all(lease.qp.usable for lease in held)
        assert cluster.machine(0).memory.used == 3 * QP
        for lease in held:
            lease.release()
        # Once idle, the budget applies again.
        assert pool.warm_bytes <= pool.capacity_bytes
        assert pool.counters["pool_evictions"] == 2

    def test_invalidate_peer_closes_warm_and_busy(self):
        env, cluster, _ = _rig()
        pool = _pool(env, cluster, capacity_qps=4)
        leases = []

        def claim():
            lease = yield from pool.acquire(cluster.machine(1))
            leases.append(lease)

        # Two *concurrent* misses create two distinct QPs (a sequential
        # second acquire would just share the busy one).
        procs = [env.process(claim()) for _ in range(2)]
        for proc in procs:
            env.run(proc)
        busy, warm = leases
        warm.release()
        other = _run(env, pool.acquire(cluster.machine(2)))
        pool.invalidate_peer(1)
        assert pool.counters["pool_invalidated"] == 2
        assert not busy.qp.usable  # the holder sees RC semantics: ERROR
        assert other.qp.usable  # untouched peer survives
        assert cluster.machine(0).memory.used == QP  # dead QPs freed their charge
        busy.release()  # late release of an invalidated lease is safe
        other.release()
        assert pool.leases_released == 3

    def test_crash_wipe_fails_pending_misses(self):
        env, cluster, _ = _rig()
        pool = _pool(env, cluster)
        failures = []

        def claim():
            try:
                yield from pool.acquire(cluster.machine(1))
            except ConnectionError_ as exc:
                failures.append(exc)

        proc = env.process(claim())
        env.run(until=1.0)  # mid-creation: the miss grant is queued
        pool.invalidate_all()
        env.run(proc)
        assert len(failures) == 1  # wedging forever would be silent loss
        env.run()
        assert cluster.machine(0).memory.used in (0, QP)  # in-flight batch may land
        if cluster.machine(0).memory.used:
            pool.invalidate_all()
        assert cluster.machine(0).memory.used == 0

    def test_prewarm_leaves_one_warm_qp(self):
        env, cluster, _ = _rig()
        pool = _pool(env, cluster)
        _run(env, pool.prewarm(cluster.machine(1)))
        assert pool.counters["pool_prewarms"] == 1
        assert [e.refs for e in pool.entries()] == [0]
        # Re-prewarming an already-warm peer is a no-op.
        _run(env, pool.prewarm(cluster.machine(1)))
        assert pool.counters["pool_prewarms"] == 1
        assert len(pool.entries()) == 1


def _plane_of(pool):
    """Wrap a bare pool so audit_connplane can sweep it."""
    class _Shim:
        pools = {pool.machine.machine_id: pool}
        caches = {}
    return _Shim()


# --- AdvertCache unit tests -----------------------------------------------------

class TestAdvertCache:
    def _entry(self, fn, name="TC0", generation=None):
        invoker, seed, meta = fn.policy.seeds[name]
        node = fn.deployment.node(invoker.machine)
        descriptor = node.service.lookup(meta.handler_id, meta.auth_key)[0]
        if generation is not None:
            meta.generation = generation
        return AdvertEntry(name, meta, descriptor, invoker.machine)

    def _fn(self):
        fn = FnCluster(MitosisPolicy(), num_invokers=2, num_machines=5,
                       num_dfs_osds=2, seed=0)
        profile = tc0_profile()

        def setup():
            yield from fn.register(profile)

        fn.env.run(fn.env.process(setup()))
        return fn

    def test_install_lookup_and_charge(self):
        fn = self._fn()
        cache = AdvertCache(fn.cluster.machine(4), CounterSet())
        entry = self._entry(fn)
        before = fn.cluster.machine(4).memory.used
        cache.install(entry)
        assert fn.cluster.machine(4).memory.used == before + entry.nbytes
        assert entry.nbytes == entry.descriptor.advert_bytes
        assert cache.lookup(entry.meta) is entry
        assert cache.has(entry.name, entry.meta)
        cache.clear()
        assert fn.cluster.machine(4).memory.used == before
        assert cache.lookup(entry.meta) is None

    def test_reinstall_replaces_atomically(self):
        fn = self._fn()
        cache = AdvertCache(fn.cluster.machine(4), CounterSet())
        old = self._entry(fn)
        cache.install(old)
        # A re-advertisement under the same name supersedes the old
        # handle: holders of the old meta must miss from then on.
        new = AdvertEntry(old.name, _remint(old.meta), old.descriptor,
                          old.parent_machine)
        cache.install(new)
        assert len(cache) == 1
        assert cache.lookup(new.meta) is new
        assert cache.lookup(old.meta) is None
        assert fn.cluster.machine(4).memory.used == new.nbytes

    def test_drop_machine_and_generation_fence(self):
        fn = self._fn()
        counters = CounterSet()
        cache = AdvertCache(fn.cluster.machine(4), counters)
        entry = self._entry(fn, generation=3)
        cache.install(entry)
        cache.drop_below_generation(entry.name, 3)
        assert len(cache) == 1  # at the floor: still serves
        cache.drop_below_generation(entry.name, 4)
        assert len(cache) == 0
        assert counters["adverts_fenced"] == 1
        cache.install(self._entry(fn))
        cache.drop_machine(entry.meta.machine_id)
        assert len(cache) == 0
        assert counters["adverts_invalidated"] == 1
        assert fn.cluster.machine(4).memory.used == 0  # every charge released
        assert cache.cached_bytes == 0


def _remint(meta):
    """A distinct ForkMeta for the same handler (fresh auth key)."""
    from repro.core.descriptor import ForkMeta
    return ForkMeta(meta.machine_id, meta.handler_id, meta.auth_key + 1,
                    lease_expires_at=meta.lease_expires_at,
                    generation=meta.generation)


# --- Armed rig behaviour --------------------------------------------------------

class TestArmedRig:
    def test_advert_fast_path_forks_and_audits_clean(self):
        fn = _burst(12, enable=lambda fn: fn.enable_connplane(),
                    gap=1000.0)
        stats = fn.connplane.stats()
        assert all(r.start_kind == "mitosis" and r.outcome == "ok"
                   for r in fn.records)
        # Pushed-ahead adverts served the forks without the per-fork
        # descriptor query, and repeat forks hit the warm pool.
        assert stats["counters"]["advert_hits"] > 0
        assert stats["counters"]["pool_hits"] \
            + stats["counters"]["pool_shared"] > 0
        assert not sanitizers.audit_rig(fn)

    def test_armed_run_is_not_slower(self):
        for transport in ("rc", "dct"):
            bare = _burst(10, transport=transport, gap=500.0)
            armed = _burst(10, transport=transport, gap=500.0,
                           enable=lambda fn: fn.enable_connplane())
            assert _outcomes(armed) == _outcomes(bare)
            assert armed.env.now <= bare.env.now

    def test_leases_released_on_every_fork_exit(self):
        fn = _burst(9, enable=lambda fn: fn.enable_connplane())
        for pool in fn.connplane.pools.values():
            assert pool.live_refs() == 0
            assert pool.leases_issued == pool.leases_released
        assert not sanitizers.audit_connplane(fn.connplane)

    def test_machine_crash_wipes_pools_and_adverts(self):
        fn = FnCluster(MitosisPolicy(), num_invokers=2, num_machines=5,
                       num_dfs_osds=2, seed=0, transport="rc")
        fn.enable_connplane()
        fn.enable_faults()
        profile = tc0_profile()

        def setup():
            yield from fn.register(profile)

        fn.env.run(fn.env.process(setup()))
        arrivals = [i * 1000.0 for i in range(6)]
        fn.env.run(fn.env.process(fn.replay(profile.name, arrivals)))
        seed_invoker, _, meta = fn.policy.seeds[profile.name]
        seed_mid = seed_invoker.machine.machine_id
        assert any(cache.entries()
                   for cache in fn.connplane.caches.values())
        fn.faults.crash_machine(seed_mid)
        fn.env.run(until=fn.env.now + 10 * params.SEC)
        # No cache anywhere still points at the dead seed machine, and
        # no pool holds a QP toward it.
        for cache in fn.connplane.caches.values():
            assert not any(e.meta.machine_id == seed_mid
                           for e in cache.entries())
        for pool in fn.connplane.pools.values():
            assert not any(e.peer_id == seed_mid for e in pool.entries())
        fn.stop_fault_daemons()

    def test_expired_lease_never_hits_the_advert_cache(self):
        fn = _burst(3, enable=lambda fn: fn.enable_connplane())
        invoker, _, meta = fn.policy.seeds["TC0"]
        target = next(i for i in fn.invokers if i is not invoker)
        cache = fn.connplane.caches[target.machine.machine_id]
        assert cache.has("TC0", meta)
        meta.lease_expires_at = fn.env.now - 1.0
        assert fn.connplane.lookup(target.machine, meta) is None

    def test_sanitizer_catches_a_planted_pool_leak(self):
        fn = _burst(4, enable=lambda fn: fn.enable_connplane())
        pool = next(iter(fn.connplane.pools.values()))
        pool.leases_issued += 1  # a lease taken off the books
        violations = sanitizers.audit_connplane(fn.connplane)
        assert any("lease" in v for v in violations)

    def test_sanitizer_catches_an_advert_charge_leak(self):
        fn = _burst(4, enable=lambda fn: fn.enable_connplane())
        cache = next(c for c in fn.connplane.caches.values()
                     if c.entries())
        entry = cache.entries()[0]
        cache._by_name.pop(entry.name)  # drop without freeing the charge
        cache._by_meta.pop(entry.meta)
        violations = sanitizers.audit_memory_conservation(
            list(fn.cluster), kernels=fn.kernels,
            descriptor_services=[n.service for n in fn.deployment.nodes()],
            tmpfs_stores=[i.tmpfs for i in fn.invokers],
            dfs=fn.dfs, connplane=fn.connplane)
        assert any("leaked" in v for v in violations)


# --- The acceptance property ----------------------------------------------------

@given(num_forks=st.integers(min_value=1, max_value=8),
       seed=st.integers(min_value=0, max_value=2 ** 16),
       transport=st.sampled_from(["rc", "dct"]),
       gap=st.sampled_from([0.0, 200.0, 5000.0]))
@SETTINGS
def test_pooled_and_unpooled_runs_are_equivalent(num_forks, seed,
                                                 transport, gap):
    """For any small fork schedule, arming the plane changes *when*
    things happen but never *what* happens.

    Timing is bounded in aggregate, not per record: a prewarm can
    transiently contend the NIC factory with a concurrent fork, so an
    individual invocation may drift a few µs — but the schedule as a
    whole must never get meaningfully slower.
    """
    bare = _burst(num_forks, seed=seed, transport=transport, gap=gap)
    armed = _burst(num_forks, seed=seed, transport=transport, gap=gap,
                   enable=lambda fn: fn.enable_connplane())
    assert _outcomes(armed) == _outcomes(bare)
    assert [r.submitted_at for r in armed.records] \
        == [r.submitted_at for r in bare.records]
    def makespan(rig):
        return max(r.finished_at for r in rig.records)
    assert makespan(armed) <= makespan(bare) * 1.01
    assert not sanitizers.audit_rig(armed)
    assert not sanitizers.audit_rig(bare)
