"""Tests for the MITOSIS core: prepare/resume, paging, access control."""

import pytest

from repro import params
from repro.cluster import Cluster
from repro.containers import ContainerRuntime, hello_world_image
from repro.core import ForkDepthExceeded, MitosisDeployment
from repro.kernel import Kernel, KernelError
from repro.rdma import RdmaFabric, RpcError, RpcRuntime
from repro.sim import Environment


def build_rig(num_machines=4, enable_sharing=True, transport="dct"):
    env = Environment()
    cluster = Cluster(env, num_machines=num_machines, num_racks=1)
    fabric = RdmaFabric(env, cluster)
    rpc = RpcRuntime(env, fabric)
    kernels = [Kernel(env, m) for m in cluster]
    runtimes = [ContainerRuntime(env, k) for k in kernels]
    deployment = MitosisDeployment(env, cluster, fabric, rpc, runtimes,
                                   enable_sharing=enable_sharing,
                                   transport=transport)
    return env, cluster, runtimes, deployment


@pytest.fixture
def rig():
    return build_rig()


def run(env, gen):
    return env.run(env.process(gen))


def start_parent(env, runtime, image=None):
    image = image or hello_world_image()

    def body():
        return (yield from runtime.cold_start(image))

    return run(env, body())


class TestForkPrepare:
    def test_returns_compact_meta(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        node = deployment.node(cluster.machine(0))

        def body():
            return (yield from node.fork_prepare(parent))

        meta = run(env, body())
        assert meta.machine_id == 0
        assert meta.NBYTES < 100  # "a few bytes" (§4.1)

    def test_descriptor_is_kb_scale(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        node = deployment.node(cluster.machine(0))

        def body():
            meta = yield from node.fork_prepare(parent)
            descriptor, _ = node.service.lookup(meta.handler_id, meta.auth_key)
            return descriptor

        descriptor = run(env, body())
        # KB-scale vs the 10.2MB image file (orders of magnitude smaller).
        assert descriptor.nbytes < parent.image.image_file_bytes / 100
        assert descriptor.nbytes > params.KB

    def test_prepare_much_faster_than_checkpoint(self, rig):
        env, cluster, runtimes, deployment = rig
        from repro.criu import checkpoint
        parent = start_parent(env, runtimes[0])
        node = deployment.node(cluster.machine(0))

        def timed_prepare():
            start = env.now
            yield from node.fork_prepare(parent)
            return env.now - start

        def timed_checkpoint():
            start = env.now
            yield from checkpoint(env, parent, "ck")
            return env.now - start

        prepare = run(env, timed_prepare())
        ck = run(env, timed_checkpoint())
        # Fig. 14a: 2.8ms descriptor dump vs 17.24ms checkpoint for TC0.
        assert prepare < ck / 3
        assert 1 * params.MS < prepare < 5 * params.MS

    def test_one_dc_target_per_vma(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        node = deployment.node(cluster.machine(0))

        def body():
            meta = yield from node.fork_prepare(parent)
            descriptor, shadow = node.service.lookup(
                meta.handler_id, meta.auth_key)
            return descriptor, shadow

        descriptor, shadow = run(env, body())
        assert len(descriptor.vma_descriptors) == len(
            shadow.address_space.vmas)
        target_ids = {vd.dct_target_id for vd in descriptor.vma_descriptors}
        assert len(target_ids) == len(descriptor.vma_descriptors)

    def test_shadow_shares_frames_cow(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        node = deployment.node(cluster.machine(0))
        used_before = cluster.machine(0).memory.used

        def body():
            yield from node.fork_prepare(parent)

        run(env, body())
        # Shadow adds descriptor bytes, not another container's pages.
        growth = cluster.machine(0).memory.used - used_before
        assert growth < parent.image.layout.total_bytes / 100

    def test_parent_keeps_running_writes_isolated(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        node = deployment.node(cluster.machine(0))
        kernel = runtimes[0].kernel
        heap_vpn = parent.task.address_space.vmas[3].start_vpn

        def body():
            yield from kernel.write_page(parent.task, heap_vpn, "before")
            meta = yield from node.fork_prepare(parent)
            yield from kernel.write_page(parent.task, heap_vpn, "after")
            _, shadow = node.service.lookup(meta.handler_id, meta.auth_key)
            shadow_content = shadow.address_space.page_table.entry(
                heap_vpn).frame.content
            return shadow_content

        assert run(env, body()) == "before"


class TestForkResume:
    def test_resume_rebuilds_execution_state(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        parent.task.registers.pc = 0xBEEF
        parent.task.open_fd("file", "/tmp/x")
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))

        def body():
            meta = yield from node0.fork_prepare(parent)
            child = yield from node1.fork_resume(meta)
            return child

        child = run(env, body())
        assert child.machine.machine_id == 1
        assert child.task.registers.pc == 0xBEEF
        assert len(child.task.fd_table) == 1
        assert len(child.task.address_space.vmas) == 5
        assert child.state == "running"

    def test_resume_latency_around_11ms(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))

        def body():
            meta = yield from node0.fork_prepare(parent)
            start = env.now
            yield from node1.fork_resume(meta)
            return env.now - start

        elapsed = run(env, body())
        # Table 1: MITOSIS remote warm start = 11ms.
        assert 9 * params.MS < elapsed < 14 * params.MS

    def test_child_starts_with_zero_resident_pages(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))

        def body():
            meta = yield from node0.fork_prepare(parent)
            return (yield from node1.fork_resume(meta))

        child = run(env, body())
        assert child.task.address_space.resident_pages == 0
        assert len(child.task.address_space.page_table.remote_vpns()) > 0

    def test_bad_auth_key_rejected(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))

        def body():
            meta = yield from node0.fork_prepare(parent)
            meta.auth_key += 1
            with pytest.raises(RpcError):
                yield from node1.fork_resume(meta)
            return True

        assert run(env, body())

    def test_child_reads_parent_pages_on_demand(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        kernel0 = runtimes[0].kernel
        kernel1 = runtimes[1].kernel
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))
        heap_vpn = parent.task.address_space.vmas[3].start_vpn

        def body():
            yield from kernel0.write_page(parent.task, heap_vpn, "shared-42")
            meta = yield from node0.fork_prepare(parent)
            child = yield from node1.fork_resume(meta)
            content = yield from kernel1.touch(child.task, heap_vpn)
            return content, child.task.address_space.resident_pages

        content, resident = run(env, body())
        assert content == "shared-42"
        assert resident == 1

    def test_stack_growth_is_local(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))
        kernel1 = runtimes[1].kernel

        def body():
            meta = yield from node0.fork_prepare(parent)
            child = yield from node1.fork_resume(meta)
            stack = child.task.address_space.vmas[-1]
            child.task.address_space.grow(stack, 4)
            content = yield from kernel1.touch(
                child.task, stack.end_vpn - 1, write=True)
            return content

        content = run(env, body())
        assert "zero" in content  # demand-zero, no network involved
        node1 = deployment.node(cluster.machine(1))
        assert node1.pager.counters["rdma_reads"] == 0

    def test_local_resume_also_works(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        node0 = deployment.node(cluster.machine(0))

        def body():
            meta = yield from node0.fork_prepare(parent)
            return (yield from node0.fork_resume(meta))

        child = run(env, body())
        assert child.machine.machine_id == 0


class TestPassiveAccessControl:
    def test_reclaim_revokes_then_fallback_serves(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        kernel0 = runtimes[0].kernel
        kernel1 = runtimes[1].kernel
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))
        heap_vpn = parent.task.address_space.vmas[3].start_vpn

        def body():
            yield from kernel0.write_page(parent.task, heap_vpn, "precious")
            meta = yield from node0.fork_prepare(parent)
            child = yield from node1.fork_resume(meta)
            _, shadow = node0.service.lookup(meta.handler_id, meta.auth_key)
            # Parent OS reclaims the shadow's page without telling anyone.
            yield from kernel0.reclaim(shadow, [heap_vpn])
            content = yield from kernel1.touch(child.task, heap_vpn)
            return content

        content = run(env, body())
        assert content == "precious"
        node1 = deployment.node(cluster.machine(1))
        assert node1.pager.counters["revocation_fallbacks"] == 1
        assert node1.pager.counters["fallback_rpcs"] == 1

    def test_revocation_is_per_vma(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        kernel0 = runtimes[0].kernel
        kernel1 = runtimes[1].kernel
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))
        heap = parent.task.address_space.vmas[3]
        code = parent.task.address_space.vmas[0]

        def body():
            meta = yield from node0.fork_prepare(parent)
            child = yield from node1.fork_resume(meta)
            _, shadow = node0.service.lookup(meta.handler_id, meta.auth_key)
            yield from kernel0.reclaim(shadow, [heap.start_vpn])
            # The heap VMA's target is gone; the code VMA still flies RDMA.
            yield from kernel1.touch(child.task, code.start_vpn)
            yield from kernel1.touch(child.task, heap.start_vpn + 1)
            return node1.pager.counters.as_dict()

        counters = run(env, body())
        assert counters["rdma_reads"] == 1
        assert counters["revocation_fallbacks"] == 1

    def test_fallback_slower_than_rdma(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        kernel0 = runtimes[0].kernel
        kernel1 = runtimes[1].kernel
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))
        heap = parent.task.address_space.vmas[3]

        def body():
            meta = yield from node0.fork_prepare(parent)
            child = yield from node1.fork_resume(meta)
            start = env.now
            yield from kernel1.touch(child.task, heap.start_vpn)
            rdma_time = env.now - start
            _, shadow = node0.service.lookup(meta.handler_id, meta.auth_key)
            yield from kernel0.reclaim(shadow, [heap.start_vpn + 1])
            start = env.now
            yield from kernel1.touch(child.task, heap.start_vpn + 1)
            fallback_time = env.now - start
            return rdma_time, fallback_time

        rdma_time, fallback_time = run(env, body())
        assert fallback_time > 2 * rdma_time

    def test_no_revocation_without_reclaim(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        kernel1 = runtimes[1].kernel
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))
        heap = parent.task.address_space.vmas[3]

        def body():
            meta = yield from node0.fork_prepare(parent)
            child = yield from node1.fork_resume(meta)
            for i in range(8):
                yield from kernel1.touch(child.task, heap.start_vpn + i)
            return node1.pager.counters.as_dict()

        counters = run(env, body())
        assert counters["rdma_reads"] == 8
        assert counters.get("fallback_rpcs", 0) == 0


class TestPageSharing:
    def test_second_child_hits_local_cache(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        kernel1 = runtimes[1].kernel
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))
        lib = parent.task.address_space.vmas[1]

        def body():
            meta = yield from node0.fork_prepare(parent)
            first = yield from node1.fork_resume(meta)
            second = yield from node1.fork_resume(meta)
            yield from kernel1.touch(first.task, lib.start_vpn)
            yield from kernel1.touch(second.task, lib.start_vpn)
            return node1.pager.counters.as_dict(), first, second

        counters, first, second = run(env, body())
        assert counters["rdma_reads"] == 1
        assert counters["shared_hits"] == 1
        # Both children share one frame copy-on-write.
        f1 = first.task.address_space.page_table.entry(lib.start_vpn).frame
        f2 = second.task.address_space.page_table.entry(lib.start_vpn).frame
        assert f1 is f2
        assert f1.refcount == 2

    def test_shared_write_breaks_cow(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        kernel1 = runtimes[1].kernel
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))
        heap = parent.task.address_space.vmas[3]

        def body():
            meta = yield from node0.fork_prepare(parent)
            first = yield from node1.fork_resume(meta)
            second = yield from node1.fork_resume(meta)
            yield from kernel1.touch(first.task, heap.start_vpn)
            yield from kernel1.write_page(second.task, heap.start_vpn, "mine")
            c1 = yield from kernel1.touch(first.task, heap.start_vpn)
            c2 = yield from kernel1.touch(second.task, heap.start_vpn)
            return c1, c2

        c1, c2 = run(env, body())
        assert c2 == "mine"
        assert c1 != "mine"

    def test_sharing_disabled_reads_remote_every_time(self):
        env, cluster, runtimes, deployment = build_rig(enable_sharing=False)
        parent = start_parent(env, runtimes[0])
        kernel1 = runtimes[1].kernel
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))
        lib = parent.task.address_space.vmas[1]

        def body():
            meta = yield from node0.fork_prepare(parent)
            first = yield from node1.fork_resume(meta)
            second = yield from node1.fork_resume(meta)
            yield from kernel1.touch(first.task, lib.start_vpn)
            yield from kernel1.touch(second.task, lib.start_vpn)
            return node1.pager.counters.as_dict()

        counters = run(env, body())
        assert counters["rdma_reads"] == 2
        assert counters.get("shared_hits", 0) == 0


class TestMultiHop:
    def test_grandchild_pulls_from_correct_elders(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        k0, k1, k2 = (runtimes[i].kernel for i in range(3))
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))
        node2 = deployment.node(cluster.machine(2))
        heap = parent.task.address_space.vmas[3]
        data0_vpn = heap.start_vpn       # written by func0 (machine 0)
        data1_vpn = heap.start_vpn + 1   # written by func1 (machine 1)

        def body():
            yield from k0.write_page(parent.task, data0_vpn, "data[0]")
            meta0 = yield from node0.fork_prepare(parent)
            func1 = yield from node1.fork_resume(meta0)
            yield from k1.write_page(func1.task, data1_vpn, "data[1]")
            meta1 = yield from node1.fork_prepare(func1)
            func2 = yield from node2.fork_resume(meta1)
            d1 = yield from k2.touch(func2.task, data1_vpn)
            d0 = yield from k2.touch(func2.task, data0_vpn)
            return d0, d1, func2

        d0, d1, func2 = run(env, body())
        assert d0 == "data[0]"  # pulled from machine 0 (two hops up)
        assert d1 == "data[1]"  # pulled from machine 1 (one hop up)
        assert len(func2.task.predecessors) == 2

    def test_owner_bits_encode_hops(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        k1 = runtimes[1].kernel
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))
        node2 = deployment.node(cluster.machine(2))
        heap = parent.task.address_space.vmas[3]

        def body():
            meta0 = yield from node0.fork_prepare(parent)
            func1 = yield from node1.fork_resume(meta0)
            # func1 touches one page locally; the rest stay on machine 0.
            yield from k1.touch(func1.task, heap.start_vpn)
            meta1 = yield from node1.fork_prepare(func1)
            func2 = yield from node2.fork_resume(meta1)
            pt = func2.task.address_space.page_table
            touched = pt.entry(heap.start_vpn)
            untouched = pt.entry(heap.start_vpn + 1)
            return touched.owner_index, untouched.owner_index

        touched_owner, untouched_owner = run(env, body())
        assert touched_owner == 0     # immediate parent (machine 1)
        assert untouched_owner == 1   # grandparent (machine 0)

    def test_depth_limit_enforced(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        node0 = deployment.node(cluster.machine(0))
        parent.task.predecessors = [
            (cluster.machine(0), None)] * params.MAX_FORK_HOPS

        def body():
            with pytest.raises(ForkDepthExceeded):
                yield from node0.fork_prepare(parent)
            return True

        assert run(env, body())


class TestRcTransportAblation:
    def test_rc_mode_pays_connection_setup(self):
        env, cluster, runtimes, deployment = build_rig(transport="rc")
        parent = start_parent(env, runtimes[0])
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))

        def body():
            meta = yield from node0.fork_prepare(parent)
            start = env.now
            yield from node1.fork_resume(meta)
            return env.now - start

        rc_elapsed = run(env, body())

        env2, cluster2, runtimes2, deployment2 = build_rig(transport="dct")
        parent2 = start_parent(env2, runtimes2[0])
        node0b = deployment2.node(cluster2.machine(0))
        node1b = deployment2.node(cluster2.machine(1))

        def body2():
            meta = yield from node0b.fork_prepare(parent2)
            start = env2.now
            yield from node1b.fork_resume(meta)
            return env2.now - start

        dct_elapsed = env2.run(env2.process(body2()))
        assert rc_elapsed > dct_elapsed + params.RC_CONNECT_LATENCY * 0.9

    def test_rc_mode_still_reads_pages(self):
        env, cluster, runtimes, deployment = build_rig(transport="rc")
        parent = start_parent(env, runtimes[0])
        kernel1 = runtimes[1].kernel
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))
        heap = parent.task.address_space.vmas[3]

        def body():
            meta = yield from node0.fork_prepare(parent)
            child = yield from node1.fork_resume(meta)
            return (yield from kernel1.touch(child.task, heap.start_vpn))

        assert run(env, body()) is not None


class TestDescriptorGc:
    def test_retire_frees_memory_and_revokes(self, rig):
        env, cluster, runtimes, deployment = rig
        parent = start_parent(env, runtimes[0])
        node0 = deployment.node(cluster.machine(0))
        kernel1 = runtimes[1].kernel
        node1 = deployment.node(cluster.machine(1))
        heap = parent.task.address_space.vmas[3]

        def body():
            meta = yield from node0.fork_prepare(parent)
            child = yield from node1.fork_resume(meta)
            yield from kernel1.touch(child.task, heap.start_vpn)
            assert node0.retire_descriptor(meta)
            # Further reads must take the fallback... which also fails
            # because the descriptor is gone entirely.
            try:
                yield from kernel1.touch(child.task, heap.start_vpn + 1)
            except RpcError:
                return "rejected"
            return "served"

        assert run(env, body()) == "rejected"

    def test_retire_unknown_meta_returns_false(self, rig):
        env, cluster, runtimes, deployment = rig
        from repro.core import ForkMeta
        node0 = deployment.node(cluster.machine(0))
        assert not node0.retire_descriptor(ForkMeta(0, 999, 1))
