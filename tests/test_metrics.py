"""Tests for the metrics collectors and statistics helpers."""

import pytest

from repro.metrics import (
    CounterSet,
    LatencyRecorder,
    ThroughputMeter,
    TimeSeries,
    geometric_mean,
    histogram,
    mean,
    percentile,
)


class TestLatencyRecorder:
    def test_summary_fields(self):
        rec = LatencyRecorder("lat")
        for v in (1.0, 2.0, 3.0, 4.0, 100.0):
            rec.record(v)
        summary = rec.summary()
        assert summary["count"] == 5
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["p50"] == 3.0
        assert summary["mean"] == 22.0

    def test_empty_summary(self):
        assert LatencyRecorder("x").summary() == {"name": "x", "count": 0}

    def test_percentiles_and_cdf(self):
        rec = LatencyRecorder()
        for v in range(1, 101):
            rec.record(float(v))
        assert rec.p50() == pytest.approx(50.5)
        assert rec.p99() == pytest.approx(99.01)
        curve = rec.cdf(10)
        assert len(curve) == 10
        assert curve[-1][1] == pytest.approx(1.0)

    def test_geometric_mean(self):
        rec = LatencyRecorder()
        rec.record(1.0)
        rec.record(100.0)
        assert rec.geometric_mean() == pytest.approx(10.0)

    def test_empty_min_max_raise(self):
        # Regression: these silently returned 0.0, making an
        # empty recorder look like a measured zero latency.
        rec = LatencyRecorder("empty")
        with pytest.raises(ValueError, match="min of empty sequence"):
            rec.min()
        with pytest.raises(ValueError, match="max of empty sequence"):
            rec.max()
        rec.record(7.0)
        assert rec.min() == 7.0
        assert rec.max() == 7.0


class TestTimeSeries:
    def test_value_at_steps(self):
        series = TimeSeries()
        series.sample(0.0, 10)
        series.sample(5.0, 20)
        series.sample(9.0, 30)
        assert series.value_at(0.0) == 10
        assert series.value_at(4.9) == 10
        assert series.value_at(5.0) == 20
        assert series.value_at(100.0) == 30

    def test_value_before_first_sample_raises(self):
        series = TimeSeries()
        series.sample(5.0, 1)
        with pytest.raises(ValueError):
            series.value_at(4.0)

    def test_max_and_lengths(self):
        series = TimeSeries()
        series.sample(0.0, 3)
        series.sample(1.0, 7)
        assert series.max() == 7
        assert len(series) == 2
        assert series.times() == [0.0, 1.0]
        assert series.values() == [3, 7]


class TestThroughputMeter:
    def test_rate_over_span(self):
        meter = ThroughputMeter()
        for t in (0.0, 1.0, 2.0, 3.0, 4.0):
            meter.mark(t)
        assert meter.rate() == pytest.approx(5 / 4.0)
        assert meter.count == 5

    def test_rate_with_window(self):
        meter = ThroughputMeter()
        for t in range(10):
            meter.mark(float(t))
        assert meter.rate(start=0.0, end=4.0) == pytest.approx(5 / 4.0)

    def test_empty_rate_zero(self):
        assert ThroughputMeter().rate() == 0.0

    def test_windowed_counts(self):
        meter = ThroughputMeter()
        for t in (0.0, 0.5, 1.5, 3.5):
            meter.mark(t)
        windows = meter.windowed(1.0)
        assert windows[0] == (0.0, 2)
        assert windows[1] == (1.0, 1)
        assert windows[2] == (2.0, 0)
        assert windows[3] == (3.0, 1)


class TestCounterSet:
    def test_incr_and_read(self):
        counters = CounterSet()
        counters.incr("a")
        counters.incr("a", 4)
        assert counters["a"] == 5
        assert counters["missing"] == 0

    def test_as_dict_and_reset(self):
        counters = CounterSet()
        counters.incr("x")
        assert counters.as_dict() == {"x": 1}
        counters.reset()
        assert counters.as_dict() == {}


class TestStatsFunctions:
    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_percentile_single_value(self):
        assert percentile([7.0], 50) == 7.0

    def test_histogram_bins(self):
        counts = histogram([1, 2, 3, 10, 11], [0, 5, 15])
        assert counts == [3, 2]

    def test_histogram_excludes_out_of_range(self):
        counts = histogram([-1, 100], [0, 5, 15])
        assert counts == [0, 0]
