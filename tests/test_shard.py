"""Sharded simulation core: messages, conservative windows, fork rig.

The exactness tests are the PR's determinism contract: a two-shard
ping-pong must replay byte-identically against the same model on one
environment, the multiprocess driver must agree with the in-process
one, and the sharded fork rig must reproduce the single-core rig's
per-invocation outcomes exactly (with the residual timing skew bounded,
not assumed zero).
"""

import pytest

from repro import params, sanitizers
from repro.shard import (EID_SHARD_SHIFT, ShardMessage, ShardSim,
                         ShardSyncError, default_shards, differential,
                         eid_base, eid_shard, intern_payload,
                         merge_messages, owner_of, run_windows,
                         run_windows_mp)
from repro.shard.fork_rig import SHARDS_ENV_VAR
from repro.sim import Environment


def _message(deliver_at, src_shard, seq, payload=(0, None), sent_at=0.0):
    return ShardMessage(deliver_at=deliver_at, src_shard=src_shard,
                        seq=seq, kind="t", payload=payload,
                        sent_at=sent_at)


class TestMessages:
    def test_eid_namespacing_roundtrip(self):
        assert eid_base(0) == 0
        assert eid_base(3) == 3 << EID_SHARD_SHIFT
        assert eid_shard(eid_base(3) + 12345) == 3
        assert eid_shard(7) == 0

    def test_environment_eids_carry_the_shard_tag(self):
        env = Environment(eid_base=eid_base(2))
        env.schedule(env.event())
        _when, _prio, eid, _event = env.peek_entry()
        assert eid_shard(eid) == 2

    def test_merge_rule_total_order(self):
        batches = [[_message(5.0, 1, 1), _message(2.0, 1, 2)],
                   [_message(2.0, 0, 9), _message(2.0, 0, 3)]]
        merged = merge_messages(batches)
        assert [m.merge_key() for m in merged] == [
            (2.0, 0, 3), (2.0, 0, 9), (2.0, 1, 2), (5.0, 1, 1)]

    def test_intern_payload_dedups(self):
        first = intern_payload(("get", (1, 2), "page"))
        second = intern_payload(("get", (1, 2), "page"))
        assert first is second
        unhashable = intern_payload(["not", "hashable"])
        assert unhashable == ["not", "hashable"]


def _pingpong_sharded(hops, latency):
    """Two shards volleying a counter; returns (trace, sims, rounds)."""
    trace = []

    def handler(sim, message):
        _dst, count = message.payload
        trace.append((sim.env.now, sim.shard_id, count))
        if count < hops:
            sim.send(1 - sim.shard_id, "ping",
                     (1 - sim.shard_id, count + 1), latency=latency)

    sims = [ShardSim(0, handler, lookahead=latency),
            ShardSim(1, handler, lookahead=latency)]
    sims[0].send(1, "ping", (1, 1), latency=latency)
    rounds = run_windows(sims)
    return trace, sims, rounds


def _pingpong_single(hops, latency):
    """The same volley on one environment — the exactness oracle."""
    env = Environment()
    trace = []

    def volley():
        for count in range(1, hops + 1):
            yield env.timeout(latency)
            trace.append((env.now, count % 2, count))

    env.run(env.process(volley()))
    return trace


class TestConservativeWindows:
    def test_pingpong_matches_single_environment(self):
        sharded, sims, rounds = _pingpong_sharded(7, latency=1.0)
        assert sharded == _pingpong_single(7, latency=1.0)
        assert rounds > 1  # genuinely windowed, not one mega-window
        assert sanitizers.audit_shard(sims) == []

    def test_lookahead_undercut_raises(self):
        sim = ShardSim(0, lookahead=1.0)
        with pytest.raises(ShardSyncError):
            sim.send(1, "ping", (1, 0), latency=0.5)

    def test_delivery_in_the_past_raises(self):
        sim = ShardSim(0, lookahead=1.0, env=Environment(initial_time=5.0))
        with pytest.raises(ShardSyncError):
            sim.deliver([_message(4.0, 1, 1)])

    def test_round_guard_trips_on_tiny_budget(self):
        with pytest.raises(ShardSyncError):
            trace = []

            def handler(sim, message):
                _dst, count = message.payload
                trace.append(count)
                if count < 50:
                    sim.send(1 - sim.shard_id, "ping",
                             (1 - sim.shard_id, count + 1), latency=1.0)

            sims = [ShardSim(0, handler, lookahead=1.0),
                    ShardSim(1, handler, lookahead=1.0)]
            sims[0].send(1, "ping", (1, 1), latency=1.0)
            run_windows(sims, max_rounds=3)

    def test_multiprocess_driver_agrees_with_in_process(self):
        hops, latency = 7, 1.0
        _trace, sims, rounds = _pingpong_sharded(hops, latency)

        def factory(shard_id):
            def handler(sim, message):
                _dst, count = message.payload
                if count < hops:
                    sim.send(1 - sim.shard_id, "ping",
                             (1 - sim.shard_id, count + 1),
                             latency=latency)
            sim = ShardSim(shard_id, handler, lookahead=latency)
            if shard_id == 0:
                sim.send(1, "ping", (1, 1), latency=latency)
            return sim

        reports = run_windows_mp(factory, workers=2)
        assert sanitizers.audit_shard(reports) == []
        for sim, report in zip(sims, reports):
            assert report["shard"] == sim.shard_id
            assert report["now"] == sim.env.now
            assert report["events"] == sim.env.events_processed
            assert report["rounds"] == rounds
            assert ([m.merge_key() for m in report["received"]]
                    == [m.merge_key() for m in sim.received])


class TestShardAudit:
    def test_flags_lookahead_violation_in_sent_log(self):
        sim = ShardSim(0, lookahead=1.0)
        sim.send(1, "ping", (1, 0), latency=2.0)
        # Tamper behind the API, as a buggy engine would.
        sim.sent[0] = _message(0.1, 0, 1, sent_at=0.0)
        assert any("lookahead" in v for v in sanitizers.audit_shard([sim]))

    def test_flags_out_of_merge_order_delivery(self):
        sim = ShardSim(0, lookahead=1.0)
        sim.received = [_message(5.0, 0, 1, sent_at=3.0),
                        _message(2.0, 0, 2, sent_at=1.0)]
        assert any("merge order" in v
                   for v in sanitizers.audit_shard([sim]))

    def test_check_shard_raises(self):
        sim = ShardSim(0, lookahead=-1.0)
        with pytest.raises(sanitizers.SanitizerViolation):
            sanitizers.check_shard([sim])


class TestForkRigPartition:
    def test_owner_of_balances_round_robin(self):
        owners = [owner_of(i, 3) for i in range(8)]
        assert owners == [0, 1, 2, 0, 1, 2, 0, 1]

    def test_default_shards_parsing(self, monkeypatch):
        monkeypatch.delenv(SHARDS_ENV_VAR, raising=False)
        assert default_shards() is None
        monkeypatch.setenv(SHARDS_ENV_VAR, "0")
        assert default_shards() is None
        monkeypatch.setenv(SHARDS_ENV_VAR, "4")
        assert default_shards() == 4
        monkeypatch.setenv(SHARDS_ENV_VAR, "-2")
        with pytest.raises(ValueError):
            default_shards()

    def test_differential_exact_outcomes_small_burst(self):
        single, sharded, diff = differential(120, workers=2)
        assert diff["outcomes_match"]
        assert diff["invocations"] == 120
        assert diff["max_started_skew_rel"] < 0.02
        assert diff["max_finished_skew_rel"] < 0.02
        assert diff["makespan_skew_rel"] < 0.02
        assert sharded["events"] > 0
        assert len(sharded["records"]) == len(single["records"]) == 120
        assert sanitizers.audit_shard(sharded) == []

    def test_audit_flags_tampered_rig_result(self):
        _single, sharded, _diff = differential(40, workers=2)
        sharded["shards"][1]["pick_digest"] = "0" * 64
        violations = sanitizers.audit_shard(sharded)
        assert any("digest" in v for v in violations)
        sharded["shards"][1]["owned_invokers"] = (
            sharded["shards"][0]["owned_invokers"])
        assert any("ownership" in v
                   for v in sanitizers.audit_shard(sharded))

    def test_sharded_rig_uses_namespaced_eids(self):
        _single, sharded, _diff = differential(40, workers=2)
        bases = [report["eid_base"] for report in sharded["shards"]]
        assert bases == [eid_base(0), eid_base(1)]
        assert params.SHARD_LOOKAHEAD > 0
