"""Tests for the fault-injection subsystem and every recovery path.

Covers the fault taxonomy end to end: schedule validation, injector state,
deterministic datagram loss, RPC deadlines/retries/backoff, worker-pool
saturation, QP error states, dead-vs-revoked disambiguation, descriptor
leases, invoker crash re-admission, and a hypothesis property test that
any bounded fault schedule leaves the event loop drainable with every
invocation completed or failed loudly.
"""

import pytest

from repro import params
from repro.cluster import Cluster
from repro.containers import ContainerRuntime, hello_world_image
from repro.core import MitosisDeployment
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    LeaseExpired,
    LinkCut,
    MachineCrash,
    NicFlap,
    ParentUnreachable,
    UdDropStorm,
)
from repro.fn import FnCluster, MitosisPolicy
from repro.kernel import Kernel
from repro.rdma import (
    ConnectionError_,
    RdmaFabric,
    RemoteAccessError,
    RpcError,
    RpcRuntime,
    RpcTimeout,
)
from repro.rdma.qp import DcQp
from repro.sim import Environment, Interrupt, Resource, SeededStreams, Store
from repro.workloads import tc0_profile


def run(env, gen):
    return env.run(env.process(gen))


@pytest.fixture
def rig():
    env = Environment()
    cluster = Cluster(env, num_machines=4, num_racks=1)
    fabric = RdmaFabric(env, cluster)
    injector = FaultInjector(env, cluster).install(fabric)
    return env, cluster, fabric, injector


# --- Schedule validation -----------------------------------------------------------
class TestSchedule:
    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            MachineCrash(-1.0, 0)

    def test_flap_requires_duration(self):
        with pytest.raises(TypeError):
            NicFlap(0.0, 0)

    def test_link_cut_needs_two_machines(self):
        with pytest.raises(ValueError):
            LinkCut(0.0, 2, 2, down_for=1.0)

    def test_storm_rate_bounded(self):
        with pytest.raises(ValueError):
            UdDropStorm(0.0, rate=1.5, down_for=1.0)

    def test_horizon_and_recovery(self):
        sched = FaultSchedule([
            MachineCrash(1.0, 0, down_for=5.0),
            NicFlap(2.0, 1, down_for=1.0),
        ])
        assert sched.horizon == pytest.approx(6.0)
        assert sched.eventually_recovers
        forever = FaultSchedule([MachineCrash(0.0, 0)])
        assert not forever.eventually_recovers


# --- Injector state machine --------------------------------------------------------
class TestInjector:
    def test_crash_is_idempotent_and_restart_balances(self, rig):
        env, cluster, fabric, injector = rig
        assert injector.crash_machine(1)
        assert not injector.crash_machine(1)
        assert not injector.machine_up(1)
        assert not injector.path_up(0, 1)
        assert injector.restart_machine(1)
        assert not injector.restart_machine(1)
        assert injector.machine_up(1)

    def test_nic_flaps_nest(self, rig):
        env, cluster, fabric, injector = rig
        injector.nic_down(2)
        injector.nic_down(2)
        injector.nic_restore(2)
        assert not injector.nic_up(2)
        injector.nic_restore(2)
        assert injector.nic_up(2)

    def test_link_cut_is_symmetric(self, rig):
        env, cluster, fabric, injector = rig
        injector.cut_link(0, 3)
        assert not injector.path_up(3, 0)
        assert injector.path_up(0, 1)
        injector.restore_link(3, 0)
        assert injector.path_up(0, 3)

    def test_crash_interrupts_hosted_processes(self, rig):
        env, cluster, fabric, injector = rig
        seen = []

        def victim():
            try:
                yield env.timeout(100.0)
            except Interrupt as exc:
                seen.append(exc.cause)

        proc = env.process(victim())
        injector.host_process(1, proc)

        def driver():
            yield env.timeout(1.0)
            injector.crash_machine(1)

        env.process(driver())
        env.run()
        assert len(seen) == 1 and seen[0].machine_id == 1

    def test_ud_drops_are_deterministic(self):
        def outcomes(seed):
            env = Environment()
            cluster = Cluster(env, num_machines=2, num_racks=1)
            fabric = RdmaFabric(env, cluster)
            inj = FaultInjector(env, cluster,
                                streams=SeededStreams(seed)).install(fabric)
            inj.start_storm(0.5)
            return [inj.ud_delivered(0, 1) for _ in range(50)]

        assert outcomes(7) == outcomes(7)
        assert outcomes(7) != outcomes(8)

    def test_schedule_driver_injects_and_heals(self, rig):
        env, cluster, fabric, injector = rig
        injector.apply([NicFlap(5.0, 1, down_for=10.0)])

        def probe():
            yield env.timeout(6.0)
            mid = injector.nic_up(1)
            yield env.timeout(10.0)
            return mid, injector.nic_up(1)

        mid, after = run(env, probe())
        assert not mid and after
        assert injector.recovery.mttr() == pytest.approx(10.0)


# --- RPC deadlines, retries, loss --------------------------------------------------
class TestRpcFaults:
    def _rpc(self, rig, handler=None):
        env, cluster, fabric, injector = rig
        rpc = RpcRuntime(env, fabric, streams=SeededStreams(1))
        target = cluster.machine(1)
        endpoint = rpc.endpoint(target)

        def default(args):
            yield env.timeout(1.0 * params.US)
            return "pong", 32

        endpoint.register("t.ping", handler or default)
        return env, cluster, rpc, target

    def test_call_to_dead_machine_times_out(self, rig):
        env, cluster, rpc, target = self._rpc(rig)
        rig[3].crash_machine(1)

        def body():
            start = env.now
            with pytest.raises(RpcTimeout):
                yield from rpc.call(cluster.machine(0), target, "t.ping", {},
                                    deadline=1.0 * params.MS, retries=2)
            return env.now - start

        elapsed = run(env, body())
        # Three attempts' deadlines plus two backoffs must have elapsed.
        assert elapsed >= 3 * 1.0 * params.MS
        assert rpc.counters["rpc_timeouts"] == 3
        assert rpc.counters["rpc_retries"] == 2

    def test_retry_succeeds_after_nic_recovers(self, rig):
        env, cluster, rpc, target = self._rpc(rig)
        injector = rig[3]
        injector.apply([NicFlap(0.0, 1, down_for=1.5 * params.MS)])

        def body():
            yield env.timeout(1.0)  # let the flap driver arm first
            value = yield from rpc.call(
                cluster.machine(0), target, "t.ping", {},
                deadline=1.0 * params.MS, retries=3)
            return value

        assert run(env, body()) == "pong"
        assert rpc.counters["rpc_retries"] >= 1

    def test_rpc_error_is_authoritative_never_retried(self, rig):
        def reject(args):
            yield rig[0].timeout(1.0 * params.US)
            raise RpcError("nope")

        env, cluster, rpc, target = self._rpc(rig, handler=reject)

        def body():
            with pytest.raises(RpcError):
                yield from rpc.call(cluster.machine(0), target, "t.ping", {},
                                    deadline=1.0 * params.MS, retries=3)
            return True

        assert run(env, body())
        assert rpc.counters["rpc_retries"] == 0

    def test_unknown_method_costs_a_round_trip(self, rig):
        """Satellite: the table miss must still burn the request RTT."""
        env, cluster, rpc, target = self._rpc(rig)
        wire = rig[2].wire_latency(cluster.machine(0), target)

        def body():
            start = env.now
            with pytest.raises(RpcError):
                yield from rpc.call(cluster.machine(0), target, "t.nope", {})
            return env.now - start

        elapsed = run(env, body())
        # Request wire + server miss + reply wire: strictly positive and at
        # least two one-way latencies.
        assert elapsed >= 2 * wire + params.RPC_UNKNOWN_METHOD_LATENCY

    def test_unknown_method_on_dead_machine_is_timeout(self, rig):
        env, cluster, rpc, target = self._rpc(rig)
        rig[3].crash_machine(1)

        def body():
            with pytest.raises(RpcTimeout):
                yield from rpc.call(cluster.machine(0), target, "t.nope", {},
                                    deadline=1.0 * params.MS, retries=0)
            return True

        assert run(env, body())

    def test_storm_losses_eventually_get_through(self, rig):
        env, cluster, rpc, target = self._rpc(rig)
        injector = rig[3]
        injector.start_storm(0.6)

        def body():
            value = yield from rpc.call(
                cluster.machine(0), target, "t.ping", {},
                deadline=1.0 * params.MS, retries=8)
            return value

        assert run(env, body()) == "pong"
        assert injector.counters["ud_dropped"] >= 1


class TestWorkerSaturation:
    """Satellite: queued calls are delayed, not dropped; deadlines still
    fire while a request sits in the worker queue."""

    def _slow_rpc(self, rig, service_time):
        env, cluster, fabric, injector = rig
        rpc = RpcRuntime(env, fabric, streams=SeededStreams(1))
        target = cluster.machine(1)

        def slow(args):
            yield env.timeout(service_time)
            return "done", 32

        rpc.endpoint(target).register("t.slow", slow)
        return env, cluster, rpc, target

    def test_saturated_pool_delays_but_serves_all(self, rig):
        service = 100.0 * params.US
        env, cluster, rpc, target = self._slow_rpc(rig, service)
        finish = []

        def caller():
            yield from rpc.call(cluster.machine(0), target, "t.slow", {},
                                deadline=10.0 * params.MS, retries=0)
            finish.append(env.now)

        for _ in range(6):
            env.process(caller())
        env.run()
        assert len(finish) == 6  # nothing dropped
        # Two workers, six calls: three service waves.
        span = max(finish) - min(finish)
        assert span >= 2 * service

    def test_deadline_fires_while_queued(self, rig):
        service = 2.0 * params.MS
        env, cluster, rpc, target = self._slow_rpc(rig, service)
        outcomes = []

        def caller(deadline):
            try:
                yield from rpc.call(cluster.machine(0), target, "t.slow", {},
                                    deadline=deadline, retries=0)
                outcomes.append("ok")
            except RpcTimeout:
                outcomes.append("timeout")

        # Two fill the pool; the third's deadline expires in the queue.
        env.process(caller(50.0 * params.MS))
        env.process(caller(50.0 * params.MS))
        env.process(caller(1.0 * params.MS))
        env.run()
        assert sorted(outcomes) == ["ok", "ok", "timeout"]


# --- Abandoned waiters (interrupt-safety of sim resources) -------------------------
class TestAbandonedWaiters:
    def test_interrupted_resource_waiter_frees_slot(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def holder():
            yield res.acquire()
            yield env.timeout(10.0)
            res.release()

        def waiter():
            try:
                yield res.acquire()
                order.append("acquired")
                res.release()
            except Interrupt:
                order.append("interrupted")

        env.process(holder())
        victim = env.process(waiter())

        def third():
            yield res.acquire()
            order.append("third")
            res.release()

        env.process(third())

        def killer():
            yield env.timeout(1.0)
            victim.interrupt("die")

        env.process(killer())
        env.run()
        assert order == ["interrupted", "third"]

    def test_interrupted_store_getter_detaches(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter():
            try:
                item = yield store.get()
                got.append(item)
            except Interrupt:
                got.append("interrupted")

        victim = env.process(getter())
        survivor = env.process(getter())

        def driver():
            yield env.timeout(1.0)
            victim.interrupt("die")
            yield env.timeout(1.0)
            store.put("x")

        env.process(driver())
        env.run()
        assert got == ["interrupted", "x"]


# --- QP error semantics ------------------------------------------------------------
class TestQpFaults:
    def test_rc_qp_enters_error_state_on_dead_path(self, rig):
        env, cluster, fabric, injector = rig
        nic = fabric.nic_of(cluster.machine(0))

        def body():
            qp = yield from nic.create_rc_qp(cluster.machine(1))
            injector.cut_link(0, 1)
            with pytest.raises(ConnectionError_):
                yield from qp.read(params.PAGE_SIZE)
            injector.restore_link(0, 1)
            # Link healed but the QP stays unusable: real RC semantics.
            with pytest.raises(ConnectionError_):
                yield from qp.read(params.PAGE_SIZE)
            return qp.state

        assert run(env, body()) == "ERROR"

    def test_dc_dead_peer_vs_revoked_target(self, rig):
        """The §4.3 disambiguation: NAK = revoked, timeout = dead."""
        env, cluster, fabric, injector = rig
        nic0 = fabric.nic_of(cluster.machine(0))
        nic1 = fabric.nic_of(cluster.machine(1))
        target = nic1._new_target(user_key=0xAB)
        qp = DcQp(nic0)

        def body():
            # Destroyed target: loud NAK, quickly.
            nic1.destroy_target(target)
            start = env.now
            with pytest.raises(RemoteAccessError):
                yield from qp.read(cluster.machine(1), target.target_id,
                                   target.key, params.PAGE_SIZE)
            nak_time = env.now - start
            # Dead path: burns the transport retry budget instead.
            injector.cut_link(0, 1)
            start = env.now
            with pytest.raises(ConnectionError_):
                yield from qp.read(cluster.machine(1), target.target_id,
                                   target.key, params.PAGE_SIZE)
            dead_time = env.now - start
            return nak_time, dead_time

        nak_time, dead_time = run(env, body())
        assert dead_time >= params.DC_RETRY_TIMEOUT > nak_time


# --- Leases ------------------------------------------------------------------------
def lease_rig(num_machines=3):
    env = Environment()
    cluster = Cluster(env, num_machines=num_machines, num_racks=1)
    fabric = RdmaFabric(env, cluster)
    injector = FaultInjector(env, cluster).install(fabric)
    rpc = RpcRuntime(env, fabric, streams=SeededStreams(0))
    kernels = [Kernel(env, m) for m in cluster]
    runtimes = [ContainerRuntime(env, k) for k in kernels]
    deployment = MitosisDeployment(env, cluster, fabric, rpc, runtimes)
    deployment.connect_faults(injector, leases=True)
    return env, cluster, kernels, runtimes, deployment, injector


class TestLeases:
    def test_publish_stamps_and_expiry_frees_memory(self):
        env, cluster, kernels, runtimes, deployment, injector = lease_rig()
        node0 = deployment.node(cluster.machine(0))

        def body():
            parent = yield from runtimes[0].cold_start(hello_world_image())
            meta = yield from node0.fork_prepare(parent)
            assert meta.lease_expires_at == pytest.approx(
                env.now + params.LEASE_DURATION)
            used_with = node0.machine.memory.used
            yield env.timeout(params.LEASE_DURATION + 1.0)
            assert node0.service.sweep_leases() == 1
            freed = used_with - node0.machine.memory.used
            return freed

        assert run(env, body()) > 0

    def test_child_renews_stale_handle(self):
        env, cluster, kernels, runtimes, deployment, injector = lease_rig()
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))

        def body():
            parent = yield from runtimes[0].cold_start(hello_world_image())
            meta = yield from node0.fork_prepare(parent)
            # Keep the parent-side lease alive; let the handle go stale.
            yield env.timeout(params.LEASE_DURATION * 0.9)
            node0.service.touch_lease(meta.handler_id)
            yield env.timeout(params.LEASE_DURATION * 0.2)
            assert env.now > meta.lease_expires_at
            child = yield from node1.fork_resume(meta)
            return child, meta

        child, meta = run(env, body())
        assert child.task.state == "runnable"
        assert meta.lease_expires_at > env.now - params.LEASE_DURATION
        node0_counters = node0.service.counters.as_dict()
        assert node0_counters["leases_renewed"] == 1

    def test_expired_descriptor_renewal_raises_lease_expired(self):
        env, cluster, kernels, runtimes, deployment, injector = lease_rig()
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))

        def body():
            parent = yield from runtimes[0].cold_start(hello_world_image())
            meta = yield from node0.fork_prepare(parent)
            yield env.timeout(params.LEASE_DURATION + 1.0)
            with pytest.raises(LeaseExpired):
                yield from node1.fork_resume(meta)
            return True

        assert run(env, body())

    def test_lease_daemon_keeps_descriptor_alive(self):
        env, cluster, kernels, runtimes, deployment, injector = lease_rig()
        node0 = deployment.node(cluster.machine(0))
        node1 = deployment.node(cluster.machine(1))
        node0.start_lease_daemon()

        def body():
            parent = yield from runtimes[0].cold_start(hello_world_image())
            meta = yield from node0.fork_prepare(parent)
            yield env.timeout(params.LEASE_DURATION * 3)
            child = yield from node1.fork_resume(meta)
            return child

        child = run(env, body())
        assert child.task.state == "runnable"
        node0.stop_lease_daemon()


# --- FnCluster crash recovery ------------------------------------------------------
def small_fn(durable=False, seed=0):
    policy = MitosisPolicy(durable_seed=durable)
    fn = FnCluster(policy, num_invokers=2, num_machines=5, num_dfs_osds=2,
                   seed=seed)
    fn.enable_faults()
    profile = tc0_profile()

    def setup():
        yield from fn.register(profile)

    fn.env.run(fn.env.process(setup()))
    return fn, policy, profile


class TestInvokerCrashRecovery:
    def test_crash_mid_invocations_all_complete_or_fail_loudly(self):
        fn, policy, profile = small_fn(durable=True)
        seed_invoker, _, _ = policy.seeds[profile.name]

        def body():
            procs = [fn.submit(profile.name) for _ in range(8)]
            yield fn.env.timeout(10.0 * params.MS)
            fn.faults.apply([MachineCrash(
                0.0, seed_invoker.machine.machine_id,
                down_for=2.0 * params.SEC)])
            for _ in range(8):
                procs.append(fn.submit(profile.name))
            for proc in procs:
                yield proc
            return fn.records

        records = fn.env.run(fn.env.process(body()))
        fn.stop_fault_daemons()
        assert len(records) == 16
        assert all(r.outcome in ("ok", "recovered", "lost") for r in records)
        assert sum(1 for r in records if r.outcome != "lost") >= 8

    def test_monitor_evicts_and_readmits(self):
        fn, policy, profile = small_fn()
        victim = fn.invokers[0]

        def body():
            fn.faults.apply([MachineCrash(
                0.0, victim.machine.machine_id, down_for=5.0 * params.SEC)])
            # Two missed beats (~2s in) evict; check well before the 5 s
            # restart, then wait past it for the re-admitting ping.
            yield fn.env.timeout(4.0 * params.SEC)
            evicted = not victim.admitting
            yield fn.env.timeout(5.0 * params.SEC)
            return evicted, victim.admitting

        evicted, readmitted = fn.env.run(fn.env.process(body()))
        fn.stop_fault_daemons()
        assert evicted and readmitted
        assert fn.recovery.mttr() is not None
        assert fn.counters["invokers_evicted"] == 1
        assert fn.counters["invokers_readmitted"] == 1

    def test_seed_reelected_when_host_crashes(self):
        fn, policy, profile = small_fn()
        seed_invoker, _, _ = policy.seeds[profile.name]

        def body():
            fn.faults.crash_machine(seed_invoker.machine.machine_id)
            # The crash hook spawned a re-election; let it run.
            yield fn.env.timeout(2.0 * params.SEC)
            record = yield from fn.invoke(profile.name)
            return record

        record = fn.env.run(fn.env.process(body()))
        fn.stop_fault_daemons()
        assert record.outcome in ("ok", "recovered")
        assert policy.counters["seed_reelections"] == 1
        new_invoker, _, _ = policy.seeds[profile.name]
        assert new_invoker.index != seed_invoker.index

    def test_fail_free_path_untouched(self):
        """With no injector, invoke keeps the seed's exact event sequence."""
        policy = MitosisPolicy()
        fn = FnCluster(policy, num_invokers=2, num_machines=5,
                       num_dfs_osds=2, seed=0)
        profile = tc0_profile()

        def setup():
            yield from fn.register(profile)

        fn.env.run(fn.env.process(setup()))

        def body():
            record = yield from fn.invoke(profile.name)
            return record

        record = fn.env.run(fn.env.process(body()))
        assert record.outcome == "ok"
        assert record.attempts == 1
        assert fn.counters.as_dict() == {}
