"""Tests for doorbell-batched range paging (§4.1 cost model).

Covers the QP-level batch verbs, demand fault-around, range-coalesced
prefetch, and — the part that makes batching safe to enable — composition
with sharing, coalescing, cgroup limits, hedging, and every fallback.
"""

import pytest

from repro import params
from repro.cluster import Cluster
from repro.containers import ContainerRuntime, hello_world_image
from repro.core import MitosisDeployment
from repro.core.paging import default_batch_pages
from repro.kernel import Kernel
from repro.rdma import RdmaFabric, RpcRuntime
from repro.sim import Environment


def build_rig(batch_pages=0, prefetch_depth=0, num_machines=2):
    env = Environment()
    cluster = Cluster(env, num_machines=num_machines, num_racks=1)
    fabric = RdmaFabric(env, cluster)
    rpc = RpcRuntime(env, fabric)
    kernels = [Kernel(env, m) for m in cluster]
    runtimes = [ContainerRuntime(env, k) for k in kernels]
    deployment = MitosisDeployment(env, cluster, fabric, rpc, runtimes,
                                   prefetch_depth=prefetch_depth,
                                   batch_pages=batch_pages)
    return env, cluster, kernels, runtimes, deployment


def forked_child(env, cluster, kernels, runtimes, deployment,
                 written_pages=0):
    """Cold-start a parent, optionally write pages, fork to machine 1."""
    node0 = deployment.node(cluster.machine(0))
    node1 = deployment.node(cluster.machine(1))

    def body():
        parent = yield from runtimes[0].cold_start(hello_world_image())
        heap = parent.task.address_space.vmas[3]
        for i in range(written_pages):
            yield from kernels[0].write_page(parent.task,
                                             heap.start_vpn + i, "v%d" % i)
        meta = yield from node0.fork_prepare(parent)
        child = yield from node1.fork_resume(meta)
        return parent, meta, child

    parent, meta, child = env.run(env.process(body()))
    heap = parent.task.address_space.vmas[3]
    return parent, meta, child, heap, node0, node1


def run(env, gen):
    return env.run(env.process(gen))


class TestReadBatchVerbs:
    """QP-level doorbell batching: one request packet, per-page payloads."""

    def _rc_pair(self):
        env = Environment()
        cluster = Cluster(env, num_machines=2, num_racks=1)
        fabric = RdmaFabric(env, cluster)
        nic = fabric.nic_of(cluster.machine(0))

        def connect():
            qp = yield from nic.create_rc_qp(cluster.machine(1))
            return qp

        return env, nic, run(env, connect())

    def test_batch_cheaper_than_per_page_reads(self):
        env, nic, qp = self._rc_pair()

        def timed(gen):
            start = env.now
            yield from gen
            return env.now - start

        def eight_singles():
            for _ in range(8):
                yield from qp.read(params.PAGE_SIZE)

        singles = run(env, timed(eight_singles()))
        batch = run(env, timed(qp.read_batch(8, params.PAGE_SIZE)))
        # 7 request/response round trips collapse into WQE-posting costs.
        assert batch < 0.5 * singles

    def test_batch_of_one_costs_exactly_one_read(self):
        env, nic, qp = self._rc_pair()

        def timed(gen):
            start = env.now
            yield from gen
            return env.now - start

        single = run(env, timed(qp.read(params.PAGE_SIZE)))
        batch = run(env, timed(qp.read_batch(1, params.PAGE_SIZE)))
        assert batch == single

    def test_counters_charged_per_page(self):
        env, nic, qp = self._rc_pair()
        run(env, qp.read_batch(8, params.PAGE_SIZE))
        assert nic.counters["rc_read"] == 8
        assert nic.counters["rc_read_batches"] == 1

    def test_empty_batch_rejected(self):
        env, nic, qp = self._rc_pair()
        with pytest.raises(ValueError):
            next(qp.read_batch(0, params.PAGE_SIZE))


class TestFaultAround:
    def test_demand_fault_installs_whole_run(self):
        env, cluster, kernels, runtimes, deployment = build_rig(batch_pages=8)
        parent, meta, child, heap, node0, node1 = forked_child(
            env, cluster, kernels, runtimes, deployment, written_pages=10)

        def body():
            content = yield from kernels[1].touch(child.task, heap.start_vpn)
            table = child.task.address_space.page_table
            present = [table.entry(heap.start_vpn + i).present
                       for i in range(10)]
            return content, present

        content, present = run(env, body())
        assert content == "v0"
        assert present == [True] * 8 + [False, False]
        counters = node1.pager.counters.as_dict()
        assert counters["batched_reads"] == 1
        assert counters["batched_read_pages"] == 8
        assert counters["fault_around_pages"] == 7
        assert counters["rdma_reads"] == 8
        assert node1.nic.counters["dc_read_batches"] == 1

    def test_faulted_around_pages_have_correct_content(self):
        env, cluster, kernels, runtimes, deployment = build_rig(batch_pages=8)
        parent, meta, child, heap, node0, node1 = forked_child(
            env, cluster, kernels, runtimes, deployment, written_pages=8)

        def body():
            yield from kernels[1].touch(child.task, heap.start_vpn)
            contents = []
            for i in range(8):
                contents.append((yield from kernels[1].touch(
                    child.task, heap.start_vpn + i)))
            return contents

        assert run(env, body()) == ["v%d" % i for i in range(8)]

    def test_faulted_around_pages_cost_no_extra_fault_time(self):
        env, cluster, kernels, runtimes, deployment = build_rig(batch_pages=8)
        parent, meta, child, heap, node0, node1 = forked_child(
            env, cluster, kernels, runtimes, deployment)

        def body():
            yield from kernels[1].touch(child.task, heap.start_vpn)
            start = env.now
            yield from kernels[1].touch(child.task, heap.start_vpn + 3)
            return env.now - start

        assert run(env, body()) == 0.0

    def test_batched_scan_faster_in_simulated_time(self):
        def scan_time(batch_pages):
            env, cluster, kernels, runtimes, deployment = build_rig(
                batch_pages=batch_pages)
            parent, meta, child, heap, node0, node1 = forked_child(
                env, cluster, kernels, runtimes, deployment)

            def body():
                start = env.now
                for i in range(32):
                    yield from kernels[1].touch(child.task,
                                                heap.start_vpn + i)
                return env.now - start

            return run(env, body())

        assert scan_time(8) < 0.5 * scan_time(0)

    def test_run_stops_at_present_page(self):
        env, cluster, kernels, runtimes, deployment = build_rig(batch_pages=8)
        parent, meta, child, heap, node0, node1 = forked_child(
            env, cluster, kernels, runtimes, deployment)

        def body():
            # Install vpn+2 first (unbatched), then fault the range start:
            # the run must stop short of the already-present page.
            node1.pager.batch_pages = 0
            yield from kernels[1].touch(child.task, heap.start_vpn + 2)
            node1.pager.batch_pages = 8
            yield from kernels[1].touch(child.task, heap.start_vpn)
            return node1.pager.counters.as_dict()

        counters = run(env, body())
        assert counters["batched_read_pages"] == 2  # vpn and vpn+1 only
        assert counters["fault_around_pages"] == 1

    def test_disabled_batching_never_batches(self):
        env, cluster, kernels, runtimes, deployment = build_rig(batch_pages=0)
        parent, meta, child, heap, node0, node1 = forked_child(
            env, cluster, kernels, runtimes, deployment)

        def body():
            for i in range(8):
                yield from kernels[1].touch(child.task, heap.start_vpn + i)
            return node1.pager.counters.as_dict()

        counters = run(env, body())
        assert counters.get("batched_reads", 0) == 0
        assert counters.get("fault_around_pages", 0) == 0
        assert counters["rdma_reads"] == 8

    def test_batch_pages_one_identical_to_disabled(self):
        def scan(batch_pages):
            env, cluster, kernels, runtimes, deployment = build_rig(
                batch_pages=batch_pages)
            parent, meta, child, heap, node0, node1 = forked_child(
                env, cluster, kernels, runtimes, deployment)

            def body():
                start = env.now
                for i in range(8):
                    yield from kernels[1].touch(child.task,
                                                heap.start_vpn + i)
                return env.now - start

            return run(env, body()), node1.pager.counters.as_dict()

        time_off, counters_off = scan(0)
        time_one, counters_one = scan(1)
        assert time_off == time_one
        assert counters_off == counters_one

    def test_env_var_enables_batching(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAGER_BATCH", "4")
        assert default_batch_pages() == 4
        env, cluster, kernels, runtimes, deployment = build_rig(
            batch_pages=None)
        node1 = deployment.node(cluster.machine(1))
        assert node1.pager.batch_pages == 4

    def test_env_var_unset_defaults_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAGER_BATCH", raising=False)
        assert default_batch_pages() == params.PAGER_BATCH_PAGES_DEFAULT == 0


class TestRangeComposition:
    """Sharing, coalescing, limits, hedging, fallbacks — all compose."""

    def test_second_child_shares_batched_pages(self):
        env, cluster, kernels, runtimes, deployment = build_rig(batch_pages=8)
        parent, meta, child, heap, node0, node1 = forked_child(
            env, cluster, kernels, runtimes, deployment)

        def body():
            sibling = yield from node1.fork_resume(meta)
            yield from kernels[1].touch(child.task, heap.start_vpn)
            for i in range(8):
                yield from kernels[1].touch(sibling.task, heap.start_vpn + i)
            return node1.pager.counters.as_dict()

        counters = run(env, body())
        assert counters["batched_reads"] == 1  # the sibling refetched nothing
        assert counters["shared_hits"] == 8

    def test_concurrent_fault_coalesces_onto_inflight_range(self):
        env, cluster, kernels, runtimes, deployment = build_rig(batch_pages=8)
        parent, meta, child, heap, node0, node1 = forked_child(
            env, cluster, kernels, runtimes, deployment)

        def fault(vpn):
            yield from kernels[1].touch(child.task, vpn)

        def body():
            first = env.process(fault(heap.start_vpn))
            second = env.process(fault(heap.start_vpn + 3))
            yield first
            yield second
            return node1.pager.counters.as_dict()

        counters = run(env, body())
        assert counters["batched_reads"] == 1
        assert counters["coalesced_faults"] >= 1
        # The coalesced faulter reused the arriving frame, no second wire op.
        assert counters["rdma_reads"] == 8

    def test_cgroup_headroom_caps_fault_around(self):
        from repro.kernel import OomKilled

        env, cluster, kernels, runtimes, deployment = build_rig(batch_pages=8)
        parent, meta, child, heap, node0, node1 = forked_child(
            env, cluster, kernels, runtimes, deployment)

        def body():
            space = child.task.address_space
            child.task.cgroup.assign(
                memory_limit=space.resident_bytes + 3 * params.PAGE_SIZE)
            yield from kernels[1].touch(child.task, heap.start_vpn)
            return child.task.state, node1.pager.counters.as_dict()

        state, counters = run(env, body())
        # Fault-around must not OOM a task the demand fault alone wouldn't:
        # the run was clipped to the remaining headroom.
        assert state != "oom-killed"
        assert counters["batched_read_pages"] == 3

    def test_hedging_composes_with_ranges(self):
        env, cluster, kernels, runtimes, deployment = build_rig(batch_pages=8)
        parent, meta, child, heap, node0, node1 = forked_child(
            env, cluster, kernels, runtimes, deployment)
        node1.pager.enable_resilience()

        def body():
            yield from kernels[1].touch(child.task, heap.start_vpn)
            table = child.task.address_space.page_table
            return [table.entry(heap.start_vpn + i).present
                    for i in range(8)]

        assert run(env, body()) == [True] * 8
        counters = node1.pager.counters.as_dict()
        assert counters["batched_reads"] == 1
        assert len(node1.pager.resilience.hedge)  # per-page latency fed

    def test_revoked_target_degrades_to_per_page_fallback(self):
        env, cluster, kernels, runtimes, deployment = build_rig(batch_pages=8)
        parent, meta, child, heap, node0, node1 = forked_child(
            env, cluster, kernels, runtimes, deployment, written_pages=8)

        def body():
            for target in list(node0.nic.dc_targets.values()):
                node0.nic.destroy_target(target)
            yield from kernels[1].touch(child.task, heap.start_vpn)
            contents = []
            for i in range(8):
                contents.append((yield from kernels[1].touch(
                    child.task, heap.start_vpn + i)))
            return contents

        assert run(env, body()) == ["v%d" % i for i in range(8)]
        counters = node1.pager.counters.as_dict()
        assert counters["batch_fallbacks"] == 1
        assert counters.get("batched_reads", 0) == 0
        # Per-page completion re-detected the precise revocation per page.
        assert counters["revocation_fallbacks"] == 8
        assert counters["fallback_rpcs"] == 8

    def test_total_reclaim_still_correct_with_batching(self):
        env, cluster, kernels, runtimes, deployment = build_rig(batch_pages=8)
        parent, meta, child, heap, node0, node1 = forked_child(
            env, cluster, kernels, runtimes, deployment, written_pages=6)

        def body():
            _, shadow = node0.service.lookup(meta.handler_id, meta.auth_key)
            all_vpns = list(shadow.address_space.page_table.present_vpns())
            yield from kernels[0].reclaim(shadow, all_vpns)
            contents = []
            for i in range(6):
                contents.append((yield from kernels[1].touch(
                    child.task, heap.start_vpn + i)))
            return contents

        assert run(env, body()) == ["v%d" % i for i in range(6)]
        counters = node1.pager.counters.as_dict()
        assert counters.get("rdma_reads", 0) == 0


class TestRangePrefetch:
    def test_prefetch_window_rides_ranges(self):
        env, cluster, kernels, runtimes, deployment = build_rig(
            batch_pages=2, prefetch_depth=6)
        parent, meta, child, heap, node0, node1 = forked_child(
            env, cluster, kernels, runtimes, deployment)

        def body():
            yield from kernels[1].touch(child.task, heap.start_vpn)
            yield env.timeout(1000.0)  # drain the async window
            table = child.task.address_space.page_table
            return [table.entry(heap.start_vpn + i).present
                    for i in range(8)]

        present = run(env, body())
        # Demand fault pulled [vpn, vpn+1]; the window covered the rest.
        assert all(present[:7])
        counters = node1.pager.counters.as_dict()
        assert counters["prefetched_pages"] >= 4
        assert counters["batched_reads"] >= 2

    def test_prefetched_range_content_correct(self):
        env, cluster, kernels, runtimes, deployment = build_rig(
            batch_pages=4, prefetch_depth=4)
        parent, meta, child, heap, node0, node1 = forked_child(
            env, cluster, kernels, runtimes, deployment, written_pages=6)

        def body():
            yield from kernels[1].touch(child.task, heap.start_vpn)
            yield env.timeout(1000.0)
            contents = []
            for i in range(6):
                contents.append((yield from kernels[1].touch(
                    child.task, heap.start_vpn + i)))
            return contents

        assert run(env, body()) == ["v%d" % i for i in range(6)]
