"""Unit tests for the kernel VM substrate."""

import pytest

from repro import params
from repro.cluster import Cluster
from repro.kernel import (
    Kernel,
    KernelError,
    NamespaceSet,
    SegmentationFault,
    VmaKind,
)
from repro.sim import Environment


@pytest.fixture
def rig():
    env = Environment()
    cluster = Cluster(env, num_machines=2, num_racks=1)
    kernels = [Kernel(env, m) for m in cluster]
    return env, cluster, kernels


def run(env, gen):
    return env.run(env.process(gen))


def make_task(kernel, heap_pages=8, code_pages=4):
    task = kernel.create_task("t")
    task.address_space.add_vma(code_pages, VmaKind.CODE, writable=False)
    task.address_space.add_vma(heap_pages, VmaKind.HEAP)
    return task


class TestFrames:
    def test_alloc_charges_dram(self, rig):
        env, cluster, (k0, _) = rig
        before = cluster.machine(0).memory.used
        frame = k0.frames.alloc()
        assert cluster.machine(0).memory.used == before + params.PAGE_SIZE
        k0.frames.unref(frame)
        assert cluster.machine(0).memory.used == before

    def test_refcounted_sharing(self, rig):
        env, _, (k0, _) = rig
        frame = k0.frames.alloc(content="x")
        k0.frames.ref(frame)
        k0.frames.unref(frame)
        assert frame.live
        k0.frames.unref(frame)
        assert not frame.live

    def test_double_free_rejected(self, rig):
        env, _, (k0, _) = rig
        frame = k0.frames.alloc()
        k0.frames.unref(frame)
        with pytest.raises(KernelError):
            k0.frames.unref(frame)


class TestAddressSpace:
    def test_vma_lookup(self, rig):
        env, _, (k0, _) = rig
        task = make_task(k0)
        code = task.address_space.vmas[0]
        assert task.address_space.find_vma(code.start_vpn) is code
        assert task.address_space.find_vma(code.end_vpn - 1) is code
        assert task.address_space.find_vma(10**9) is None

    def test_overlapping_vma_rejected(self, rig):
        env, _, (k0, _) = rig
        task = make_task(k0)
        code = task.address_space.vmas[0]
        with pytest.raises(KernelError):
            task.address_space.add_vma(2, VmaKind.ANON,
                                       start_vpn=code.start_vpn + 1)

    def test_grow_extends_vma(self, rig):
        env, _, (k0, _) = rig
        task = make_task(k0)
        heap = task.address_space.vmas[1]
        end = heap.end_vpn
        task.address_space.grow(heap, 4)
        assert heap.end_vpn == end + 4

    def test_descriptor_nbytes_scales_with_vmas(self, rig):
        env, _, (k0, _) = rig
        small = make_task(k0)
        big = make_task(k0)
        big.address_space.add_vma(100, VmaKind.ANON)
        assert (big.address_space.descriptor_nbytes()
                > small.address_space.descriptor_nbytes())


class TestFaults:
    def test_demand_zero_fill(self, rig):
        env, _, (k0, _) = rig
        task = make_task(k0)
        heap = task.address_space.vmas[1]

        def body():
            content = yield from k0.touch(task, heap.start_vpn)
            return content

        content = run(env, body())
        assert "zero" in content
        assert k0.counters["fault_demand_zero"] == 1

    def test_second_touch_is_free(self, rig):
        env, _, (k0, _) = rig
        task = make_task(k0)
        heap = task.address_space.vmas[1]

        def body():
            yield from k0.touch(task, heap.start_vpn)
            start = env.now
            yield from k0.touch(task, heap.start_vpn)
            return env.now - start

        assert run(env, body()) == 0.0

    def test_unmapped_access_segfaults(self, rig):
        env, _, (k0, _) = rig
        task = make_task(k0)

        def body():
            with pytest.raises(SegmentationFault):
                yield from k0.touch(task, 10**9)
            return True

        assert run(env, body())

    def test_write_to_readonly_vma_segfaults(self, rig):
        env, _, (k0, _) = rig
        task = make_task(k0)
        code = task.address_space.vmas[0]

        def body():
            with pytest.raises(SegmentationFault):
                yield from k0.touch(task, code.start_vpn, write=True)
            return True

        assert run(env, body())

    def test_warm_populates_everything(self, rig):
        env, _, (k0, _) = rig
        task = make_task(k0, heap_pages=8, code_pages=4)
        k0.warm(task)
        assert task.address_space.resident_pages == 12

    def test_write_page_changes_content(self, rig):
        env, _, (k0, _) = rig
        task = make_task(k0)
        heap = task.address_space.vmas[1]

        def body():
            yield from k0.write_page(task, heap.start_vpn, "payload-7")
            content = yield from k0.touch(task, heap.start_vpn)
            return content

        assert run(env, body()) == "payload-7"


class TestLocalFork:
    def test_child_shares_then_copies(self, rig):
        env, _, (k0, _) = rig
        parent = make_task(k0)
        k0.warm(parent)
        heap = parent.address_space.vmas[1]

        def body():
            child = yield from k0.fork_local(parent)
            ppte = parent.address_space.page_table.entry(heap.start_vpn)
            cpte = child.address_space.page_table.entry(heap.start_vpn)
            shared = cpte.frame is ppte.frame
            yield from k0.touch(child, heap.start_vpn, write=True)
            cpte = child.address_space.page_table.entry(heap.start_vpn)
            return shared, cpte.frame is ppte.frame, ppte.frame.refcount

        shared, still_shared, parent_rc = run(env, body())
        assert shared
        assert not still_shared
        assert parent_rc == 1

    def test_child_sees_parent_content(self, rig):
        env, _, (k0, _) = rig
        parent = make_task(k0)
        heap = parent.address_space.vmas[1]

        def body():
            yield from k0.write_page(parent, heap.start_vpn, "from-parent")
            child = yield from k0.fork_local(parent)
            content = yield from k0.touch(child, heap.start_vpn)
            return content

        assert run(env, body()) == "from-parent"

    def test_parent_write_after_fork_isolated(self, rig):
        env, _, (k0, _) = rig
        parent = make_task(k0)
        heap = parent.address_space.vmas[1]

        def body():
            yield from k0.write_page(parent, heap.start_vpn, "v1")
            child = yield from k0.fork_local(parent)
            yield from k0.write_page(parent, heap.start_vpn, "v2")
            child_sees = yield from k0.touch(child, heap.start_vpn)
            parent_sees = yield from k0.touch(parent, heap.start_vpn)
            return child_sees, parent_sees

        child_sees, parent_sees = run(env, body())
        assert child_sees == "v1"
        assert parent_sees == "v2"

    def test_fork_costs_about_a_millisecond(self, rig):
        env, _, (k0, _) = rig
        parent = make_task(k0)
        k0.warm(parent)

        def body():
            start = env.now
            yield from k0.fork_local(parent)
            return env.now - start

        elapsed = run(env, body())
        assert 0.2 * params.MS < elapsed < 2 * params.MS

    def test_fork_clones_registers_and_fds(self, rig):
        env, _, (k0, _) = rig
        parent = make_task(k0)
        parent.registers.pc = 0xDEAD
        parent.open_fd("socket", "s3://bucket")

        def body():
            child = yield from k0.fork_local(parent)
            return child

        child = run(env, body())
        assert child.registers.pc == 0xDEAD
        assert child.registers is not parent.registers
        assert len(child.fd_table) == 1
        assert list(child.fd_table.values())[0].path == "s3://bucket"


class TestSwapAndReclaim:
    def test_reclaim_then_swap_in_roundtrip(self, rig):
        env, _, (k0, _) = rig
        task = make_task(k0)
        heap = task.address_space.vmas[1]

        def body():
            yield from k0.write_page(task, heap.start_vpn, "precious")
            count = yield from k0.reclaim(task, [heap.start_vpn])
            pte = task.address_space.page_table.entry(heap.start_vpn)
            gone = not pte.present
            content = yield from k0.touch(task, heap.start_vpn)
            return count, gone, content

        count, gone, content = run(env, body())
        assert count == 1
        assert gone
        assert content == "precious"
        assert k0.counters["fault_swap_in"] == 1

    def test_reclaim_hooks_fire_before_free(self, rig):
        env, _, (k0, _) = rig
        task = make_task(k0)
        heap = task.address_space.vmas[1]
        seen = []
        k0.reclaim_hooks.append(
            lambda t, vma, vpn, pte: seen.append((vpn, pte.frame.live)))

        def body():
            yield from k0.touch(task, heap.start_vpn)
            yield from k0.reclaim(task, [heap.start_vpn])
            return seen

        assert run(env, body()) == [(heap.start_vpn, True)]

    def test_reclaim_skips_absent_pages(self, rig):
        env, _, (k0, _) = rig
        task = make_task(k0)
        heap = task.address_space.vmas[1]

        def body():
            return (yield from k0.reclaim(task, [heap.start_vpn]))

        assert run(env, body()) == 0

    def test_release_task_frees_memory(self, rig):
        env, cluster, (k0, _) = rig
        task = make_task(k0)
        k0.warm(task)
        used = cluster.machine(0).memory.used
        assert used > 0
        task.exit()
        assert cluster.machine(0).memory.used == 0
        assert task.pid not in k0.tasks


class TestNamespaces:
    def test_defaults_all_on(self):
        ns = NamespaceSet()
        assert all(ns.flags.values())

    def test_clone_is_equal_but_distinct(self):
        ns = NamespaceSet(net=False)
        twin = ns.clone()
        assert twin == ns
        twin.flags["net"] = True
        assert twin != ns

    def test_unknown_flag_rejected(self):
        with pytest.raises(ValueError):
            NamespaceSet(bogus=True)


class TestCgroupPool:
    def test_pooled_take_instant(self, rig):
        env, _, (k0, _) = rig

        def body():
            start = env.now
            cgroup = yield from k0.cgroup_pool.take()
            return env.now - start, cgroup

        elapsed, cgroup = run(env, body())
        assert elapsed == 0.0
        assert cgroup is not None

    def test_exhausted_pool_pays_creation(self, rig):
        env, _, (k0, _) = rig
        k0.cgroup_pool._free.clear()

        def body():
            start = env.now
            yield from k0.cgroup_pool.take()
            return env.now - start

        assert run(env, body()) == pytest.approx(
            params.CGROUP_POOL_REFILL_LATENCY)

    def test_give_back_recycles(self, rig):
        env, _, (k0, _) = rig

        def body():
            cgroup = yield from k0.cgroup_pool.take()
            available = k0.cgroup_pool.available
            k0.cgroup_pool.give_back(cgroup)
            return available, k0.cgroup_pool.available

        before, after = run(env, body())
        assert after == before + 1
