"""Tests for the DAG scheduler (§5): fork-on-single-edge composition."""

import pytest

from repro.fn import Dag, DagScheduler, FnCluster, MitosisPolicy
from repro.workloads import tc0_profile


def make_cluster():
    return FnCluster(MitosisPolicy(), num_invokers=4, num_machines=7,
                     num_dfs_osds=2, seed=3)


def run(fn, gen):
    return fn.env.run(fn.env.process(gen))


class TestDagStructure:
    def test_topological_order_respects_edges(self):
        dag = Dag()
        profile = tc0_profile()
        for name in "abcd":
            dag.add_node(name, profile)
        dag.add_edge("a", "b")
        dag.add_edge("b", "d")
        dag.add_edge("a", "c")
        dag.add_edge("c", "d")
        order = dag.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_cycle_detected(self):
        dag = Dag()
        profile = tc0_profile()
        dag.add_node("x", profile).add_node("y", profile)
        dag.add_edge("x", "y")
        dag.add_edge("y", "x")
        with pytest.raises(ValueError):
            dag.topological_order()

    def test_duplicate_node_rejected(self):
        dag = Dag()
        dag.add_node("x", tc0_profile())
        with pytest.raises(ValueError):
            dag.add_node("x", tc0_profile())

    def test_unknown_edge_endpoint_rejected(self):
        dag = Dag()
        dag.add_node("x", tc0_profile())
        with pytest.raises(ValueError):
            dag.add_edge("x", "ghost")


class TestDagExecution:
    def _linear(self, n=3):
        dag = Dag()
        profile = tc0_profile()
        names = [chr(ord("a") + i) for i in range(n)]
        for name in names:
            dag.add_node(name, profile, output_bytes=256 * 1024)
        for src, dst in zip(names, names[1:]):
            dag.add_edge(src, dst)
        return dag, names

    def test_linear_dag_forks_every_edge(self):
        fn = make_cluster()
        scheduler = DagScheduler(fn)
        dag, names = self._linear(3)

        def body():
            yield from fn.register(tc0_profile())
            result = yield from scheduler.run_dag(
                dag, {n: i for i, n in enumerate(names)})
            yield from scheduler.finish_dag(result)
            return result

        result = run(fn, body())
        assert result.start_kinds["a"] == "fresh"
        assert result.start_kinds["b"] == "forked"
        assert result.start_kinds["c"] == "forked"
        assert result.flow_transfers == 0

    def test_fan_in_uses_flow(self):
        fn = make_cluster()
        scheduler = DagScheduler(fn)
        profile = tc0_profile()
        dag = Dag()
        for name in ("left", "right", "join"):
            dag.add_node(name, profile, output_bytes=512 * 1024)
        dag.add_edge("left", "join")
        dag.add_edge("right", "join")

        def body():
            yield from fn.register(profile)
            result = yield from scheduler.run_dag(
                dag, {"left": 0, "right": 1, "join": 2})
            yield from scheduler.finish_dag(result)
            return result

        result = run(fn, body())
        # The join has two in-edges: no fork, both inputs via flow (§5).
        assert result.start_kinds["join"] == "fresh"
        assert result.flow_transfers == 2

    def test_fan_out_forks_both_branches(self):
        fn = make_cluster()
        scheduler = DagScheduler(fn)
        profile = tc0_profile()
        dag = Dag()
        for name in ("root", "left", "right"):
            dag.add_node(name, profile)
        dag.add_edge("root", "left")
        dag.add_edge("root", "right")

        def body():
            yield from fn.register(profile)
            result = yield from scheduler.run_dag(
                dag, {"root": 0, "left": 1, "right": 2})
            yield from scheduler.finish_dag(result)
            return result

        result = run(fn, body())
        # Each branch has one in-edge -> both fork from the root.
        assert result.start_kinds["left"] == "forked"
        assert result.start_kinds["right"] == "forked"

    def test_forked_node_inherits_source_memory(self):
        fn = make_cluster()
        scheduler = DagScheduler(fn)
        profile = tc0_profile()
        dag = Dag()
        dag.add_node("src", profile).add_node("dst", profile)
        dag.add_edge("src", "dst")

        def body():
            yield from fn.register(profile)
            result = yield from scheduler.run_dag(
                dag, {"src": 0, "dst": 1})
            src = result.containers["src"]
            vpn = scheduler.heap_vpn(src, offset=120)
            yield from src.kernel.write_page(src.task, vpn, "src-output")
            # dst was forked *before* this write; re-fork to pick it up:
            # instead verify dst sees pre-fork state written here.
            dst = result.containers["dst"]
            content = yield from dst.kernel.touch(
                dst.task, scheduler.heap_vpn(dst, offset=0))
            yield from scheduler.finish_dag(result)
            return content

        assert run(fn, body()) is not None

    def test_missing_placement_rejected(self):
        fn = make_cluster()
        scheduler = DagScheduler(fn)
        dag = Dag()
        dag.add_node("only", tc0_profile())

        def body():
            yield from fn.register(tc0_profile())
            with pytest.raises(ValueError):
                yield from scheduler.run_dag(dag, {})
            return True

        assert run(fn, body())

    def test_finish_dag_cleans_everything(self):
        fn = make_cluster()
        scheduler = DagScheduler(fn)
        dag, names = self._linear(3)

        def body():
            yield from fn.register(tc0_profile())
            result = yield from scheduler.run_dag(
                dag, {n: i for i, n in enumerate(names)})
            yield from scheduler.finish_dag(result)
            live = sum(len(i.live_containers) for i in fn.invokers)
            node0 = fn.deployment.node(fn.invokers[0].machine)
            return live, len(node0.service)

        live, descriptors = run(fn, body())
        assert live == 1          # just the seed
        assert descriptors == 1   # just the seed's descriptor
