"""Smoke tests for the experiment harnesses (tiny scales, shape checks).

The full assertions live in ``benchmarks/``; these keep the harness code
exercised by ``pytest tests/`` so a refactor cannot silently break them.
"""

import pytest

from repro.experiments import (
    ablations,
    connscale,
    fig1,
    fig2,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    table1,
)
from repro.workloads import functionbench, tc0_profile


class TestSmoke:
    def test_fig1(self):
        report = fig1.run()
        assert len(report.rows) == 2
        assert report.find(function="660323")["max_machines_required"] == 31

    def test_table1(self):
        report = table1.run()
        assert {r["technique"] for r in report.rows} == {
            "Caching", "Fork-based", "C/R", "MITOSIS"}

    def test_fig2_tc0_only(self):
        report = fig2.run(profiles=[tc0_profile()])
        variants = {r["variant"] for r in report.rows}
        assert "remote-rcopy-vanilla" in variants
        assert "+ondemand-dfs" in variants

    def test_fig10_scaling_tiny(self):
        report = fig10.run_scaling(invoker_counts=(1, 2),
                                   requests_per_invoker=10,
                                   methods=("mitosis",))
        one = report.find(method="mitosis", invokers=1)
        two = report.find(method="mitosis", invokers=2)
        assert two["throughput_per_sec"] > 1.5 * one["throughput_per_sec"]

    def test_connscale_tiny(self):
        report, rows = connscale.run(invoker_counts=(2, 4),
                                     forks_per_invoker=6, out_json=None)
        small, big = rows["pooled"]
        assert big["forks_per_sec"] > 1.5 * small["forks_per_sec"]
        u_small, u_big = rows["unpooled"]
        assert u_big["forks_per_sec"] < 1.5 * u_small["forks_per_sec"]
        assert big["pool_hit_pct"] > 50.0

    def test_fig11_memory_tiny(self):
        report = fig11.run_memory(num_invokers=2, burst=6,
                                  methods=("mitosis", "criu-tmpfs"),
                                  cache_instances=2)
        assert report.find(method="mitosis")[
            "provisioned_mb_per_invoker"] < 0.1

    def test_fig12_tiny(self):
        report, runs = fig12.run(methods=("mitosis",), scale=0.003,
                                 num_invokers=2)
        row = report.find(method="mitosis")
        assert row["invocations"] > 50
        assert row["p99_ms"] > row["p50_ms"] * 0.99

    def test_fig13_tiny(self):
        report, cdfs = fig13.run(methods=("mitosis", "fn-cache"),
                                 functions=("TC0",), scale=0.003)
        assert ("TC0", "mitosis") in cdfs
        row = report.find(function="TC0", method="mitosis")
        assert "p99_reduction_vs_fn" in row

    def test_fig14_tiny(self):
        share = fig14.run_data_share(payload_sizes=(1024, 1024 * 1024))
        assert len(share.rows) == 2
        hops = fig14.run_multihop(max_hops=2)
        assert len(hops.rows) == 2
        assert hops.rows[1]["mitosis_cumulative_ms"] > \
            hops.rows[0]["mitosis_cumulative_ms"]

    def test_fig15_tiny(self):
        report = fig15.run_functionbench(
            profiles=[functionbench.float_operation()])
        row = report.rows[0]
        assert row["mitosis_remote_norm"] > 1.0
        factor = fig15.run_factor_analysis(num_invokers=2,
                                           requests_per_invoker=10)
        assert len(factor.rows) == 3

    def test_ablations(self):
        mem = ablations.run_memory_control(container_sizes_mb=(16, 64),
                                           children_counts=(1, 10))
        assert len(mem.rows) == 4
        fetch = ablations.run_descriptor_fetch(payload_extra_kb=(0,),
                                               concurrency=8)
        assert fetch.rows[0]["speedup"] > 1.0

    def test_report_find_raises_on_miss(self):
        report = fig1.run()
        with pytest.raises(KeyError):
            report.find(function="nope")

    def test_report_table_renders_union_of_columns(self):
        report = fig1.run()
        text = report.table()
        assert "fig1" in text
        assert "660323" in text

    def test_main_registry_rejects_unknown(self):
        from repro.experiments.__main__ import main
        assert main(["not-an-experiment"]) == 1

    def test_validate_all_claims_pass(self):
        from repro.experiments import validate
        report = validate.run()
        assert report.failures == []
        grades = {r["grade"] for r in report.rows}
        assert grades <= {"PASS", "WARN"}
