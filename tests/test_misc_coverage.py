"""Coverage for corner branches across subsystems."""

import pytest

from repro import params
from repro.cluster import Cluster
from repro.criu import TmpfsStore
from repro.dfs import CephLikeDfs
from repro.kernel import KernelError
from repro.rdma import RdmaFabric, RpcRuntime
from repro.sim import Environment


def run(env, gen):
    return env.run(env.process(gen))


class TestDfsWithoutClientNic:
    def test_wire_falls_back_when_client_has_no_rnic(self):
        """The paper's load balancers have no RNIC; DFS clients on such
        machines still move data, just without egress accounting."""
        env = Environment()
        cluster = Cluster(env, num_machines=4, num_racks=1)
        # RNICs on machines 0-1 only; 2 is an OSD host, 3 is NIC-less.
        fabric = RdmaFabric(env, cluster, rdma_machines=cluster.machines[:3])
        dfs = CephLikeDfs(env, fabric, osd_machines=[cluster.machine(2)])
        nicless = cluster.machine(3)

        def body():
            yield from dfs.put(nicless, "obj", params.MB)
            nbytes = yield from dfs.get(nicless, "obj")
            return nbytes

        assert run(env, body()) == params.MB

    def test_nic_of_raises_for_nicless_machine(self):
        env = Environment()
        cluster = Cluster(env, num_machines=2, num_racks=1)
        fabric = RdmaFabric(env, cluster, rdma_machines=[cluster.machine(0)])
        with pytest.raises(ValueError):
            fabric.nic_of(cluster.machine(1))


class TestTmpfsStoreEdges:
    def test_get_missing_raises(self):
        env = Environment()
        cluster = Cluster(env, num_machines=1)
        store = TmpfsStore(cluster.machine(0))
        with pytest.raises(KernelError):
            store.get("nope")

    def test_delete_missing_raises(self):
        env = Environment()
        cluster = Cluster(env, num_machines=1)
        store = TmpfsStore(cluster.machine(0))
        with pytest.raises(KernelError):
            store.delete("nope")


class TestRpcCustomWorkers:
    def test_endpoint_worker_count_honored(self):
        env = Environment()
        cluster = Cluster(env, num_machines=2, num_racks=1)
        fabric = RdmaFabric(env, cluster)
        rpc = RpcRuntime(env, fabric)
        target = cluster.machine(1)
        endpoint = rpc.endpoint(target, workers=4)
        finish = []

        def handler(args):
            yield env.timeout(100.0)
            return None, 8

        endpoint.register("slow", handler)

        def caller():
            yield from rpc.call(cluster.machine(0), target, "slow", {})
            finish.append(env.now)

        for _ in range(4):
            env.process(caller())
        env.run()
        # Four workers: all four calls finish in one wave.
        assert max(finish) - min(finish) < 50.0


class TestExecutionWithPayloadTouches:
    def test_extra_touch_vpns_counted(self):
        from repro.containers import ContainerRuntime, hello_world_image
        from repro.kernel import Kernel, VmaKind
        from repro.workloads import execute, tc0_profile

        env = Environment()
        cluster = Cluster(env, num_machines=1)
        kernel = Kernel(env, cluster.machine(0))
        runtime = ContainerRuntime(env, kernel)
        profile = tc0_profile()

        def body():
            container = yield from runtime.cold_start(profile.image)
            extra_vma = container.task.address_space.add_vma(
                4, VmaKind.ANON)
            base = yield from execute(env, container, profile)
            with_extra = yield from execute(
                env, container, profile,
                extra_touch_vpns=list(extra_vma.vpns()))
            return base.pages_touched, with_extra.pages_touched

        base, with_extra = run(env, body())
        assert with_extra == base + 4


class TestReportFormatting:
    def test_none_and_string_cells_render(self):
        from repro.experiments.report import ExperimentReport
        report = ExperimentReport("x", "demo")
        report.add(a=None, b="text", c=1.23456)
        text = report.table()
        assert "None" in text
        assert "text" in text
        assert "1.235" in text

    def test_empty_report_renders(self):
        from repro.experiments.report import ExperimentReport
        assert "(no rows)" in ExperimentReport("x", "demo").table()


class TestAnalyticCrossCheck:
    def test_erlang_c_sanity(self):
        from repro.experiments.analytic import erlang_c
        # Single server M/M/1: P(wait) = rho.
        assert erlang_c(0.5, 1.0, 1) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            erlang_c(2.0, 1.0, 1)  # unstable
        with pytest.raises(ValueError):
            erlang_c(0.5, 1.0, 0)

    def test_kernel_matches_erlang_c(self):
        from repro.experiments import analytic
        report = analytic.run(loads=(0.6, 0.8), jobs=20000)
        for row in report.rows:
            assert row["relative_error"] < 0.15

    def test_wait_grows_with_utilization(self):
        from repro.experiments.analytic import mmc_mean_wait
        low = mmc_mean_wait(0.3 * 6 / 10_000, 10_000, 6)
        high = mmc_mean_wait(0.8 * 6 / 10_000, 10_000, 6)
        assert high > 10 * low
