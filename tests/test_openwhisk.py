"""Tests for the OpenWhisk-style framework and its MITOSIS integration."""

import pytest

from repro import params
from repro.openwhisk import OpenWhiskCluster
from repro.openwhisk.actions import DEFAULT_INIT_LATENCY
from repro.workloads import tc0_profile


def make(mode, **kwargs):
    defaults = dict(num_invokers=2, num_machines=4, seed=1)
    defaults.update(kwargs)
    return OpenWhiskCluster(mode=mode, **defaults)


def run(ow, gen):
    return ow.env.run(ow.env.process(gen))


class TestVanillaOpenWhisk:
    def test_first_activation_uses_prewarm_plus_init(self):
        ow = make("vanilla")

        def body():
            yield from ow.register(tc0_profile())
            return (yield from ow.invoke("TC0"))

        activation = run(ow, body())
        assert activation.start_kind == "prewarm-init"
        assert activation.latency > DEFAULT_INIT_LATENCY

    def test_second_activation_is_warm(self):
        ow = make("vanilla")

        def body():
            yield from ow.register(tc0_profile())
            first = yield from ow.invoke("TC0")
            second = yield from ow.invoke("TC0")
            return first, second

        first, second = run(ow, body())
        assert second.start_kind == "warm"
        assert second.latency < first.latency / 5

    def test_stemcell_exhaustion_goes_cold(self):
        ow = make("vanilla", stemcells=1)

        def body():
            yield from ow.register(tc0_profile())
            procs = [ow.submit("TC0") for _ in range(6)]
            for p in procs:
                yield p

        run(ow, body())
        kinds = {a.start_kind for a in ow.activations}
        assert "cold-init" in kinds or "warm" in kinds  # pool drained

    def test_worker_loop_bounds_concurrency(self):
        ow = make("vanilla", invoker_concurrency=1, num_invokers=1,
                  num_machines=3)

        def body():
            yield from ow.register(tc0_profile())
            procs = [ow.submit("TC0") for _ in range(3)]
            for p in procs:
                yield p

        run(ow, body())
        # With one worker, activations run strictly one after another.
        spans = sorted((a.started_at, a.finished_at)
                       for a in ow.activations)
        for (s1, f1), (s2, f2) in zip(spans, spans[1:]):
            assert s2 >= f1

    def test_unknown_action_rejected(self):
        ow = make("vanilla")

        def body():
            with pytest.raises(KeyError):
                yield from ow.invoke("ghost")
            return True

        assert run(ow, body())

    def test_duplicate_registration_rejected(self):
        ow = make("vanilla")

        def body():
            yield from ow.register(tc0_profile())
            with pytest.raises(ValueError):
                yield from ow.register(tc0_profile())
            return True

        assert run(ow, body())

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            make("faas-magic")


class TestMitosisOpenWhisk:
    def test_miss_path_is_remote_fork_and_skips_init(self):
        ow = make("mitosis")

        def body():
            yield from ow.register(tc0_profile())
            return (yield from ow.invoke("TC0"))

        activation = run(ow, body())
        assert activation.start_kind == "mitosis"
        # No /init on the activation path: the fork inherits it.
        assert activation.wait_time < DEFAULT_INIT_LATENCY

    def test_mitosis_beats_vanilla_on_cold_path(self):
        vanilla = make("vanilla")
        mitosis = make("mitosis")

        def first_activation(ow):
            def body():
                yield from ow.register(tc0_profile())
                return (yield from ow.invoke("TC0"))
            return run(ow, body())

        v = first_activation(vanilla)
        m = first_activation(mitosis)
        assert m.latency < v.latency / 2

    def test_seed_planted_once_per_action(self):
        ow = make("mitosis")

        def body():
            yield from ow.register(tc0_profile())
            procs = [ow.submit("TC0") for _ in range(5)]
            for p in procs:
                yield p

        run(ow, body())
        assert len(ow.seeds) == 1
        seed_invoker, seed, meta = ow.seeds["TC0"]
        assert seed.state == "running"

    def test_warm_reuse_still_wins_over_fork(self):
        ow = make("mitosis")

        def body():
            yield from ow.register(tc0_profile())
            first = yield from ow.invoke("TC0")
            second = yield from ow.invoke("TC0")
            return first, second

        first, second = run(ow, body())
        assert first.start_kind == "mitosis"
        assert second.start_kind == "warm"
        assert second.latency < first.latency

    def test_burst_spreads_over_invokers_without_cold_inits(self):
        ow = make("mitosis", num_invokers=3, num_machines=6)

        def body():
            yield from ow.register(tc0_profile())
            procs = [ow.submit("TC0") for _ in range(24)]
            for p in procs:
                yield p

        run(ow, body())
        kinds = {a.start_kind for a in ow.activations}
        assert kinds <= {"mitosis", "warm"}
        assert "cold-init" not in kinds and "prewarm-init" not in kinds
