"""Seed-lineage fault-tolerance tests (``repro.lineage``).

Covers the full ladder: replication is byte-identical when off, replicas
fully catch up when on, a killed primary is replaced by a promoted
replica (orphaned children failing over mid-fork), a *flapped* primary is
generation-fenced on re-admission, and the WAL rebuilds the registry
exactly.  The Hypothesis property at the bottom drives arbitrary bounded
crash/flap schedules and holds the two safety invariants: no invocation
is both completed and lost, and no two holders ever lease one descriptor
at different generations.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import sanitizers
from repro.experiments.faults import seed_kill_burst
from repro.faults import MachineCrash, NicFlap
from repro.fn import FnCluster, MitosisPolicy
from repro.lineage import default_seed_replicas
from repro.lineage.errors import StaleGeneration
from repro.lineage.registry import LineageRegistry
from repro.workloads import tc0_profile


def build_cluster(replicas, seed=0, num_invokers=4):
    policy = MitosisPolicy(durable_seed=True)
    fn = FnCluster(policy, num_invokers=num_invokers,
                   num_machines=num_invokers + 3, num_dfs_osds=2, seed=seed)
    fn.enable_faults()
    if replicas > 0:
        fn.enable_lineage(replicas=replicas)
    fn.env.run(fn.env.process(fn.register(tc0_profile())))
    return fn, policy


def run_burst(fn, count, spacing=2_000.0):
    procs = []

    def driver():
        for _ in range(count):
            procs.append(fn.submit("TC0"))
            yield fn.env.timeout(spacing)
        for proc in procs:
            yield proc

    fn.env.run(fn.env.process(driver()))
    fn.stop_fault_daemons()
    fn.env.run()
    return list(fn.records)


def services_of(fn):
    return [node.service for node in fn.deployment.nodes()]


def fingerprint(fn):
    counters = [node.pager.counters.as_dict()
                for node in fn.deployment.nodes()]
    return fn.env.now, fn.env.events_processed, counters


class TestOffPathByteIdentity:
    def test_replicas_zero_is_event_identical(self, monkeypatch):
        """``REPRO_SEED_REPLICAS=0`` must be indistinguishable from the
        lineage layer not existing: same clock, same event count, same
        pager counters, and no lineage runtime installed."""
        monkeypatch.delenv("REPRO_SEED_REPLICAS", raising=False)
        fn_off, _ = build_cluster(0)
        baseline = fingerprint(fn_off), run_burst(fn_off, 20)
        assert fn_off.lineage is None

        monkeypatch.setenv("REPRO_SEED_REPLICAS", "0")
        fn_env, _ = build_cluster(0)
        assert default_seed_replicas() == 0
        assert fn_env.enable_lineage() is None
        assert fn_env.lineage is None
        explicit = fingerprint(fn_env), run_burst(fn_env, 20)

        assert fingerprint(fn_off) == fingerprint(fn_env)
        assert [r.outcome for r in baseline[1]] == [
            r.outcome for r in explicit[1]]

    def test_env_knob_arms_replication(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED_REPLICAS", "2")
        assert default_seed_replicas() == 2
        fn, _ = build_cluster(0)  # build_cluster skips explicit arming
        assert fn.lineage is not None  # enable_faults picked up the env
        assert fn.lineage.replicas == 2
        run_burst(fn, 2)


class TestReplication:
    def test_replicas_catch_up_and_audit_clean(self):
        fn, _policy = build_cluster(2)
        records = run_burst(fn, 12)
        assert all(r.outcome == "ok" for r in records)
        registry = fn.lineage.registry
        assert registry.names() == ["TC0"]
        replicas = registry.replicas("TC0")
        assert len(replicas) == 2
        for replica in replicas.values():
            assert replica["handler_id"] is not None
            assert replica["copy_epoch"] == registry.primary_epoch("TC0")
        assert len(registry.holder_generations("TC0")) == 1
        assert fn.lineage.counters["replicas_grown"] == 2
        assert fn.lineage.counters["pages_replicated"] > 0
        sanitizers.check_lineage(fn.lineage, services=services_of(fn))
        sanitizers.check_rig(fn)

    def test_replica_placement_avoids_primary(self):
        fn, _policy = build_cluster(2)
        run_burst(fn, 4)
        registry = fn.lineage.registry
        primary = registry.placement("TC0")["invoker"]
        assert primary not in registry.replicas("TC0")


class TestPromotionAndFencing:
    def test_crash_promotes_replica_and_rescues_children(self):
        fn, policy, records = seed_kill_burst(2, burst=20, seed=0)
        assert sum(1 for r in records if r.outcome == "lost") == 0
        assert all(r.start_kind == "mitosis" for r in records)
        assert fn.lineage.counters["promotions"] >= 1
        assert policy.counters["seed_reelections"] == 0
        assert policy.counters["criu_degraded_starts"] == 0
        assert policy.counters["cold_degraded_starts"] == 0
        assert fn.lineage.registry.generation("TC0") > 1
        sanitizers.check_lineage(fn.lineage, services=services_of(fn))

    def test_crash_without_replicas_degrades_to_dfs_reelection(self):
        fn, policy, records = seed_kill_burst(0, burst=20, seed=0)
        assert fn.lineage is None
        assert sum(1 for r in records if r.outcome == "lost") == 0
        assert policy.counters["seed_reelections"] >= 1

    def test_flap_fences_the_revived_primary(self):
        """A partitioned primary keeps its daemon state; on re-admission
        the fence must land and it must never again serve below the
        floor — the audit joins serve_log against fence_log."""
        fn, _policy, records = seed_kill_burst(2, burst=20, seed=0,
                                               flap=True)
        assert sum(1 for r in records if r.outcome == "lost") == 0
        assert fn.lineage.counters["promotions"] >= 1
        assert fn.lineage.counters["fences_delivered"] >= 1
        fenced_floors = [entry for service in services_of(fn)
                         for entry in service.fence_log]
        assert fenced_floors, "no daemon ever applied the fence"
        sanitizers.check_lineage(fn.lineage, services=services_of(fn))

    def test_orphaned_children_fail_over_mid_fork(self):
        fn, _policy, _records = seed_kill_burst(2, burst=20, seed=0,
                                                flap=True)
        orphan_rescues = sum(node.pager.counters["orphan_rescues"]
                             for node in fn.deployment.nodes())
        failovers = fn.lineage.counters["failovers"]
        assert orphan_rescues >= 1
        assert failovers >= orphan_rescues

    def test_daemon_rejects_stale_generation(self):
        fn, _policy = build_cluster(2)
        run_burst(fn, 2)
        service = services_of(fn)[0]
        service._lineage[999] = ("TC0", 1)
        service.apply_fence("TC0", 3)
        with pytest.raises(StaleGeneration):
            service._fence_check(999)
        service._lineage[999] = ("TC0", 3)  # handler current again...
        with pytest.raises(StaleGeneration):  # ...but the caller is stale
            service._fence_check(999, caller_generation=2)


class TestWalRecovery:
    def test_replay_reproduces_registry_after_faults(self):
        fn, _policy, _records = seed_kill_burst(2, burst=16, seed=0)
        registry = fn.lineage.registry
        replayed = LineageRegistry.from_wal(registry.wal)
        assert replayed.snapshot() == registry.snapshot()

    def test_truncated_wal_is_detected(self):
        fn, _policy, _records = seed_kill_burst(2, burst=8, seed=0)
        registry = fn.lineage.registry
        dropped = registry.wal._records.pop()
        try:
            violations = sanitizers.audit_lineage(fn.lineage)
            assert any("diverges" in v for v in violations)
        finally:
            registry.wal._records.append(dropped)

    def test_restarted_registry_continues_the_history(self):
        fn, _policy, _records = seed_kill_burst(2, burst=8, seed=0)
        old = fn.lineage.registry
        restarted = LineageRegistry.from_wal(old.wal)
        generation = restarted.generation("TC0")
        restarted.fence(fn.env.now, "TC0", generation)
        assert restarted.fence_of("TC0") == generation
        assert restarted.wal is old.wal  # one continuous journal


def _fault_schedules():
    crash = st.builds(
        lambda at, mid, down: MachineCrash(float(at), mid,
                                           down_for=float(down)),
        st.integers(0, 60_000), st.integers(0, 3),
        st.integers(50_000, 500_000))
    flap = st.builds(
        lambda at, mid, down: NicFlap(float(at), mid, float(down)),
        st.integers(0, 60_000), st.integers(0, 3),
        st.integers(1_000, 100_000))
    return st.lists(st.one_of(crash, flap), max_size=3)


class TestLineageProperty:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(schedule=_fault_schedules())
    def test_no_split_brain_under_any_schedule(self, schedule):
        """Under any bounded crash/flap schedule with replication on:
        every submitted invocation resolves to exactly one terminal
        outcome (none both completed and lost), at most one distinct
        generation ever holds leases on a descriptor (checked at every
        WAL prefix by the auditor), and the daemons never serve below an
        applied fence."""
        fn, _policy = build_cluster(2, seed=0)
        fn.faults.apply(schedule)
        records = run_burst(fn, 12, spacing=10_000.0)
        assert len(records) == 12
        assert all(r.outcome in ("ok", "recovered", "lost")
                   for r in records)
        completed = sum(1 for r in records
                        if r.outcome in ("ok", "recovered"))
        lost = sum(1 for r in records if r.outcome == "lost")
        assert completed + lost == len(records)
        for name in fn.lineage.registry.names():
            assert len(fn.lineage.registry.holder_generations(name)) <= 1
        sanitizers.check_lineage(fn.lineage, services=services_of(fn))
