"""Runtime race auditor: instrumentation hooks, conflicts, and the
static/dynamic cross-validation contract (every observed conflict lands
on a statically-claimed shard-boundary edge)."""

import os
import sys

import pytest

from repro.fn import FnCluster, MitosisPolicy
from repro.sanitizers import (RaceAuditor, SanitizerViolation, audit_races,
                              check_races, watch_fn_cluster)
from repro.sim import Environment, SimulationError
from repro.workloads import tc0_profile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO not in sys.path:
    sys.path.insert(0, REPO)


class _Box:
    def __init__(self):
        self.value = 0
        self.log = []


def _writer(env, box, delay, n):
    for i in range(n):
        yield env.timeout(delay)
        box.value += 1
        box.log.append(i)


class TestInstrumentStep:
    def test_wrapper_sees_every_step(self):
        env = Environment()
        seen = [0]

        def wrap(step):
            def wrapped():
                seen[0] += 1
                return step()
            return wrapped

        env.instrument_step(wrap)
        env.process(_writer(env, _Box(), 1.0, 5))
        env.run()
        assert seen[0] == env.events_processed > 0

    def test_double_install_rejected_and_uninstall_idempotent(self):
        env = Environment()
        env.instrument_step(lambda step: step)
        with pytest.raises(SimulationError):
            env.instrument_step(lambda step: step)
        env.uninstrument_step()
        env.uninstrument_step()  # no-op
        env.instrument_step(lambda step: step)  # re-install is fine

    def test_no_wrapper_means_no_instance_state(self):
        # The zero-cost-off contract: an uninstrumented environment has
        # nothing shadowing the class method.
        env = Environment()
        assert "step" not in env.__dict__
        env.instrument_step(lambda step: step)
        env.uninstrument_step()
        assert "step" not in env.__dict__


class TestRaceAuditor:
    def _race_rig(self):
        env = Environment()
        box = _Box()
        env.process(_writer(env, box, 1.0, 4))
        env.process(_writer(env, box, 1.0, 4))  # same ticks: W/W conflicts
        return env, box

    def test_same_tick_writes_conflict(self):
        env, box = self._race_rig()
        auditor = RaceAuditor(env).watch("Box", box, ("value", "log"))
        auditor.install()
        env.run()
        auditor.uninstall()
        assert auditor.writes_seen > 0
        cells = {c["cell"] for c in auditor.conflicts}
        assert cells == {"Box.value", "Box.log"}
        assert all(len(c["writers"]) >= 2 for c in auditor.conflicts)

    def test_claimed_cells_are_not_violations(self):
        env, box = self._race_rig()
        auditor = RaceAuditor(env, claimed_cells={"Box.value", "Box.log"})
        auditor.watch("Box", box, ("value", "log")).install()
        env.run()
        assert auditor.conflicts
        assert audit_races(auditor) == []
        check_races(auditor)  # no raise

    def test_unclaimed_conflicts_raise(self):
        env, box = self._race_rig()
        auditor = RaceAuditor(env, claimed_cells={"Box.value"})
        auditor.watch("Box", box, ("value", "log")).install()
        env.run()
        violations = audit_races(auditor)
        assert violations and all("Box.log" in v for v in violations)
        with pytest.raises(SanitizerViolation):
            check_races(auditor)

    def test_spaced_writes_do_not_conflict(self):
        env = Environment()
        box = _Box()
        env.process(_writer(env, box, 1.0, 4))
        env.process(_writer(env, box, 1.7, 4))  # never the same tick
        auditor = RaceAuditor(env).watch("Box", box, ("value",))
        auditor.install()
        env.run()
        assert auditor.writes_seen > 0
        assert auditor.conflicts == []

    def test_watch_after_install_rejected(self):
        env = Environment()
        auditor = RaceAuditor(env).install()
        with pytest.raises(RuntimeError):
            auditor.watch("Box", _Box(), ("value",))


def _fork_burst(num_forks, audit):
    fn = FnCluster(MitosisPolicy(), num_invokers=4, num_machines=7,
                   num_dfs_osds=2, seed=0)
    profile = tc0_profile()

    def setup():
        yield from fn.register(profile)

    fn.env.run(fn.env.process(setup()))
    auditor = None
    if audit:
        auditor = watch_fn_cluster(RaceAuditor(fn.env), fn)
        auditor.install()
    procs = [fn.submit(profile.name) for _ in range(num_forks)]
    for proc in procs:
        fn.env.run(proc)
    fn.env.run()
    if auditor is not None:
        auditor.uninstall()
    return fn, auditor


class TestCrossValidation:
    def test_audit_is_observation_only(self):
        # The audited run's event sequence is identical to the bare
        # run's: same event count, same clock, same invocation records.
        bare, _ = _fork_burst(60, audit=False)
        audited, auditor = _fork_burst(60, audit=True)
        assert audited.env.events_processed == bare.env.events_processed
        assert audited.env.now == bare.env.now
        def trace(fn):
            # invocation_id is a process-global counter, so compare the
            # timing tuple, which a perturbed sequence could not match.
            return [(r.function_name, r.submitted_at, r.started_at,
                     r.finished_at, r.start_kind, r.invoker_index)
                    for r in fn.records]

        assert trace(audited) == trace(bare)
        assert auditor.writes_seen > 0

    def test_runtime_conflicts_subset_of_static_edges(self):
        # The PR's acceptance criterion: every same-timestamp W/W
        # conflict a fork burst produces lands on an edge the static
        # shard-boundary report already claims — no false
        # "machine-local" classifications.
        dataflow = pytest.importorskip("tools.reprolint.dataflow")
        from tools.reprolint.dataflow import report as shard_report

        payload = shard_report.build(dataflow.analyze_tree())
        claimed = shard_report.claimed_cells(payload)
        assert claimed

        _, auditor = _fork_burst(120, audit=True)
        auditor.claimed_cells = claimed
        assert auditor.conflicts, "burst produced no same-tick conflicts"
        assert audit_races(auditor) == [], auditor.unclaimed_conflicts()
