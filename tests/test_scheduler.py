"""Scheduler interface: heap/calendar equivalence and the env knob.

The hypothesis property is the PR's acceptance property for the
calendar queue: for *any* discrete-event push/pop schedule — ties,
zero delays, and priority events included — the calendar pops the
identical ``(when, priority, eid)`` sequence as the binary heap.
"""

import itertools

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.sim import Environment
from repro.sim.scheduler import (SCHED_ENV_VAR, CalendarScheduler,
                                 HeapScheduler, default_scheduler_name,
                                 make_scheduler)

SETTINGS = settings(max_examples=60, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

# Delays mix exact ties (small integers), zero, and arbitrary floats —
# the three regimes where heap/calendar order could plausibly split.
_DELAYS = st.one_of(
    st.just(0.0),
    st.integers(min_value=0, max_value=4).map(float),
    st.floats(min_value=0.0, max_value=1e7,
              allow_nan=False, allow_infinity=False),
)

_OPS = st.lists(
    st.one_of(st.tuples(st.just("push"), _DELAYS, st.booleans()),
              st.just(("pop",))),
    max_size=200)


def _drain(scheduler):
    entries = []
    while scheduler:
        entries.append(scheduler.pop_entry())
    return entries


class TestEquivalenceProperty:
    @SETTINGS
    @given(ops=_OPS)
    def test_calendar_pops_identical_sequence_as_heap(self, ops):
        heap, calendar = HeapScheduler(), CalendarScheduler()
        eids = itertools.count()
        now = 0.0
        for op in ops:
            if op[0] == "push":
                _tag, delay, priority = op
                entry = (now + delay, 0 if priority else 1, next(eids),
                         None)
                heap.push(entry)
                calendar.push(entry)
            elif heap:
                expected = heap.pop_entry()
                assert calendar.pop_entry() == expected
                now = expected[0]
                assert len(calendar) == len(heap)
        assert _drain(calendar) == _drain(heap)

    def test_resize_grow_and_shrink_preserve_order(self):
        # 300 entries forces at least one doubling past the 16-bucket
        # floor; draining back down crosses the halving threshold.
        heap, calendar = HeapScheduler(), CalendarScheduler()
        for eid in range(300):
            entry = ((eid * 7919) % 101 * 0.25, eid % 2, eid, None)
            heap.push(entry)
            calendar.push(entry)
        assert _drain(calendar) == _drain(heap)

    def test_sparse_far_future_falls_back_to_direct_scan(self):
        # Entries a year (16 buckets x width 1.0) beyond the wheel's day:
        # the revolution finds nothing and the min-scan path must fire.
        calendar = CalendarScheduler()
        calendar.push((0.5, 1, 0, None))
        calendar.push((1e9, 1, 1, None))
        calendar.push((2e9, 1, 2, None))
        assert [e[0] for e in _drain(calendar)] == [0.5, 1e9, 2e9]


class TestSchedulerInterface:
    @pytest.mark.parametrize("factory", [HeapScheduler, CalendarScheduler])
    def test_empty_queue_contract(self, factory):
        scheduler = factory()
        assert not scheduler
        assert scheduler.peek_entry() is None
        assert scheduler.peek_when() == float("inf")
        with pytest.raises(IndexError):
            scheduler.pop_entry()

    @pytest.mark.parametrize("factory", [HeapScheduler, CalendarScheduler])
    def test_peek_matches_pop(self, factory):
        scheduler = factory()
        for entry in [(3.0, 1, 0, None), (1.0, 1, 1, None),
                      (1.0, 0, 2, None)]:
            scheduler.push(entry)
        assert scheduler.peek_when() == 1.0
        assert scheduler.peek_entry() == (1.0, 0, 2, None)
        assert scheduler.pop_entry() == (1.0, 0, 2, None)

    def test_calendar_rejects_bad_width(self):
        with pytest.raises(ValueError):
            CalendarScheduler(width=0.0)


class TestSchedulerSelection:
    def test_default_is_heap(self, monkeypatch):
        monkeypatch.delenv(SCHED_ENV_VAR, raising=False)
        assert default_scheduler_name() == "heap"
        assert isinstance(make_scheduler(), HeapScheduler)
        assert isinstance(Environment()._queue, HeapScheduler)

    def test_env_var_selects_calendar(self, monkeypatch):
        monkeypatch.setenv(SCHED_ENV_VAR, "calendar")
        assert default_scheduler_name() == "calendar"
        assert isinstance(Environment()._queue, CalendarScheduler)

    def test_invalid_name_rejected(self, monkeypatch):
        monkeypatch.setenv(SCHED_ENV_VAR, "splay")
        with pytest.raises(ValueError):
            default_scheduler_name()
        with pytest.raises(ValueError):
            make_scheduler("splay")


def _trace_run(scheduler):
    """A small sim with ties, zero delays, and interrupts; returns the
    observable execution trace."""
    env = Environment(scheduler=scheduler)
    trace = []

    def worker(name, delays):
        for delay in delays:
            yield env.timeout(delay)
            trace.append((env.now, name))

    def sleeper():
        try:
            yield env.timeout(50.0)
            trace.append((env.now, "slept"))
        except Exception as exc:
            trace.append((env.now, "interrupted:%s" % exc.args))

    procs = [env.process(worker("a", [1.0, 0.0, 2.0])),
             env.process(worker("b", [1.0, 2.0, 0.0])),
             env.process(worker("c", [3.0, 0.0]))]
    victim = env.process(sleeper())

    def killer():
        yield env.timeout(2.0)
        victim.interrupt("now")

    procs.append(env.process(killer()))
    env.run()
    return trace, env.events_processed


class TestEnvironmentIntegration:
    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.schedule(env.event(), delay=-1)

    def test_calendar_env_trace_identical_to_heap(self):
        heap_trace = _trace_run(HeapScheduler())
        calendar_trace = _trace_run(CalendarScheduler())
        assert calendar_trace == heap_trace
