"""Fixture: wall-clock and global-random misuse (no-wallclock-or-global-random)."""

import random
import time
from datetime import datetime
from random import choice  # positive: global-random import


def bad_jitter():
    return random.random()  # positive: process-global RNG


def bad_elapsed():
    return time.time()  # positive: wall clock


def bad_stamp():
    return datetime.now()  # positive: wall clock


def suppressed_elapsed():
    return time.time()  # reprolint: disable=no-wallclock-or-global-random


def good(env, streams):
    # negative: sim clock + a named seeded stream
    return env.now + streams.stream("jitter").random()


def also_good():
    return choice
