"""stale-generation-compare fixtures: equality on fencing tokens."""


def admit_holder(lease, fence_floor):
    """BAD: equality re-admits a stale holder whose token merely differs."""
    if lease.generation == fence_floor:
        return True
    return False


def reject_holder(snapshot, current):
    """BAD: `!=` on a generation subscript — replay divergence by identity."""
    return snapshot["generations"] != current


def bad_renew_lease(registry, holder):
    """BAD: a lease path that reads generations but never orders them."""
    token = holder.generation
    registry.record(token)
    return token


def fence_check(held_generation, fence_floor):
    """GOOD: fencing compares by ordering — stale means *below*."""
    return held_generation < fence_floor


def renew_lease(registry, holder, fence_floor):
    """GOOD: the renewal orders the held token against the floor."""
    if holder.generation is None:
        return False
    if holder.generation < fence_floor:
        return False
    registry.record(holder.generation)
    return True


def classify_genre(record):
    """GOOD: `genre` is not a generation — the name regex must not fire."""
    return record.genre == "drama"


def release(slot):
    """GOOD: `release` is not a lease path despite the substring."""
    slot.free()


def suppressed_compare(lease, fence_floor):
    """Pragma-suppressed equality (with a justification nearby)."""
    # Identity check deliberate here: exercising the pragma machinery.
    return lease.generation == fence_floor  # reprolint: disable=stale-generation-compare
