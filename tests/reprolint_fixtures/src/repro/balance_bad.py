"""Fixture: unbalanced resource acquisition (acquire-release-balance)."""


def bad_no_release(env, daemon):
    yield daemon.acquire()  # positive: never released
    yield env.timeout(1.0)


def bad_release_outside_finally(env, daemon):
    yield daemon.acquire()  # positive: release skipped if the wait raises
    yield env.timeout(1.0)
    daemon.release()


def good_finally(env, daemon):
    yield daemon.acquire()
    try:
        yield env.timeout(1.0)
    finally:
        daemon.release()


def good_with(lock):
    with lock.acquire():
        return 1


def suppressed(env, daemon):
    yield daemon.acquire()  # reprolint: disable=acquire-release-balance
    yield env.timeout(1.0)
