"""Fixture: event-callback and loop-driving hygiene (event-handler-hygiene)."""


def bad_callback(env, event):
    def on_done(_event):
        env.run()  # positive: re-enters the loop from inside step()

    event.callbacks.append(on_done)


def bad_library_run(env):
    env.run()  # positive: library code may not drive the loop


def good_callback(env, event, done):
    event.callbacks.append(lambda _e: done.succeed())  # negative


def suppressed(env):
    env.run()  # reprolint: disable=event-handler-hygiene
