"""Fixture: qp-create-outside-connplane positives, suppression, and the
clean factory/lease paths."""

from repro.rdma.qp import RcQp
from repro.rdma import dct


def connect_bad(nic, peer):
    return RcQp(nic, peer)  # flagged: skips the 700/s factory


def target_bad(machine, key):
    return dct.DcTarget(machine, key)  # flagged: unadvertised credentials


def connect_suppressed(nic, peer):
    return RcQp(nic, peer)  # reprolint: disable=qp-create-outside-connplane


def connect_ok(nic, peer):
    yield from nic.create_rc_qp(peer)  # clean: the factory path


def lease_ok(plane, machine, peer):
    yield from plane.pool(machine).acquire(peer)  # clean: a pooled lease
