"""Fixture: the owning module exempt from no-raw-pte-mutation."""


def raw_owner_write(pte, frame):
    pte.frame = frame  # allowed: this file owns the PTE bit fields
    frame.refcount += 1  # allowed: this file owns frame lifetime
