"""Fixture: bare-literal timeouts at resilience call sites (rpc-deadline)."""


def bad_literal_deadline(rpc, src, dst):
    yield from rpc.call(src, dst, "m.x", {}, request_bytes=64,
                        deadline=5000.0)  # positive: bare literal


def bad_breaker(CircuitBreaker):
    return CircuitBreaker("peer", cooldown=200.0)  # positive: bare literal


def bad_hedge(HedgeTracker):
    return HedgeTracker(initial_delay=100 * 2)  # positive: literal arithmetic


def good_params_constants(CircuitBreaker, HedgeTracker, params):
    # negative: timeouts taken from params constants
    breaker = CircuitBreaker("peer", cooldown=params.BREAKER_COOLDOWN)
    tracker = HedgeTracker(initial_delay=params.HEDGE_INITIAL_DELAY)
    return breaker, tracker


def good_caller_argument(CircuitBreaker, cooldown):
    return CircuitBreaker("peer", cooldown=cooldown)  # negative: call arg


def good_defaulted(CircuitBreaker, HedgeTracker):
    # negative: omitted keywords defer to the params defaults
    return CircuitBreaker("peer"), HedgeTracker()


def suppressed(HedgeTracker):
    return HedgeTracker(initial_delay=42.0)  # reprolint: disable=rpc-deadline


def not_a_breaker(record):
    # negative: unrelated constructor with a same-named keyword
    return record(cooldown=7.0)
