"""unclosed-span fixtures: spans that can never be ended."""


def trace_discarded(tracer, env):
    """BAD: the span object is dropped on the floor — nobody can end it."""
    tracer.start_span("rpc.call", peer=1)
    yield env.timeout(1.0)


def trace_leaked(tracer, env):
    """BAD: bound to a name that is never `.end()`-ed and never escapes."""
    span = tracer.start_span("page.fault", vpn=7)
    yield env.timeout(1.0)
    del span


def trace_with(tracer, env):
    """GOOD: the context manager owns the close."""
    with tracer.start_span("dct.create_target"):
        yield env.timeout(1.0)


def trace_finally(tracer, env):
    """GOOD: guarded site ended on every exit path."""
    span = None
    if tracer is not None and tracer.enabled:
        span = tracer.start_span("rdma.rc_read", nbytes=4096)
    try:
        yield env.timeout(1.0)
    finally:
        if span is not None:
            span.end()


def trace_factory(tracer):
    """GOOD: the span escapes to a caller who owns the close."""
    span = tracer.start_span("fork.rebuild")
    return span, 0.0


def trace_handoff(tracer, sink):
    """GOOD: handed off to another owner (e.g. a phase-end helper)."""
    span = tracer.start_span("fork.containerize")
    sink.append(span)


def trace_suppressed(tracer, env):
    """Suppressed: the pragma documents a span closed through an alias."""
    span = tracer.start_span("page.range", n=4)  # reprolint: disable=unclosed-span
    alias = span
    yield env.timeout(1.0)
    alias.end()
