"""Fixture: bare link-calibration literals (raw-link-capacity)."""

FABRIC_BANDWIDTH = 3200.0  # positive: module constant forks params.py

TOR_CAPACITY = 1000.0 / 3  # positive: pure-literal arithmetic is bare


def bad_default(hop_latency=0.3):  # positive: bare parameter default
    return hop_latency


def bad_kwarg(make_link):
    return make_link("tor-up", link_capacity=5.0)  # positive: keyword


def bad_attribute(link):
    link.host_bandwidth = 125.0  # positive: attribute binding
    return link


def suppressed_case():
    spine_latency = 1.5  # reprolint: disable=raw-link-capacity
    return spine_latency


def good_symbolic(params, base):
    bandwidth = params.RDMA_BANDWIDTH      # negative: params constant
    tor_capacity = 3 * base / 4.0          # negative: caller argument
    return bandwidth, tor_capacity


def good_zero_disables(schedule):
    return schedule(extra_latency=0.0)  # negative: the neutral element


def good_concurrency_slots(resource_cls, env):
    return resource_cls(env, capacity=2)  # negative: a slot count


GOOD_DROP_RATE = 0.25  # negative: a *rate* is workload, not calibration
