"""Fixture: RPC calls without a deadline decision (rpc-deadline)."""


def bad(rpc, src, dst):
    yield from rpc.call(src, dst, "m.x", {}, request_bytes=64)  # positive


def good_fail_free(rpc, src, dst):
    # negative: deadline=None documents an intentionally fail-free call
    yield from rpc.call(src, dst, "m.x", {}, request_bytes=64,
                        deadline=None)


def good_deadlined(rpc, src, dst, us):
    yield from rpc.call(src, dst, "m.x", {}, request_bytes=64,
                        deadline=5000 * us)


def suppressed(rpc, src, dst):
    yield from rpc.call(src, dst, "m.x", {})  # reprolint: disable=rpc-deadline


def not_an_rpc(registry):
    return registry.call("m.x")  # negative: receiver is not an rpc runtime
