"""Fixture: bare exception handlers (no-bare-except)."""


def bad():
    try:
        return 1
    except:  # positive: bare except
        return 2


def good():
    try:
        return 1
    except ValueError:
        return 2


def suppressed():
    try:
        return 1
    except:  # reprolint: disable=no-bare-except
        return 2
