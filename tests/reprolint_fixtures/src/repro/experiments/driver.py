"""Fixture: experiment drivers are exempt from event-handler-hygiene."""


def run_experiment(env):
    return env.run()  # allowed: experiment drivers own the loop
