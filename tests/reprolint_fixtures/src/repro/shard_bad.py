"""Planted shard-boundary violations for the dataflow rules.

One positive per ``cross-shard-mutation`` flavour (machine writes
cluster, cluster writes machine, foreign-instance receiver, unproven
owner), a two-handler unordered W/W for ``tie-order-hazard``, and one
pragma-suppressed case per rule.  ``Quietist`` stays clean: its writes
are same-class self accesses on machine-owned state (shard-internal).
"""


class Directory:  # reprolint: owner=cluster
    """Cluster-global name table plus the two daemons that churn it."""

    def __init__(self, env):
        self.env = env
        self.table = {}
        self.quiet = {}  # reprolint: disable=tie-order-hazard
        self.counter = 0

    def start(self):
        self.env.process(self._publisher())
        self.env.process(self._reclaimer())

    def _publisher(self):
        while True:
            self.table["hot"] = 1
            self.quiet["hot"] = 1
            yield self.env.timeout(1.0)

    def _reclaimer(self):
        while True:
            self.table["hot"] = 0
            self.quiet["hot"] = 0
            yield self.env.timeout(2.0)


class Scratch:
    """No annotation, never constructed here: owner stays unproven."""

    def __init__(self):
        self.notes = []


class Agent:  # reprolint: owner=machine
    """Machine-local worker that reaches across every boundary."""

    def __init__(self, env, directory, machine_id=0):
        self.env = env
        self.directory = directory
        self.machine_id = machine_id
        self.load = 0

    def start(self):
        self.env.process(self._beat())

    def _beat(self):
        while True:
            self.directory.counter = self.machine_id
            self.directory.counter = 0  # reprolint: disable=cross-shard-mutation
            yield self.env.timeout(1.0)

    def steal(self, peer_agent):
        peer_agent.load = self.load

    def jot(self, scratch):
        scratch.notes.append(self.machine_id)


class Balancer:  # reprolint: owner=cluster
    """Cluster-global placement that pokes machine-owned state."""

    def __init__(self, env, agents):
        self.env = env
        self.agents = agents

    def rebalance(self):
        for agent in self.agents:
            agent.load = 0


class Quietist:  # reprolint: owner=machine
    """Same-class self access on machine state: never a finding."""

    def __init__(self, env):
        self.env = env
        self.ticks = 0

    def start(self):
        self.env.process(self._tick())

    def _tick(self):
        while True:
            self.ticks += 1
            yield self.env.timeout(1.0)
