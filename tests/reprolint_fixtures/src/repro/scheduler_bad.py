"""Fixture: scheduler-abstraction-leak positives, suppression, and the
clean peek_entry() path."""


class Probe:
    def __init__(self, env):
        self.env = env

    def depth_bad(self):
        return len(self.env._queue)  # flagged: layout-specific measure

    def head_bad(self):
        return self.env._queue[0]  # flagged: heap-only indexing

    def head_suppressed(self):
        return self.env._queue[0]  # reprolint: disable=scheduler-abstraction-leak

    def head_ok(self):
        return self.env.peek_entry()  # clean: the supported interface
