"""hot-path-alloc fixtures: per-page process spawns in marked hot paths."""


def fault_one(env, vpn):
    yield env.timeout(1.0)


# reprolint: hot-path
def fetch_range_bad(env, vpns):
    """BAD: one process per page inside a marked pager hot path."""
    for vpn in vpns:
        env.process(fault_one(env, vpn))
    yield env.timeout(1.0)


# reprolint: hot-path
def fetch_range_good(env, qp, npages):
    """GOOD: the whole range rides one doorbelled batch, no spawns."""
    yield from qp.read_batch(npages, 4096)


def demand_entry(env, vpn):
    """GOOD: unmarked entry points may spawn (one prefetch window)."""
    env.process(fault_one(env, vpn))
    yield env.timeout(1.0)


# reprolint: hot-path
def fetch_range_suppressed(env, vpn):
    """Suppressed: the pragma documents a justified one-off spawn."""
    env.process(fault_one(env, vpn))  # reprolint: disable=hot-path-alloc
    yield env.timeout(1.0)
