"""Fixture: the one module exempt from no-wallclock-or-global-random."""

import random


def make_stream(seed):
    return random.Random(seed)  # allowed: this file owns the RNG
