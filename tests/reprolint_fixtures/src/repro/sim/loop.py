"""Fixture: the one module exempt from scheduler-abstraction-leak."""


def drain(env):
    queue = env._queue  # allowed: this module owns the storage layout
    entries = []
    while queue:
        entries.append(queue.pop_entry())
    return entries
