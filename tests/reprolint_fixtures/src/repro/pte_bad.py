"""Fixture: PTE/frame bookkeeping bypassing the owning APIs (no-raw-pte-mutation)."""


def bad_map(pte, frame):
    pte.frame = frame  # positive: raw PTE field write
    pte.present = True  # positive


def bad_refcount(frame):
    frame.refcount += 1  # positive: bypasses FrameAllocator.ref()


def suppressed(pte):
    pte.remote = False  # reprolint: disable=no-raw-pte-mutation


def good(pte, frame, allocator):
    pte.map_frame(allocator.ref(frame), writable=True)  # negative: owning API


def unrelated(vma):
    vma.writable = True  # negative: not a PTE receiver
