"""Runtime-sanitizer tests (``repro.sanitizers``).

Two halves:

* seeded end-to-end experiments that must audit **clean** — the
  acceptance bar for the static rules' dynamic counterparts; and
* deliberately injected corruptions that each auditor must **detect**
  (a sanitizer that can't fail is not testing anything).

Setting ``REPRO_SANITIZERS=1`` additionally runs the strict sweep, which
audits a matrix of seeds and rig configurations instead of one each.
"""

import pytest

from repro import sanitizers
from repro.containers import hello_world_image
from repro.experiments.rigs import PrimitiveRig
from repro.fn import FnCluster, MitosisPolicy
from repro.lineage.registry import LineageRegistry
from repro.workloads import execute, tc0_profile


def build_rig(**kwargs):
    kwargs.setdefault("num_machines", 4)
    kwargs.setdefault("num_dfs_osds", 1)
    return PrimitiveRig(**kwargs)


def remote_fork_lifecycle(rig):
    """Warm a parent, fork two remote children, execute, reclaim, tear down.

    Audits the rig at three quiescent points; returns nothing (raises
    :class:`~repro.sanitizers.SanitizerViolation` on any audit failure).
    """
    profile = tc0_profile()
    state = {}

    def body():
        parent = yield from rig.runtime(0).cold_start(profile.image)
        meta = yield from rig.node(0).fork_prepare(parent)
        child1 = yield from rig.node(1).fork_resume(meta)
        child2 = yield from rig.node(2).fork_resume(meta)
        yield from execute(rig.env, child1, profile)
        yield from execute(rig.env, child2, profile)
        state.update(parent=parent, meta=meta, children=[child1, child2])

    rig.run(body())
    # Quiescent point 1: shadow, children, shared page caches all live.
    sanitizers.check_rig(rig)

    meta = state["meta"]
    _, shadow = rig.node(0).service.lookup(meta.handler_id, meta.auth_key)
    heap = next(v for v in shadow.address_space.vmas if v.writable)

    def churn():
        # The parent reclaims shadow pages (passive revocation destroys
        # the VMA's DC target), then a child writes through the same VMA —
        # COW breaks and RPC fallbacks must keep the books balanced.
        yield from rig.kernel(0).reclaim(
            shadow, [heap.start_vpn, heap.start_vpn + 1])
        child = state["children"][0]
        yield from rig.kernel(1).touch(child.task, heap.start_vpn,
                                       write=True)

    rig.run(churn())
    # Quiescent point 2: after reclaim + revocation-fallback churn.
    sanitizers.check_rig(rig)

    assert rig.node(0).retire_descriptor(meta)
    for index, child in enumerate(state["children"], start=1):
        rig.runtime(index).destroy(child)
    rig.runtime(0).destroy(state["parent"])
    # Quiescent point 3: full teardown must return every frame and byte.
    sanitizers.check_rig(rig)
    for kernel in rig.kernels:
        assert kernel.frames.allocated == 0


class TestEndToEndClean:
    def test_remote_fork_lifecycle_audits_clean(self):
        remote_fork_lifecycle(build_rig(seed=7))

    def test_fn_cluster_audits_clean(self):
        fn = FnCluster(MitosisPolicy(), num_invokers=3, num_machines=6,
                       num_dfs_osds=2, seed=1)
        profile = tc0_profile()

        def body():
            yield from fn.register(profile)
            records = []
            for _ in range(4):
                records.append((yield from fn.invoke("TC0")))
            return records

        records = fn.env.run(fn.env.process(body()))
        assert all(r.outcome == "ok" for r in records)
        fn.deployment.stop_fault_daemons()
        sanitizers.check_rig(fn)

    @pytest.mark.skipif(not sanitizers.enabled(),
                        reason="set REPRO_SANITIZERS=1 for the strict sweep")
    def test_strict_sweep(self):
        for seed in (0, 1, 2):
            remote_fork_lifecycle(build_rig(seed=seed))
            remote_fork_lifecycle(build_rig(seed=seed, enable_sharing=False))
        remote_fork_lifecycle(build_rig(seed=3, access_control="active"))
        remote_fork_lifecycle(build_rig(seed=4, prefetch_depth=4))


class TestAuditorsDetect:
    """Each auditor must flag a deliberately injected corruption."""

    def _parent_rig(self):
        rig = build_rig(num_machines=2)

        def body():
            return (yield from rig.runtime(0).cold_start(hello_world_image()))

        return rig, rig.run(body())

    def test_frame_leak_detected(self):
        rig, _parent = self._parent_rig()
        rig.kernel(0).frames.alloc(content="leaked")  # alloc, never mapped
        violations = sanitizers.audit_frame_refcounts([rig.kernel(0)])
        assert any("frame leak" in v for v in violations)
        # The stray charge also breaks conservation on the same machine.
        conservation = sanitizers.audit_memory_conservation(
            [rig.machine(0)], kernels=[rig.kernel(0)])
        assert conservation == []  # frames holder still covers the bytes

    def test_refcount_mismatch_detected(self):
        rig, parent = self._parent_rig()
        _vpn, pte = next(iter(
            parent.task.address_space.page_table.entries()))
        pte.frame.refcount += 1  # corrupt, bypassing FrameAllocator
        violations = sanitizers.audit_frame_refcounts([rig.kernel(0)])
        assert any("refcount" in v for v in violations)

    def test_charge_leak_detected(self):
        rig, _parent = self._parent_rig()
        rig.machine(0).memory.alloc(4096)  # charge with no holder
        violations = sanitizers.audit_memory_conservation(
            [rig.machine(0)], kernels=[rig.kernel(0)])
        assert any("leaked" in v for v in violations)

    def test_undrained_loop_detected(self):
        rig = build_rig(num_machines=2)

        def boom():
            yield rig.env.timeout(1.0)
            raise RuntimeError("unwaited failure")

        rig.env.process(boom())
        violations = sanitizers.audit_loop_drained(rig.env)
        assert any("drain raised" in v for v in violations)

    def test_check_rig_raises_with_violation_list(self):
        rig, _parent = self._parent_rig()
        rig.machine(0).memory.alloc(4096)
        with pytest.raises(sanitizers.SanitizerViolation) as excinfo:
            sanitizers.check_rig(rig)
        assert excinfo.value.violations


class _StubLineage:
    """The minimal surface :func:`~repro.sanitizers.audit_lineage` needs."""

    def __init__(self, registry):
        self.registry = registry


class _StubService:
    def __init__(self, serve_log=(), fence_log=()):
        self.serve_log = list(serve_log)
        self.fence_log = list(fence_log)


def _lineage_registry():
    """A registry taken through a realistic history: place, replicate,
    elect a replica, fence the old primary."""
    registry = LineageRegistry()
    registry.place_primary(10.0, "TC0", invoker=0, handler_id=1,
                           machine_id=0, vma_count=2)
    registry.add_replica(11.0, "TC0", invoker=1, machine_id=2)
    registry.bump_copy_epoch(12.0, "TC0", invoker=1)
    registry.bump_copy_epoch(13.0, "TC0", invoker=1)
    registry.replica_ready(14.0, "TC0", invoker=1, handler_id=7)
    registry.elect(20.0, "TC0", invoker=1, handler_id=7, vma_count=2)
    registry.fence(21.0, "TC0", registry.generation("TC0"))
    return registry


class TestLineageAuditor:
    def test_realistic_history_audits_clean(self):
        lineage = _StubLineage(_lineage_registry())
        services = [_StubService(
            serve_log=[(15.0, "TC0", 1, "page"),  # before the fence: legal
                       (22.0, "TC0", 2, "descriptor")],
            fence_log=[(21.5, "TC0", 2)])]
        assert sanitizers.audit_lineage(lineage, services=services) == []

    def test_split_brain_leases_detected(self):
        registry = _lineage_registry()
        # A stale grant slipping straight into the journal (bypassing the
        # mutator's guard) leaves two generations holding leases at once.
        record = registry.wal.append(25.0, "grant_lease", name="TC0",
                                     invoker=3, handler_id=1, generation=1)
        registry._apply(record)
        violations = sanitizers.audit_lineage(_StubLineage(registry))
        assert any("split-brain" in v for v in violations)

    def test_copy_epoch_overrun_detected(self):
        registry = _lineage_registry()
        registry.add_replica(25.0, "TC0", invoker=2, machine_id=4)
        for at in (26.0, 27.0, 28.0):
            record = registry.wal.append(at, "bump_copy_epoch", name="TC0",
                                         invoker=2)
            registry._apply(record)
        violations = sanitizers.audit_lineage(_StubLineage(registry))
        assert any("above the primary epoch" in v for v in violations)

    def test_unjournaled_mutation_detected(self):
        registry = _lineage_registry()
        registry._generations["TC0"] += 1  # mutate without journaling
        violations = sanitizers.audit_lineage(_StubLineage(registry))
        assert any("diverges" in v for v in violations)

    def test_serve_after_fence_detected(self):
        lineage = _StubLineage(_lineage_registry())
        services = [_StubService(
            serve_log=[(30.0, "TC0", 1, "page")],  # stale gen after fence
            fence_log=[(21.5, "TC0", 2)])]
        violations = sanitizers.audit_lineage(lineage, services=services)
        assert any("below its applied fence floor" in v for v in violations)

    def test_lowered_fence_detected(self):
        registry = _lineage_registry()
        record = registry.wal.append(30.0, "fence", name="TC0", generation=1)
        registry._apply(record)
        violations = sanitizers.audit_lineage(_StubLineage(registry))
        assert any("lowered" in v for v in violations)

    def test_check_lineage_raises(self):
        registry = _lineage_registry()
        registry._generations["TC0"] += 1
        with pytest.raises(sanitizers.SanitizerViolation):
            sanitizers.check_lineage(_StubLineage(registry))


class TestFlag:
    def test_enabled_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZERS", raising=False)
        assert not sanitizers.enabled()
        monkeypatch.setenv("REPRO_SANITIZERS", "0")
        assert not sanitizers.enabled()
        monkeypatch.setenv("REPRO_SANITIZERS", "1")
        assert sanitizers.enabled()
