"""Documentation enforcement: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import repro

SKIP_MODULES = {"repro.experiments.__main__"}


def _public_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in SKIP_MODULES:
            continue
        modules.append(importlib.import_module(info.name))
    return modules


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in _public_modules() if not m.__doc__]
    assert not missing, "modules without docstrings: %s" % missing


def test_every_public_class_and_function_documented():
    missing = []
    for module in _public_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    missing.append("%s.%s" % (module.__name__, name))
    assert not missing, "undocumented public items: %s" % missing


def test_every_public_method_documented():
    missing = []
    for module in _public_modules():
        for cls_name, cls in vars(module).items():
            if cls_name.startswith("_") or not inspect.isclass(cls):
                continue
            if cls.__module__ != module.__name__:
                continue
            for meth_name, meth in vars(cls).items():
                if meth_name.startswith("_"):
                    continue
                if not (inspect.isfunction(meth)
                        or isinstance(meth, (staticmethod, classmethod,
                                             property))):
                    continue
                target = meth.fget if isinstance(meth, property) else meth
                if isinstance(target, (staticmethod, classmethod)):
                    target = target.__func__
                if not inspect.getdoc(target):
                    missing.append("%s.%s.%s"
                                   % (module.__name__, cls_name, meth_name))
    assert not missing, "undocumented public methods: %s" % missing
