"""Unit tests for the CRIU-like checkpoint/restore baseline."""

import pytest

from repro import params
from repro.cluster import Cluster
from repro.containers import ContainerRuntime, hello_world_image
from repro.criu import (
    DfsSource,
    LocalTmpfsSource,
    RcopySource,
    TmpfsStore,
    checkpoint,
    restore,
)
from repro.dfs import CephLikeDfs
from repro.kernel import Kernel
from repro.rdma import RdmaFabric
from repro.sim import Environment


@pytest.fixture
def rig():
    env = Environment()
    cluster = Cluster(env, num_machines=6, num_racks=1)
    fabric = RdmaFabric(env, cluster)
    kernels = [Kernel(env, m) for m in cluster]
    runtimes = [ContainerRuntime(env, k) for k in kernels]
    dfs = CephLikeDfs(env, fabric, osd_machines=cluster.machines[4:])
    return env, cluster, fabric, runtimes, dfs


def run(env, gen):
    return env.run(env.process(gen))


def start_parent(env, runtime, image):
    def body():
        return (yield from runtime.cold_start(image))
    return run(env, body())


class TestCheckpoint:
    def test_captures_all_resident_pages(self, rig):
        env, _, _, runtimes, _ = rig
        image = hello_world_image()
        parent = start_parent(env, runtimes[0], image)

        def body():
            return (yield from checkpoint(env, parent, "ck"))

        ck = run(env, body())
        assert len(ck.pages) == image.layout.total_pages
        assert ck.total_bytes >= image.layout.total_bytes

    def test_cost_proportional_to_memory(self, rig):
        env, _, _, runtimes, _ = rig
        from repro.containers import image_resize_image
        tc0 = start_parent(env, runtimes[0], hello_world_image())
        tc1 = start_parent(env, runtimes[1], image_resize_image())

        def timed(container, name):
            start = env.now
            yield from checkpoint(env, container, name)
            return env.now - start

        small = run(env, timed(tc0, "a"))
        large = run(env, timed(tc1, "b"))
        assert large > small

    def test_tc1_checkpoint_to_tmpfs_around_30ms(self, rig):
        # Fig. 2c calibration: TC1 -> tmpfs ~= 30ms.
        env, _, _, runtimes, _ = rig
        from repro.containers import image_resize_image
        parent = start_parent(env, runtimes[0], image_resize_image())

        def timed():
            start = env.now
            yield from checkpoint(env, parent, "ck")
            return env.now - start

        elapsed = run(env, timed())
        assert 15 * params.MS < elapsed < 45 * params.MS

    def test_container_keeps_running(self, rig):
        env, _, _, runtimes, _ = rig
        parent = start_parent(env, runtimes[0], hello_world_image())

        def body():
            yield from checkpoint(env, parent, "ck")
            return parent.state

        assert run(env, body()) == "running"


class TestTmpfsStore:
    def test_put_charges_memory_and_delete_frees(self, rig):
        env, cluster, _, runtimes, _ = rig
        parent = start_parent(env, runtimes[0], hello_world_image())
        store = TmpfsStore(cluster.machine(1))

        def body():
            ck = yield from checkpoint(env, parent, "ck")
            before = cluster.machine(1).memory.used
            store.put(ck)
            return before, ck

        before, ck = run(env, body())
        assert cluster.machine(1).memory.used == before + ck.total_bytes
        store.delete("ck")
        assert cluster.machine(1).memory.used == before

    def test_duplicate_put_rejected(self, rig):
        env, cluster, _, runtimes, _ = rig
        parent = start_parent(env, runtimes[0], hello_world_image())
        store = TmpfsStore(cluster.machine(1))

        def body():
            ck = yield from checkpoint(env, parent, "ck")
            store.put(ck)
            return ck

        ck = run(env, body())
        with pytest.raises(Exception):
            store.put(ck)


class _Restored:
    """Helper bundling the restore result with timing."""

    def __init__(self, container, elapsed):
        self.container = container
        self.elapsed = elapsed


def checkpoint_to_tmpfs(env, runtimes, cluster, machine_idx=0):
    image = hello_world_image()
    parent = start_parent(env, runtimes[machine_idx], image)
    store = TmpfsStore(cluster.machine(machine_idx))

    def body():
        ck = yield from checkpoint(env, parent, "ck")
        store.put(ck)

    run(env, body())
    return parent, store


class TestRestore:
    def test_vanilla_local_restores_all_pages(self, rig):
        env, cluster, fabric, runtimes, _ = rig
        parent, store = checkpoint_to_tmpfs(env, runtimes, cluster)
        source = LocalTmpfsSource(env, store, cluster.machine(0))

        def body():
            start = env.now
            container = yield from restore(env, runtimes[0], source, "ck",
                                           lazy=False)
            return _Restored(container, env.now - start)

        result = run(env, body())
        image = hello_world_image()
        assert (result.container.task.address_space.resident_pages
                == image.layout.total_pages)

    def test_lazy_local_restores_metadata_only(self, rig):
        env, cluster, fabric, runtimes, _ = rig
        parent, store = checkpoint_to_tmpfs(env, runtimes, cluster)
        source = LocalTmpfsSource(env, store, cluster.machine(0))

        def body():
            container = yield from restore(env, runtimes[0], source, "ck",
                                           lazy=True)
            return container

        container = run(env, body())
        assert container.task.address_space.resident_pages == 0
        assert len(container.task.address_space.vmas) == 5

    def test_lazy_faster_than_vanilla(self, rig):
        env, cluster, fabric, runtimes, _ = rig
        parent, store = checkpoint_to_tmpfs(env, runtimes, cluster)
        source = LocalTmpfsSource(env, store, cluster.machine(0))

        def timed(lazy):
            start = env.now
            yield from restore(env, runtimes[0], source, "ck", lazy=lazy)
            return env.now - start

        lazy = run(env, timed(True))
        vanilla = run(env, timed(False))
        assert lazy < vanilla

    def test_lazy_restore_pages_in_on_touch(self, rig):
        env, cluster, fabric, runtimes, _ = rig
        parent, store = checkpoint_to_tmpfs(env, runtimes, cluster)
        source = LocalTmpfsSource(env, store, cluster.machine(0))
        kernel = runtimes[0].kernel

        def body():
            container = yield from restore(env, runtimes[0], source, "ck",
                                           lazy=True)
            vma = container.task.address_space.vmas[0]
            parent_pte = parent.task.address_space.page_table.entry(
                vma.start_vpn)
            content = yield from kernel.touch(container.task, vma.start_vpn)
            return content, parent_pte.frame.content

        child_content, parent_content = run(env, body())
        assert child_content == parent_content

    def test_remote_rcopy_pays_file_copy(self, rig):
        env, cluster, fabric, runtimes, _ = rig
        parent, store = checkpoint_to_tmpfs(env, runtimes, cluster,
                                            machine_idx=0)
        local = LocalTmpfsSource(env, store, cluster.machine(0))
        rcopy = RcopySource(env, fabric, store, cluster.machine(1))

        def timed(runtime, source):
            start = env.now
            yield from restore(env, runtime, source, "ck", lazy=False)
            return env.now - start

        local_time = run(env, timed(runtimes[0], local))
        remote_time = run(env, timed(runtimes[1], rcopy))
        assert remote_time > local_time

    def test_dfs_restore_slower_than_local(self, rig):
        env, cluster, fabric, runtimes, dfs = rig
        image = hello_world_image()
        parent = start_parent(env, runtimes[0], image)

        def setup():
            ck = yield from checkpoint(env, parent, "ck")
            yield from dfs.put(cluster.machine(0), "ck", ck.total_bytes,
                               payload=ck)

        run(env, setup())
        store = TmpfsStore(cluster.machine(1))

        def local_setup():
            ck2 = yield from checkpoint(env, parent, "ck2")
            store.put(ck2)

        run(env, local_setup())

        def timed(source, name):
            start = env.now
            yield from restore(env, runtimes[1], source, name, lazy=True)
            return env.now - start

        dfs_time = run(env, timed(DfsSource(env, dfs, cluster.machine(1)), "ck"))
        local_time = run(env, timed(
            LocalTmpfsSource(env, store, cluster.machine(1)), "ck2"))
        assert dfs_time > local_time

    def test_lean_restore_much_faster_than_full_isolation(self, rig):
        env, cluster, fabric, runtimes, _ = rig
        parent, store = checkpoint_to_tmpfs(env, runtimes, cluster)
        source = LocalTmpfsSource(env, store, cluster.machine(0))

        def timed(lean):
            start = env.now
            yield from restore(env, runtimes[0], source, "ck",
                               lazy=True, lean=lean)
            return env.now - start

        lean_time = run(env, timed(True))
        fat_time = run(env, timed(False))
        assert fat_time - lean_time >= params.CGROUP_CONTAINERIZATION * 0.9

    def test_restored_container_carries_criu_overhead(self, rig):
        env, cluster, fabric, runtimes, _ = rig
        parent, store = checkpoint_to_tmpfs(env, runtimes, cluster)
        source = LocalTmpfsSource(env, store, cluster.machine(0))

        def body():
            return (yield from restore(env, runtimes[0], source, "ck"))

        container = run(env, body())
        assert container.extra_overhead_bytes == params.CRIU_RUNTIME_OVERHEAD_BYTES

    def test_socket_fds_cost_tcp_repair(self, rig):
        env, cluster, fabric, runtimes, _ = rig
        image = hello_world_image()
        parent = start_parent(env, runtimes[0], image)
        parent.task.open_fd("socket", "tcp://storage")
        store = TmpfsStore(cluster.machine(0))

        def setup():
            ck = yield from checkpoint(env, parent, "ck")
            store.put(ck)

        run(env, setup())
        source = LocalTmpfsSource(env, store, cluster.machine(0))

        def body():
            start = env.now
            container = yield from restore(env, runtimes[0], source, "ck")
            return env.now - start, container

        elapsed, container = run(env, body())
        assert elapsed > params.SOCKET_RESTORE_LATENCY
        assert any(fd.kind == "socket" for fd in container.task.fd_table.values())
