"""Unit tests for images, containers, and the runtime start paths."""

import pytest

from repro import params
from repro.cluster import Cluster
from repro.containers import (
    ContainerAccountant,
    ContainerRuntime,
    ContainerState,
    MemoryLayout,
    hello_world_image,
    image_resize_image,
)
from repro.kernel import Kernel
from repro.sim import Environment


@pytest.fixture
def rig():
    env = Environment()
    cluster = Cluster(env, num_machines=2, num_racks=1)
    kernels = [Kernel(env, m) for m in cluster]
    runtimes = [ContainerRuntime(env, k) for k in kernels]
    return env, cluster, runtimes


def run(env, gen):
    return env.run(env.process(gen))


class TestImages:
    def test_tc0_matches_paper(self):
        image = hello_world_image()
        assert image.image_file_bytes == int(10.2 * params.MB)
        assert image.cold_start_latency == params.DOCKER_COLD_START
        # Resident set around 5.4MB: 48 cached containers ~= 261MB (Fig. 11b).
        assert 5 * params.MB < image.layout.total_bytes < 6 * params.MB

    def test_tc1_is_bigger_than_tc0(self):
        tc0, tc1 = hello_world_image(), image_resize_image()
        assert tc1.image_file_bytes > tc0.image_file_bytes
        assert tc1.layout.total_pages > tc0.layout.total_pages

    def test_layout_rejects_empty_region(self):
        with pytest.raises(ValueError):
            MemoryLayout(code_pages=0, lib_pages=1, data_pages=1, heap_pages=1)

    def test_layout_total(self):
        layout = MemoryLayout(10, 20, 30, 40, stack_pages=5)
        assert layout.total_pages == 105
        assert layout.total_bytes == 105 * params.PAGE_SIZE


class TestColdStart:
    def test_cold_start_pays_full_latency(self, rig):
        env, _, (rt0, _) = rig
        image = hello_world_image()

        def body():
            container = yield from rt0.cold_start(image)
            return env.now, container

        elapsed, container = run(env, body())
        assert elapsed == pytest.approx(params.DOCKER_COLD_START)
        assert container.state == ContainerState.RUNNING

    def test_cold_start_materializes_layout(self, rig):
        env, _, (rt0, _) = rig
        image = hello_world_image()

        def body():
            return (yield from rt0.cold_start(image))

        container = run(env, body())
        assert (container.task.address_space.resident_pages
                == image.layout.total_pages)

    def test_sandbox_slots_bound_concurrency(self, rig):
        env, _, (rt0, _) = rig
        image = hello_world_image()
        finished = []

        def starter():
            yield from rt0.cold_start(image)
            finished.append(env.now)

        for _ in range(params.SANDBOX_INIT_SLOTS + 1):
            env.process(starter())
        env.run()
        waves = sorted(set(round(t) for t in finished))
        assert len(waves) == 2  # one start had to wait for a slot


class TestLeanStart:
    def test_lean_start_is_10ms(self, rig):
        env, _, (rt0, _) = rig
        image = hello_world_image()

        def body():
            container = yield from rt0.lean_start_empty(image)
            return env.now, container

        elapsed, container = run(env, body())
        assert elapsed == pytest.approx(params.LEAN_CONTAINERIZATION)
        assert container.task.address_space.resident_pages == 0

    def test_lean_vs_cold_gap_matches_paper(self, rig):
        # 190ms -> 10ms containerization claim (§6 comparing targets).
        assert params.CGROUP_CONTAINERIZATION / params.LEAN_CONTAINERIZATION == 19


class TestPauseUnpause:
    def test_unpause_is_sub_millisecond(self, rig):
        env, _, (rt0, _) = rig
        image = hello_world_image()

        def body():
            container = yield from rt0.cold_start(image)
            yield from rt0.pause(container)
            start = env.now
            yield from rt0.unpause(container)
            return env.now - start, container.state

        elapsed, state = run(env, body())
        assert elapsed < params.MS
        assert state == ContainerState.RUNNING

    def test_unpause_requires_paused(self, rig):
        env, _, (rt0, _) = rig
        image = hello_world_image()

        def body():
            container = yield from rt0.cold_start(image)
            with pytest.raises(ValueError):
                yield from rt0.unpause(container)
            return True

        assert run(env, body())

    def test_daemon_serializes_unpauses(self, rig):
        env, _, (rt0, _) = rig
        image = hello_world_image()
        done = []

        def body():
            containers = []
            for _ in range(3):
                c = yield from rt0.cold_start(image)
                yield from rt0.pause(c)
                containers.append(c)
            return containers

        containers = run(env, body())

        def unpauser(c):
            yield from rt0.unpause(c)
            done.append(env.now)

        for c in containers:
            env.process(unpauser(c))
        env.run()
        gaps = [done[i + 1] - done[i] for i in range(len(done) - 1)]
        for gap in gaps:
            assert gap == pytest.approx(params.CACHE_UNPAUSE_LATENCY)


class TestDestroyAndAccounting:
    def test_destroy_frees_memory(self, rig):
        env, cluster, (rt0, _) = rig
        image = hello_world_image()

        def body():
            container = yield from rt0.cold_start(image)
            used = cluster.machine(0).memory.used
            rt0.destroy(container)
            return used, cluster.machine(0).memory.used, container.state

        used_before, used_after, state = run(env, body())
        assert used_before > 0
        assert used_after == 0
        assert state == ContainerState.DEAD

    def test_accountant_tracks_per_machine_memory(self, rig):
        env, cluster, (rt0, _) = rig
        image = hello_world_image()
        accountant = ContainerAccountant()

        def body():
            first = yield from rt0.cold_start(image)
            second = yield from rt0.cold_start(image)
            accountant.register(first)
            accountant.register(second)
            return first

        first = run(env, body())
        m0 = cluster.machine(0)
        assert len(accountant.live_on(m0)) == 2
        two = accountant.memory_on(m0)
        rt0.destroy(first)
        assert len(accountant.live_on(m0)) == 1
        assert accountant.memory_on(m0) < two

    def test_memory_bytes_includes_runtime_overhead(self, rig):
        env, _, (rt0, _) = rig
        image = hello_world_image()

        def body():
            return (yield from rt0.cold_start(image))

        container = run(env, body())
        assert container.memory_bytes() == (
            image.layout.total_bytes + image.runtime_overhead_bytes)
