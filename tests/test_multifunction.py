"""Multiple functions registered and invoked concurrently on one platform."""

import pytest

from repro.fn import FnCluster, MitosisPolicy
from repro.workloads import tc0_profile, tc1_profile


@pytest.fixture
def fn():
    return FnCluster(MitosisPolicy(), num_invokers=3, num_machines=6,
                     num_dfs_osds=2, seed=2)


def run(fn, gen):
    return fn.env.run(fn.env.process(gen))


class TestMultiFunction:
    def test_each_function_gets_its_own_seed(self, fn):
        def body():
            yield from fn.register(tc0_profile())
            yield from fn.register(tc1_profile())

        run(fn, body())
        assert set(fn.policy.seeds) == {"TC0", "TC1"}
        tc0_seed = fn.policy.seeds["TC0"][1]
        tc1_seed = fn.policy.seeds["TC1"][1]
        assert tc0_seed.image.name != tc1_seed.image.name

    def test_seed_placement_balances_memory(self, fn):
        def body():
            yield from fn.register(tc0_profile())
            yield from fn.register(tc1_profile())

        run(fn, body())
        # Provisioning picks the least-loaded invoker, so the two seeds
        # land on different machines.
        assert (fn.policy.seeds["TC0"][0].index
                != fn.policy.seeds["TC1"][0].index)

    def test_interleaved_invocations_do_not_cross_state(self, fn):
        def body():
            yield from fn.register(tc0_profile())
            yield from fn.register(tc1_profile())
            procs = [fn.submit("TC0"), fn.submit("TC1"),
                     fn.submit("TC0"), fn.submit("TC1")]
            for proc in procs:
                yield proc

        run(fn, body())
        by_name = {}
        for record in fn.records:
            by_name.setdefault(record.function_name, []).append(record)
        assert len(by_name["TC0"]) == 2
        assert len(by_name["TC1"]) == 2
        # TC1 executes much longer than TC0.
        tc0_mean = sum(r.execution_latency for r in by_name["TC0"]) / 2
        tc1_mean = sum(r.execution_latency for r in by_name["TC1"]) / 2
        assert tc1_mean > 10 * tc0_mean

    def test_descriptor_tables_stay_per_function(self, fn):
        def body():
            yield from fn.register(tc0_profile())
            yield from fn.register(tc1_profile())
            yield from fn.invoke("TC0")
            yield from fn.invoke("TC1")

        run(fn, body())
        total = sum(len(fn.deployment.node(i.machine).service)
                    for i in fn.invokers)
        assert total == 2  # exactly one descriptor per seed

    def test_page_sharing_keyed_per_descriptor(self, fn):
        def body():
            yield from fn.register(tc0_profile())
            yield from fn.register(tc1_profile())
            # Fork both functions to the same invoker; the shared cache
            # must never serve TC1 a TC0 page.
            target = fn.invokers[2]
            node = fn.deployment.node(target.machine)
            _, _, meta0 = fn.policy.seeds["TC0"]
            _, _, meta1 = fn.policy.seeds["TC1"]
            c0 = yield from node.fork_resume(meta0)
            c1 = yield from node.fork_resume(meta1)
            heap0 = c0.task.address_space.vmas[3]
            heap1 = c1.task.address_space.vmas[3]
            s0 = yield from c0.kernel.touch(c0.task, heap0.start_vpn)
            s1 = yield from c1.kernel.touch(c1.task, heap1.start_vpn)
            return s0, s1

        s0, s1 = run(fn, body())
        assert s0 != s1
