"""Quickstart: remote-fork one container across machines with MITOSIS.

Builds a two-invoker simulated cluster, cold-starts a Python hello-world
container on machine 0, prepares its descriptor (fork_prepare), remote
forks it onto machine 1 (fork_resume), and lets the child read its
parent's memory on demand over simulated one-sided RDMA.

Run:  python examples/quickstart.py
"""

from repro import params
from repro.cluster import Cluster
from repro.containers import ContainerRuntime, hello_world_image
from repro.core import MitosisDeployment
from repro.kernel import Kernel
from repro.rdma import RdmaFabric, RpcRuntime
from repro.sim import Environment


def main():
    # --- Assemble the substrate: machines, RNICs, kernels, runtimes.
    env = Environment()
    cluster = Cluster(env, num_machines=2, num_racks=1)
    fabric = RdmaFabric(env, cluster)
    rpc = RpcRuntime(env, fabric)
    kernels = [Kernel(env, machine) for machine in cluster]
    runtimes = [ContainerRuntime(env, kernel) for kernel in kernels]
    deployment = MitosisDeployment(env, cluster, fabric, rpc, runtimes)

    def scenario():
        # 1. A warmed parent container on machine 0 (the "seed").
        parent = yield from runtimes[0].cold_start(hello_world_image())
        print("parent started on m0: %d resident pages, cold start took "
              "%.0f ms" % (parent.task.address_space.resident_pages,
                           env.now / params.MS))

        # The parent stores an intermediate result in a global variable.
        heap = parent.task.address_space.vmas[3]
        yield from kernels[0].write_page(
            parent.task, heap.start_vpn, "hello-from-the-parent")

        # 2. fork_prepare: condense the parent into a KB-scale descriptor.
        node0 = deployment.node(cluster.machine(0))
        start = env.now
        meta = yield from node0.fork_prepare(parent)
        descriptor, _ = node0.service.lookup(meta.handler_id, meta.auth_key)
        print("fork_prepare: %.2f ms, descriptor is %.1f KB "
              "(vs the %.1f MB image file)"
              % ((env.now - start) / params.MS,
                 descriptor.nbytes / params.KB,
                 parent.image.image_file_bytes / params.MB))

        # 3. fork_resume on machine 1: the remote warm start.
        node1 = deployment.node(cluster.machine(1))
        start = env.now
        child = yield from node1.fork_resume(meta)
        print("fork_resume on m1: %.2f ms (paper: ~11 ms); child has %d "
              "resident pages — memory arrives on demand"
              % ((env.now - start) / params.MS,
                 child.task.address_space.resident_pages))

        # 4. The child touches memory: pages fly over one-sided RDMA.
        start = env.now
        content = yield from kernels[1].touch(child.task, heap.start_vpn)
        print("first touch pulled the parent's page in %.1f us: %r"
              % (env.now - start, content))

        counters = node1.pager.counters.as_dict()
        print("pager counters on m1: %s" % counters)

    env.run(env.process(scenario()))


if __name__ == "__main__":
    main()
