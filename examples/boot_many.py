"""Booting a burst of serverless functions: the headline experiment.

Fires a burst of hello-world invocations at the Fn platform under each
start policy and reports start throughput — the scaled-down version of
the paper's "10,000 containers in 0.86 s on 18 invokers" (Figs. 10/11).

Run:  python examples/boot_many.py [requests_per_invoker]
"""

import sys

from repro import params
from repro.experiments.methods import policy_for
from repro.fn import FnCluster
from repro.workloads import tc0_profile


def boot_burst(method, num_invokers=4, requests_per_invoker=50):
    fn = FnCluster(policy_for(method, cache_instances=16),
                   num_invokers=num_invokers,
                   num_machines=num_invokers + 3, num_dfs_osds=2)
    profile = tc0_profile()

    def setup():
        yield from fn.register(profile)

    fn.env.run(fn.env.process(setup()))

    total = requests_per_invoker * num_invokers
    start = fn.env.now
    procs = [fn.submit("TC0") for _ in range(total)]
    for proc in procs:
        fn.env.run(proc)
    makespan_s = (fn.env.now - start) / params.SEC
    return total / makespan_s, makespan_s, total


def main():
    requests = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    num_invokers = 4
    print("burst of %d requests/invoker on %d invokers:\n"
          % (requests, num_invokers))
    rates = {}
    for method in ("cache-ideal", "mitosis", "criu-tmpfs", "criu-remote"):
        rate, makespan_s, total = boot_burst(method, num_invokers, requests)
        rates[method] = rate
        print("%-12s started %4d containers in %6.3f s  ->  %7.0f /s "
              "(%5.0f per invoker)"
              % (method, total, makespan_s, rate, rate / num_invokers))

    per_invoker = rates["mitosis"] / num_invokers
    print("\nextrapolation: at the paper's 18 invokers MITOSIS would boot "
          "10,000 containers in ~%.2f s (paper: 0.86 s)"
          % (10000 / (per_invoker * 18)))
    print("MITOSIS runs at %.0f%% of Cache(Ideal)'s peak (paper: 46.4%%) "
          "with none of its per-invoker provisioning"
          % (100 * rates["mitosis"] / rates["cache-ideal"]))


if __name__ == "__main__":
    main()
