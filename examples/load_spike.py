"""Load spikes: vanilla Fn caching vs MITOSIS under an Azure-style spike.

Replays a synthetic trace shaped like Azure Functions' Func 660323 (whose
invocation frequency fluctuates 33,000x within a minute) against the Fn
platform, once with the vanilla caching policy and once with MITOSIS seed
functions, and prints the latency percentiles and peak memory of each —
the experiment behind the paper's Figs. 12 and 13.

Run:  python examples/load_spike.py
"""

from repro import params
from repro.experiments.spikes import replay_spike
from repro.metrics import percentile
from repro.workloads import func_660323, tc0_profile


def main():
    trace = func_660323()
    print("trace %s: %d minutes, peak ratio %.0fx, needs up to %d machines"
          % (trace.name, trace.minutes, trace.peak_ratio(),
             max(trace.machines_required())))
    print("replaying at 1/50 volume on 2 invokers...\n")

    results = {}
    for method in ("fn-cache", "mitosis"):
        run = replay_spike(method, tc0_profile(), trace=trace, scale=0.02)
        latencies = run.latencies()
        results[method] = {
            "p50": percentile(latencies, 50) / params.MS,
            "p99": percentile(latencies, 99) / params.MS,
            "peak_mb": run.memory_series.max() / params.MB,
            "n": len(latencies),
        }
        hit_rate = getattr(run.policy, "hit_rate", lambda: None)()
        extra = (" (cache hit rate %.0f%%)" % (100 * hit_rate)
                 if hit_rate is not None else "")
        print("%-10s %5d invocations: p50 %8.1f ms   p99 %8.1f ms   "
              "peak memory %6.1f MB%s"
              % (method, results[method]["n"], results[method]["p50"],
                 results[method]["p99"], results[method]["peak_mb"], extra))

    fn, mitosis = results["fn-cache"], results["mitosis"]
    print("\nMITOSIS vs FN:  p50 -%.1f%%   p99 -%.1f%%   memory -%.1f%%"
          % (100 * (1 - mitosis["p50"] / fn["p50"]),
             100 * (1 - mitosis["p99"] / fn["p99"]),
             100 * (1 - mitosis["peak_mb"] / fn["peak_mb"])))
    print("paper (full scale, 18 invokers):  p50 -44.6%   p99 -95.2%   "
          "memory -96% at t=1.6min")


if __name__ == "__main__":
    main()
