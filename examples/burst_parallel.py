"""Burst-parallel fan-out: the video-processing motif from the intro.

Burst-parallel applications (video transcoding, data analytics) spawn
hundreds of short-lived workers at once.  With MITOSIS, one warmed seed
fans out to every invoker as remote forks; each worker inherits the
decoder state and configuration from the seed's memory instead of
re-initializing, and the per-machine page sharing means each invoker pulls
each hot page across the wire only once.

Run:  python examples/burst_parallel.py [num_workers]
"""

import sys

from repro import params
from repro.fn import FnCluster, MitosisPolicy
from repro.metrics import percentile
from repro.workloads import tc0_profile


def main():
    num_workers = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    fn = FnCluster(MitosisPolicy(), num_invokers=4, num_machines=7,
                   num_dfs_osds=2, seed=11)
    profile = tc0_profile()

    def scenario():
        yield from fn.register(profile)
        seed_invoker, seed, _ = fn.policy.seeds["TC0"]
        # The seed carries shared state every worker will read.
        heap = seed.task.address_space.vmas[3]
        yield from seed.kernel.write_page(
            seed.task, heap.start_vpn, "decoder-config-v7")

        print("fanning out %d workers from one seed on invoker %d ..."
              % (num_workers, seed_invoker.index))
        start = fn.env.now
        procs = [fn.submit("TC0") for _ in range(num_workers)]
        for proc in procs:
            yield proc
        makespan = fn.env.now - start

        latencies = [r.latency for r in fn.records]
        print("all %d workers finished in %.0f ms "
              "(%.0f starts/s; p50 %.1f ms, p99 %.1f ms)"
              % (num_workers, makespan / params.MS,
                 num_workers / (makespan / params.SEC),
                 percentile(latencies, 50) / params.MS,
                 percentile(latencies, 99) / params.MS))

        reads = hits = 0
        for node in fn.deployment.nodes():
            counters = node.pager.counters.as_dict()
            reads += counters.get("rdma_reads", 0)
            hits += (counters.get("shared_hits", 0)
                     + counters.get("coalesced_faults", 0))
        print("remote page reads: %d;  served locally by page sharing / "
              "fault coalescing: %d (%.0f%% of demand)"
              % (reads, hits, 100 * hits / max(1, reads + hits)))
        print("provisioned containers cluster-wide: 1 (the seed)")

    fn.env.run(fn.env.process(scenario()))


if __name__ == "__main__":
    main()
