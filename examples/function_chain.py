"""Function chains: transparent data sharing through multi-hop fork.

Models an image-processing pipeline of three dependent functions (the
Fig. 8 scenario): each stage runs on a different machine, is forked from
its predecessor, and reads its predecessors' intermediate results straight
out of inherited memory — func2 pulls data[1] from func1's machine and
data[0] from func0's machine, routed by the owner bits in its PTEs.

Run:  python examples/function_chain.py
"""

from repro import params
from repro.fn import DagScheduler, FnCluster, MitosisPolicy
from repro.workloads import tc0_profile


def main():
    fn = FnCluster(MitosisPolicy(), num_invokers=3, num_machines=6,
                   num_dfs_osds=2, seed=7)
    scheduler = DagScheduler(fn)
    profile = tc0_profile()

    def stage_writer(container, hop):
        """Each stage leaves its result in a global variable."""
        vpn = scheduler.heap_vpn(container, offset=100 + hop)
        yield from container.kernel.write_page(
            container.task, vpn, "stage-%d-result" % hop)
        print("  stage %d wrote its result on m%d"
              % (hop, container.machine.machine_id))

    def scenario():
        yield from fn.register(profile)
        print("running a 3-stage chain across invokers 0 -> 1 -> 2 ...")
        result = yield from scheduler.run_chain(
            [profile, profile, profile], [0, 1, 2],
            payload_vpn_writer=stage_writer)
        for hop, latency in enumerate(result.hop_latencies):
            print("  hop %d finished in %.1f ms" % (hop, latency / params.MS))

        # The last stage transparently reads both predecessors' results.
        last = result.last_container
        print("\nfinal stage (m%d) reads its ancestors' results:"
              % last.machine.machine_id)
        for hop in range(2):
            vpn = scheduler.heap_vpn(last, offset=100 + hop)
            start = fn.env.now
            content = yield from last.kernel.touch(last.task, vpn)
            owner = last.task.address_space.page_table.entry(vpn)
            print("  read %r in %.1f us (PTE owner index at fault: hop %d)"
                  % (content, fn.env.now - start, hop))

        node2 = fn.deployment.node(fn.invokers[2].machine)
        print("\npager counters on the final machine: %s"
              % node2.pager.counters.as_dict())

        # The DAG is done: tear down and GC the temporary descriptors.
        yield from scheduler.finish_chain(result)
        print("chain finished; temporary descriptors garbage-collected")

    fn.env.run(fn.env.process(scenario()))


if __name__ == "__main__":
    main()
