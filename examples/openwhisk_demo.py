"""MITOSIS under an OpenWhisk-style framework (the §5 generality claim).

OpenWhisk's activation path differs from Fn's — controller, message bus,
per-invoker worker loops, and a prewarm model based on *generic* stem
cells that must be specialized with an explicit /init call.  Remote fork
slots in as the miss path anyway, and skips /init entirely because the
forked child inherits the specialized runtime state.

Run:  python examples/openwhisk_demo.py
"""

from repro import params
from repro.metrics import percentile
from repro.openwhisk import OpenWhiskCluster
from repro.workloads import tc0_profile


def burst(mode, n=60):
    """Run an n-activation burst and summarize the start kinds."""
    ow = OpenWhiskCluster(mode=mode, num_invokers=3, num_machines=6, seed=4)

    def body():
        yield from ow.register(tc0_profile())
        procs = [ow.submit("TC0") for _ in range(n)]
        for p in procs:
            yield p

    ow.env.run(ow.env.process(body()))
    kinds = {}
    for a in ow.activations:
        kinds[a.start_kind] = kinds.get(a.start_kind, 0) + 1
    latencies = [a.latency for a in ow.activations]
    return kinds, latencies


def main():
    print("burst of 60 activations on a 3-invoker OpenWhisk deployment:\n")
    for mode in ("vanilla", "mitosis"):
        kinds, latencies = burst(mode)
        print("%-8s starts: %s" % (mode, kinds))
        print("%-8s p50 %.1f ms   p99 %.1f ms\n"
              % ("", percentile(latencies, 50) / params.MS,
                 percentile(latencies, 99) / params.MS))
    print("vanilla pays stem-cell creation + /init on every miss;")
    print("MITOSIS forks the specialized seed instead — no /init, one")
    print("provisioned container for the whole cluster.")


if __name__ == "__main__":
    main()
