"""Legacy setup shim: lets ``pip install -e .`` work without the ``wheel``
package (this environment is offline and has no bdist_wheel support)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "MITOSIS (OSDI 2023) reproduction: RDMA-codesigned remote fork for "
        "serverless computing, on a discrete-event simulated cluster"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
