"""A container: one task plus its isolation boundary and lifecycle state."""

from itertools import count



class ContainerState:
    """Lifecycle states a container moves through."""

    CREATED = "created"
    RUNNING = "running"
    PAUSED = "paused"
    DEAD = "dead"


class Container:  # reprolint: owner=machine
    """A running (or paused) instance of a container image."""

    _ids = count(1)

    def __init__(self, image, task, cgroup):
        self.container_id = next(Container._ids)
        self.image = image
        self.task = task
        self.cgroup = cgroup
        self.state = ContainerState.CREATED
        #: Extra accounting the startup path added (e.g. CRIU binary).
        self.extra_overhead_bytes = 0

    @property
    def machine(self):
        """The machine this container runs on."""
        return self.task.machine

    @property
    def kernel(self):
        """The kernel of the container's machine."""
        return self.task.kernel

    def memory_bytes(self):
        """Resident set + fixed runtime overhead (what Figs. 11b/12b plot)."""
        return (self.task.address_space.resident_bytes
                + self.image.runtime_overhead_bytes
                + self.extra_overhead_bytes)

    def mark_running(self):
        """Transition the container to RUNNING."""
        self.state = ContainerState.RUNNING

    def __repr__(self):
        return "<Container %d %s %s on m%d>" % (
            self.container_id, self.image.name, self.state,
            self.machine.machine_id)


class ContainerAccountant:  # reprolint: owner=machine
    """Tracks live containers per machine for the memory figures."""

    def __init__(self):
        self._by_machine = {}

    def register(self, container):
        """Start tracking a container."""
        self._by_machine.setdefault(
            container.machine.machine_id, []).append(container)

    def forget(self, container):
        """Stop tracking a container."""
        bucket = self._by_machine.get(container.machine.machine_id, [])
        if container in bucket:
            bucket.remove(container)

    def live_on(self, machine):
        """Non-dead tracked containers on ``machine``."""
        return [c for c in self._by_machine.get(machine.machine_id, [])
                if c.state != ContainerState.DEAD]

    def memory_on(self, machine):
        """Total tracked container memory on ``machine``."""
        return sum(c.memory_bytes() for c in self.live_on(machine))

    def total_memory(self):
        """Total tracked container memory cluster-wide."""
        return sum(
            c.memory_bytes()
            for bucket in self._by_machine.values()
            for c in bucket if c.state != ContainerState.DEAD)
