"""The Docker-like container runtime on each machine.

Provides the three start paths the paper compares:

* **cold start** — build everything from scratch (783 ms for TC0);
* **cached warm start** — unpause a kept-alive instance (<1 ms, but the
  per-machine docker daemon serializes pause/unpause, capping one invoker
  at ~1,300 starts/s, §6.1);
* **lean start** — take a pooled cgroup + namespaces and hand back an
  empty container shell in ~10 ms (SOCK's lean containers, §4.1), which
  C/R restore and MITOSIS both build on.
"""

from .. import params
from ..kernel import NamespaceSet, VmaKind
from ..sim import Resource
from .container import Container, ContainerState


class ContainerRuntime:  # reprolint: owner=machine
    """Per-machine runtime daemon."""

    def __init__(self, env, kernel):
        self.env = env
        self.kernel = kernel
        self.machine = kernel.machine
        #: The dockerd control path is serialized (pause/unpause bottleneck).
        self.daemon = Resource(env, capacity=1)

    # --- Start paths -----------------------------------------------------------
    def cold_start(self, image):
        """Start a container from scratch.  Generator returning the container.

        Pays full containerization + managed-runtime initialisation, then
        materializes the warmed memory layout.
        """
        yield self.machine.sandbox_slots.acquire()
        try:
            yield self.env.timeout(image.cold_start_latency)
            container = self._materialize(image)
        finally:
            self.machine.sandbox_slots.release()
        container.mark_running()
        return container

    def lean_start_empty(self, image, extra_slot_time=0.0):
        """SOCK-style fast containerization: pooled isolation, empty shell.

        Generator returning an *empty* container (no memory state) in
        ~10 ms; the caller (C/R restore or MITOSIS resume) fills in the
        execution state.  ``extra_slot_time`` is the caller's CPU-bound
        state-rebuild work, charged while still holding the sandbox slot —
        it is the per-invoker start-throughput limiter (§6.1: fork latency
        is dominated by initializing the sandbox environment).
        """
        yield self.machine.sandbox_slots.acquire()
        try:
            cgroup = yield from self.kernel.cgroup_pool.take()
            yield self.env.timeout(params.LEAN_CONTAINERIZATION
                                   + extra_slot_time)
        finally:
            self.machine.sandbox_slots.release()
        task = self.kernel.create_task(name=image.name)
        task.namespaces = NamespaceSet()
        container = Container(image, task, cgroup)
        return container

    def pause(self, container):
        """Pause a running container (kept warm in the cache).  Generator."""
        yield self.daemon.acquire()
        try:
            yield self.env.timeout(params.CACHE_UNPAUSE_LATENCY)
        finally:
            self.daemon.release()
        container.state = ContainerState.PAUSED

    def unpause(self, container):
        """Resume a paused container — the cached warm start.  Generator."""
        if container.state != ContainerState.PAUSED:
            raise ValueError("cannot unpause %r" % (container,))
        yield self.daemon.acquire()
        try:
            yield self.env.timeout(params.CACHE_UNPAUSE_LATENCY)
        finally:
            self.daemon.release()
        container.mark_running()
        return container

    def destroy(self, container):
        """Tear a container down and release its resources."""
        container.state = ContainerState.DEAD
        self.kernel.cgroup_pool.give_back(container.cgroup)
        container.task.exit()

    # --- Helpers ------------------------------------------------------------------
    def _materialize(self, image):
        """Build a warmed task implementing the image's memory layout."""
        task = self.kernel.create_task(name=image.name)
        for kind, pages, writable in image.layout.regions():
            task.address_space.add_vma(pages, kind, writable=writable)
        self.kernel.warm(task)
        cgroup_source = self.kernel.cgroup_pool
        cgroup = cgroup_source._free.pop() if cgroup_source._free else None
        if cgroup is None:
            from ..kernel import Cgroup
            cgroup = Cgroup()
        return Container(image, task, cgroup)

    def stack_vma(self, container):
        """The container's stack VMA (tests and growth paths)."""
        for vma in container.task.address_space.vmas:
            if vma.kind == VmaKind.STACK:
                return vma
        raise ValueError("container %r has no stack VMA" % (container,))
