"""Containers: images, lifecycle, and the Docker-like per-machine runtime."""

from .container import Container, ContainerAccountant, ContainerState
from .image import (
    ContainerImage,
    MemoryLayout,
    hello_world_image,
    image_resize_image,
)
from .runtime import ContainerRuntime

__all__ = [
    "Container",
    "ContainerAccountant",
    "ContainerImage",
    "ContainerRuntime",
    "ContainerState",
    "MemoryLayout",
    "hello_world_image",
    "image_resize_image",
]
