"""Container images: the static recipe a container is instantiated from.

An image describes the memory layout a warmed function container ends up
with (code, shared libraries, heap, ...), the on-disk image size (what C/R
must checkpoint/copy), and the cold-start cost of building it from scratch
(container creation + managed-runtime initialisation, §2.3).
"""

from .. import params
from ..kernel import VmaKind


class MemoryLayout:  # reprolint: owner=message
    """Page counts per region of a warmed container."""

    def __init__(self, code_pages, lib_pages, data_pages, heap_pages,
                 stack_pages=16):
        for name, value in (("code", code_pages), ("lib", lib_pages),
                            ("data", data_pages), ("heap", heap_pages),
                            ("stack", stack_pages)):
            if value <= 0:
                raise ValueError("%s_pages must be positive, got %r" % (name, value))
        self.code_pages = code_pages
        self.lib_pages = lib_pages
        self.data_pages = data_pages
        self.heap_pages = heap_pages
        self.stack_pages = stack_pages

    @property
    def total_pages(self):
        """Total pages across all regions."""
        return (self.code_pages + self.lib_pages + self.data_pages
                + self.heap_pages + self.stack_pages)

    @property
    def total_bytes(self):
        """Total bytes across all regions."""
        return self.total_pages * params.PAGE_SIZE

    def regions(self):
        """(kind, pages, writable) tuples in mapping order."""
        return [
            (VmaKind.CODE, self.code_pages, False),
            (VmaKind.SHARED_LIB, self.lib_pages, False),
            (VmaKind.DATA, self.data_pages, True),
            (VmaKind.HEAP, self.heap_pages, True),
            (VmaKind.STACK, self.stack_pages, True),
        ]


class ContainerImage:  # reprolint: owner=message
    """A registered function's container image."""

    def __init__(self, name, layout, image_file_bytes, cold_start_latency,
                 runtime_overhead_bytes=params.MB):
        self.name = name
        self.layout = layout
        #: Size of the checkpoint/image file C/R must produce and move.
        self.image_file_bytes = image_file_bytes
        #: Full from-scratch start: container build + runtime init (§2.3).
        self.cold_start_latency = cold_start_latency
        #: Fixed non-page memory of a running instance (runtime structures).
        self.runtime_overhead_bytes = runtime_overhead_bytes

    def __repr__(self):
        return "<ContainerImage %s %.1fMB>" % (
            self.name, self.layout.total_bytes / params.MB)


def hello_world_image():
    """TC0: the ServerlessBench Python hello-world (10.2 MB image)."""
    layout = MemoryLayout(code_pages=50, lib_pages=800, data_pages=64,
                          heap_pages=400, stack_pages=16)
    return ContainerImage(
        "tc0-hello-world", layout,
        image_file_bytes=int(10.2 * params.MB),
        cold_start_latency=params.DOCKER_COLD_START)


def image_resize_image():
    """TC1: the ServerlessBench image-processing function (38 MB image)."""
    layout = MemoryLayout(code_pages=120, lib_pages=2400, data_pages=512,
                          heap_pages=4000, stack_pages=32)
    return ContainerImage(
        "tc1-image-resize", layout,
        image_file_bytes=38 * params.MB,
        cold_start_latency=1.9 * params.SEC)
