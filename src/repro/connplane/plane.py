"""The cluster-wide connection control plane.

One :class:`ConnPlane` per :class:`~repro.fn.framework.FnCluster`,
installed by ``enable_connplane()``.  It owns a
:class:`~repro.connplane.pool.QpPool` and an
:class:`~repro.connplane.advert.AdvertCache` per deployed machine and
wires itself into the seams the rest of the stack already exposes:

* **push on (re-)registration** — :meth:`advertise` runs whenever the
  policy records a seed (provision, re-election, promotion, renewal,
  migration) and pushes the advert to every likely invoker in the
  background (a one-way UD datagram each, off the fork critical path);
* **piggyback on LB heartbeats** — :meth:`on_heartbeat` re-pushes any
  advert a healthy invoker is missing (it lost them in a crash, or a
  push datagram was dropped);
* **suspicion-aware prefill** — pushes skip invokers the health monitor
  considers suspect, so prefill never warms a machine about to be
  evicted;
* **invalidation** — machine crashes wipe the local pool + cache and
  every remote QP/advert pointing at the dead machine
  (:meth:`on_machine_crash`); lineage fences drop superseded adverts
  the moment a daemon learns the floor (:meth:`on_fence`); the pager
  reports dead peers so their pooled QPs die early
  (:meth:`on_peer_dead`).
"""

from .. import params
from ..metrics import CounterSet
from .advert import AdvertCache, AdvertEntry
from .pool import QpPool


class ConnPlane:  # reprolint: owner=cluster
    """Swift-style connection control plane over one MITOSIS deployment."""

    def __init__(self, env, deployment, rpc,
                 pool_bytes=params.CONNPLANE_POOL_BYTES):
        self.env = env
        self.deployment = deployment
        # Concurrent _push processes share these read-mostly handles; the
        # counter bumps commute, so the _eid tie-break cannot change any
        # observable outcome — a known coupling, suppressed narrowly.
        self.rpc = rpc  # reprolint: disable=tie-order-hazard
        self.counters = CounterSet()  # reprolint: disable=tie-order-hazard
        #: machine_id -> QpPool / AdvertCache.
        self.pools = {}
        self.caches = {}
        #: function name -> (node, descriptor, meta) of the live seed —
        #: what heartbeat piggybacking re-pushes to amnesiac invokers.
        self._published = {}
        #: Callable returning the cluster's invokers (set by the FN layer).
        self._invokers = lambda: ()
        for node in deployment.nodes():
            mid = node.machine.machine_id
            self.pools[mid] = QpPool(env, node.machine, self.counters,
                                     capacity_bytes=pool_bytes)
            self.caches[mid] = AdvertCache(node.machine, self.counters)
            node.connplane = self
            node.service.connplane = self
            node.pager.connplane = self

    def attach_invokers(self, invokers_fn):
        """Tell the plane how to enumerate push targets."""
        self._invokers = invokers_fn

    # --- Fork-path accessors -----------------------------------------------------
    def pool(self, machine):
        """The QP pool on ``machine``."""
        return self.pools[machine.machine_id]

    def lookup(self, machine, fork_meta):
        """The cached advert for ``fork_meta`` on ``machine``, or None.

        A handle with an expired lease never hits — the caller must go
        through the authoritative renewal path first, exactly as on the
        unadvertised path.
        """
        cache = self.caches.get(machine.machine_id)
        if cache is None:
            return None
        if (fork_meta.lease_expires_at is not None
                and self.env.now > fork_meta.lease_expires_at):
            self.counters.incr("advert_misses")
            return None
        return cache.lookup(fork_meta)

    # --- Advertisement pushes ------------------------------------------------------
    def advertise(self, name, node, descriptor, meta):
        """Record ``name``'s live seed and push its advert ahead of demand.

        Called at every seed (re-)registration point; the pushes run in a
        background process so registration itself never waits on the wire.
        """
        self._published[name] = (node, descriptor, meta)
        targets = [invoker for invoker in self._invokers()
                   if self._eligible(invoker)]
        if targets:
            self.env.process(self._push(name, node, descriptor, meta, targets))

    def _eligible(self, invoker):
        """Suspicion-aware prefill: skip dead or suspect invokers."""
        if not getattr(invoker, "alive", True):
            return False
        return (getattr(invoker, "suspicion", 0.0)
                < params.FN_SUSPECT_THRESHOLD)

    def _push(self, name, node, descriptor, meta, targets):
        """Push one advert to ``targets``, one UD datagram each.  Generator."""
        for invoker in targets:
            if self._published.get(name, (None,) * 3)[2] is not meta:
                return  # superseded mid-push; the newer push takes over
            cache = self.caches.get(invoker.machine.machine_id)
            if cache is None or cache.has(name, meta):
                continue
            delivered = yield from self.rpc.push(
                node.machine, invoker.machine, descriptor.advert_bytes)
            self.counters.incr("advert_pushes")
            if not delivered:
                continue  # heartbeat piggybacking will retry later
            yield self.env.timeout(params.CONNPLANE_ADVERT_APPLY_LATENCY)
            cache.install(AdvertEntry(name, meta, descriptor, node.machine))
            self._maybe_prewarm(invoker, node.machine)

    def _maybe_prewarm(self, invoker, parent_machine):
        """Warm an RC QP toward the advertised seed ahead of the first fork."""
        try:
            node = self.deployment.node(invoker.machine)
        except ValueError:
            return
        if node.transport != "rc":
            return
        if invoker.machine.machine_id == parent_machine.machine_id:
            return
        pool = self.pools.get(invoker.machine.machine_id)
        if pool is not None:
            self.env.process(pool.prewarm(parent_machine))

    def on_heartbeat(self, invoker):
        """LB heartbeat piggyback: re-push anything this invoker is missing."""
        if not self._published or not self._eligible(invoker):
            return
        cache = self.caches.get(invoker.machine.machine_id)
        if cache is None:
            return
        for name, (node, descriptor, meta) in list(self._published.items()):
            if not cache.has(name, meta):
                self.env.process(
                    self._push(name, node, descriptor, meta, [invoker]))

    # --- Invalidation ---------------------------------------------------------------
    def on_machine_crash(self, machine_id):
        """Fail-stop wipe: local pool + cache die; remote state pointing at
        the dead machine (warm QPs, adverts, published seeds) dies with it."""
        pool = self.pools.get(machine_id)
        if pool is not None:
            pool.invalidate_all()
        cache = self.caches.get(machine_id)
        if cache is not None:
            cache.clear()
        for mid, other in self.pools.items():
            if mid != machine_id:
                other.invalidate_peer(machine_id)
        for mid, other in self.caches.items():
            if mid != machine_id:
                other.drop_machine(machine_id)
        for name in list(self._published):
            _, _, meta = self._published[name]
            if meta.machine_id == machine_id:
                del self._published[name]

    def on_peer_dead(self, machine, peer_machine_id):
        """Pager-observed dead peer: its pooled QPs on ``machine`` are junk."""
        pool = self.pools.get(machine.machine_id)
        if pool is not None:
            pool.invalidate_peer(peer_machine_id)

    def on_fence(self, name, floor):
        """Lineage fence: drop every advert of ``name`` below ``floor``."""
        for cache in self.caches.values():
            cache.drop_below_generation(name, floor)
        published = self._published.get(name)
        if published is not None:
            meta = published[2]
            if meta.generation is not None and meta.generation < floor:
                del self._published[name]

    # --- Quiescence -----------------------------------------------------------------
    def stats(self):
        """Counter snapshot plus pool/cache occupancy, for experiments."""
        return {
            "counters": self.counters.as_dict(),
            "pooled_bytes": {mid: pool.pooled_bytes
                             for mid, pool in self.pools.items()},
            "cached_adverts": {mid: len(cache)
                               for mid, cache in self.caches.items()},
        }
