"""Per-machine warm RC QP pools: the connection cache half of the plane.

State machine of one pooled QP (a :class:`_PoolEntry`):

    (created) --acquire--> BUSY (refs >= 1, pinned — never evicted)
    BUSY --release, refs hits 0, usable--> WARM (on the LRU)
    WARM --acquire--> BUSY        (a pool *hit*: no handshake, no 700/s slot)
    WARM --LRU overflow--> closed (evicted; memory charge freed)
    any  --peer crash / QP error--> closed (invalidated)

Capacity is counted in **bytes of warm-QP footprint**
(:data:`~repro.params.CONNPLANE_POOL_BYTES`, ``RCQP_FOOTPRINT_BYTES``
each) so eviction spends the same currency the machine's memory account
charges.  Busy (pinned) QPs may transiently exceed the budget — eviction
never touches an in-use QP.

Creation is lazy, single-flight, and doorbell-batched: every miss to a
peer enqueues a grant, and one *creator process* per peer drains the
queue in batches of up to :data:`~repro.params.CONNPLANE_CREATE_BATCH`
through :meth:`Rnic.create_rc_qps` — one serialized factory pass and one
shared 4 ms handshake per batch, which is what amortizes the 700/s
creation rate across a fork storm.  Misses that arrive while a batch is
mid-creation land in the *next* batch; once a QP exists, co-located
children share it through refcounted leases instead of creating more.
"""

from collections import OrderedDict

from .. import params
from ..rdma import ConnectionError_
from ..sim import Event


class QpLease:  # reprolint: owner=machine
    """A refcounted claim on one pooled QP; release returns it warm.

    Co-located children forking from the same parent share one QP, each
    holding its own lease — the pool entry stays pinned until every
    lease is released (:meth:`release` is idempotent).
    """

    __slots__ = ("pool", "entry", "released")

    def __init__(self, pool, entry):
        self.pool = pool
        self.entry = entry
        self.released = False

    @property
    def qp(self):
        """The leased :class:`~repro.rdma.qp.RcQp`."""
        return self.entry.qp

    def release(self):
        """Drop this claim; at refcount zero the QP parks warm."""
        if self.released:
            return
        self.released = True
        self.pool._release(self.entry)


class _PoolEntry:  # reprolint: owner=machine
    __slots__ = ("qp", "peer_id", "refs", "pooled")

    def __init__(self, qp, peer_id):
        self.qp = qp
        self.peer_id = peer_id
        self.refs = 0
        #: True while the entry holds a memory charge in the pool;
        #: cleared exactly once, on eviction/invalidation/discard.
        self.pooled = True


class QpPool:  # reprolint: owner=machine
    """The warm RC QP cache on one machine."""

    def __init__(self, env, machine, counters,
                 capacity_bytes=params.CONNPLANE_POOL_BYTES):
        self.env = env
        self.machine = machine
        self.nic = machine.nic
        self.capacity_bytes = capacity_bytes
        #: Shared plane-wide counter set (pool_hits / pool_misses / ...).
        self.counters = counters
        #: peer machine_id -> [entries] (busy and warm).
        self._by_peer = {}
        #: Warm (refs == 0) entries in LRU order, oldest first.
        self._lru = OrderedDict()
        #: peer machine_id -> queued miss grants awaiting the creator.
        self._demand = {}
        #: peer machine_id -> the batch its creator is mid-creating, so a
        #: fail-stop wipe can fail those grants too (they already left
        #: ``_demand``).
        self._inflight = {}
        #: peer machine_id -> live creator Process.
        self._creators = {}
        #: Lease conservation: issued - released must equal the sum of
        #: live refcounts at quiescence (``audit_connplane``).
        self.leases_issued = 0
        self.leases_released = 0

    # --- Accounting ------------------------------------------------------------
    @property
    def pooled_bytes(self):
        """Total footprint of every pooled QP (busy + warm) — the memory
        charge this pool holds against its machine's account."""
        return sum(e.qp.footprint for entries in self._by_peer.values()
                   for e in entries)

    @property
    def warm_bytes(self):
        """Footprint of the evictable (refs == 0) entries only."""
        return sum(e.qp.footprint for e in self._lru)

    def entries(self):
        """Every live entry (the sanitizer's iteration surface)."""
        return [e for entries in self._by_peer.values() for e in entries]

    def live_refs(self):
        """Sum of refcounts across the pool."""
        return sum(e.refs for e in self.entries())

    # --- Acquire / release ------------------------------------------------------
    def acquire(self, peer_machine):
        """Claim a usable QP to ``peer_machine``.  Generator -> QpLease.

        Hit (a warm or shareable busy QP exists): zero simulated time —
        that is the whole point.  Miss: enqueue a grant for the peer's
        creator process, which batch-creates for every queued miss.
        """
        entry = self._pick(peer_machine.machine_id)
        if entry is not None:
            return self._lease(entry, shared=entry.refs > 0)
        self.counters.incr("pool_misses")
        grant = self._enqueue(peer_machine)
        lease = yield grant
        return lease

    def _enqueue(self, peer_machine):
        peer_id = peer_machine.machine_id
        grant = Event(self.env)
        self._demand.setdefault(peer_id, []).append(grant)
        grant._abandon = lambda: self._abandon_grant(peer_id, grant)
        if peer_id not in self._creators:
            self._creators[peer_id] = self.env.process(
                self._creator(peer_machine))
        return grant

    def _abandon_grant(self, peer_id, grant):
        """A queued miss was interrupted: withdraw it, or release the
        lease it was granted but will never see (mirrors Resource)."""
        if grant.triggered:
            if grant._ok:
                grant._value.release()
        else:
            queue = self._demand.get(peer_id)
            if queue is not None and grant in queue:
                queue.remove(grant)

    def _creator(self, peer_machine):
        """Drain queued misses toward one peer in batched factory passes."""
        peer_id = peer_machine.machine_id
        try:
            while self._demand.get(peer_id):
                batch = self._demand[peer_id][:params.CONNPLANE_CREATE_BATCH]
                del self._demand[peer_id][:len(batch)]
                self._inflight[peer_id] = batch
                try:
                    qps = yield from self.nic.create_rc_qps(
                        peer_machine, len(batch))
                except BaseException as exc:
                    for grant in batch:
                        if not grant.triggered:
                            grant.fail(exc)
                    raise
                if len(batch) > 1:
                    self.counters.incr("pool_batched_creates", len(batch) - 1)
                for grant, qp in zip(batch, qps):
                    entry = _PoolEntry(qp, peer_id)
                    self._by_peer.setdefault(peer_id, []).append(entry)
                    self.machine.memory.alloc(qp.footprint)
                    if grant.triggered:
                        if grant._ok:
                            # Abandoned mid-creation: park the QP warm.
                            self._lru[entry] = None
                        else:
                            # Pool wiped mid-creation: junk the fresh QP.
                            self._discard(entry)
                        continue
                    grant.succeed(self._lease(entry, hit=False))
                self._inflight.pop(peer_id, None)
                self._evict_over_capacity()
        finally:
            self._creators.pop(peer_id, None)
            self._inflight.pop(peer_id, None)

    def _pick(self, peer_id):
        """A usable entry toward ``peer_id``: warm first, else the least-
        shared busy one.  Unusable entries found on the way are discarded."""
        entries = self._by_peer.get(peer_id)
        if not entries:
            return None
        for entry in list(entries):
            if not entry.qp.usable:
                self._discard(entry)
        entries = self._by_peer.get(peer_id)
        if not entries:
            return None
        warm = [e for e in entries if e.refs == 0]
        if warm:
            return warm[0]
        return min(entries, key=lambda e: e.refs)

    def _lease(self, entry, hit=True, shared=False):
        if entry.refs == 0:
            self._lru.pop(entry, None)
        entry.refs += 1
        self.leases_issued += 1
        if hit:
            self.counters.incr("pool_shared" if shared else "pool_hits")
            tracer = self.env.tracer
            if tracer is not None and tracer.enabled:
                tracer.annotate("connplane_pool_hit", peer=entry.peer_id,
                                shared=shared)
        return QpLease(self, entry)

    def _release(self, entry):
        self.leases_released += 1
        if not entry.pooled:
            return  # invalidated while leased; charge already freed
        entry.refs -= 1
        if entry.refs > 0:
            return
        if not entry.qp.usable:
            self._discard(entry)
            return
        self._lru[entry] = None
        self._evict_over_capacity()

    def _evict_over_capacity(self):
        while self.warm_bytes > self.capacity_bytes and self._lru:
            entry, _ = self._lru.popitem(last=False)
            self._discard(entry, evicted=True)

    def _discard(self, entry, evicted=False):
        """Remove one entry from the pool, freeing its charge exactly once."""
        if not entry.pooled:
            return
        entry.pooled = False
        self._lru.pop(entry, None)
        entries = self._by_peer.get(entry.peer_id)
        if entries is not None:
            if entry in entries:
                entries.remove(entry)
            if not entries:
                del self._by_peer[entry.peer_id]
        entry.qp.close()
        self.machine.memory.free(entry.qp.footprint)
        if evicted:
            self.counters.incr("pool_evictions")

    # --- Prefill & invalidation --------------------------------------------------
    def prewarm(self, peer_machine):
        """Background acquire+release leaving one warm QP.  Generator."""
        peer_id = peer_machine.machine_id
        if self._by_peer.get(peer_id) or self._demand.get(peer_id):
            return
        self.counters.incr("pool_prewarms")
        # The release is immediate and unconditional — prewarm only parks
        # a warm QP; nothing escapes this function holding the lease.
        lease = yield from self.acquire(peer_machine)  # reprolint: disable=acquire-release-balance
        lease.release()

    def invalidate_peer(self, peer_id):
        """Drop every QP toward a crashed/cut peer.

        Warm entries vanish immediately; busy (leased) ones are closed so
        the holder sees the real RC semantics — a ConnectionError on the
        next verb — and the entry leaves the pool with its charge freed.
        """
        for entry in list(self._by_peer.get(peer_id, ())):
            self.counters.incr("pool_invalidated")
            self._discard(entry)

    def invalidate_all(self):
        """Fail-stop wipe of the whole pool (this machine crashed).

        Queued misses fail loudly (a ConnectionError, like any verb on a
        dead NIC) instead of wedging their forks forever.
        """
        for entry in self.entries():
            self.counters.incr("pool_invalidated")
            self._discard(entry)
        pending = [g for queue in self._demand.values() for g in queue]
        pending.extend(g for batch in self._inflight.values() for g in batch)
        for grant in pending:
            if not grant.triggered:
                grant.fail(ConnectionError_(
                    "QP pool on m%d wiped: machine crashed"
                    % self.machine.machine_id))
        self._demand.clear()
