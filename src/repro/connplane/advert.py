"""Per-invoker advertisement caches: ahead-of-demand handle distribution.

An *advertisement* is the record the plane pushes to likely invokers
when a seed is registered, re-elected, or migrated: the seed's fork
meta, its control DC-target handle, the per-VMA DCT keys (rkeys), the
fencing generation, and the descriptor body itself.  An invoker holding
a fresh advert forks without the per-fork descriptor-query RPC *and*
without the descriptor-body RDMA read — the two control-plane round
trips the seed pays on every miss.

Staleness is handled by construction, not by validation RPCs:

* installs are keyed by function name, so a re-advertisement atomically
  replaces the previous entry (and its by-meta index);
* lookups are keyed by :class:`~repro.core.descriptor.ForkMeta`
  identity, so a holder of a superseded handle simply *misses* and
  falls through to the authoritative RPC path, where the usual
  lease/fence machinery rejects it;
* crash and fence events drop entries eagerly (:meth:`drop_machine`,
  :meth:`drop_below_generation`).

Every cached entry charges its machine's memory account with the
advert's wire size (:attr:`ContainerDescriptor.advert_bytes`), so the
memory-conservation sanitizer catches advert leaks like any other
charge imbalance.
"""


class AdvertEntry:  # reprolint: owner=machine
    """One cached advertisement."""

    __slots__ = ("name", "meta", "descriptor", "parent_machine", "nbytes")

    def __init__(self, name, meta, descriptor, parent_machine):
        self.name = name
        self.meta = meta
        self.descriptor = descriptor
        self.parent_machine = parent_machine
        self.nbytes = descriptor.advert_bytes

    @property
    def generation(self):
        """The advertised fencing generation (None when unstamped)."""
        return self.meta.generation


class AdvertCache:  # reprolint: owner=machine
    """The advert table on one invoker machine."""

    def __init__(self, machine, counters):
        self.machine = machine
        self.counters = counters
        #: function name -> AdvertEntry (one live advert per function).
        self._by_name = {}
        #: ForkMeta -> AdvertEntry (the fork-path lookup index).
        self._by_meta = {}

    def __len__(self):
        return len(self._by_name)

    def entries(self):
        """Every live entry (the sanitizer's iteration surface)."""
        return list(self._by_name.values())

    @property
    def cached_bytes(self):
        """Memory charged by this cache against its machine's account."""
        return sum(entry.nbytes for entry in self._by_name.values())

    def install(self, entry):
        """Install (or atomically replace) the advert for ``entry.name``."""
        self._evict(self._by_name.get(entry.name))
        self.machine.memory.alloc(entry.nbytes)
        self._by_name[entry.name] = entry
        self._by_meta[entry.meta] = entry
        self.counters.incr("adverts_installed")

    def lookup(self, fork_meta):
        """The cached advert for exactly this handle, or None."""
        entry = self._by_meta.get(fork_meta)
        self.counters.incr("advert_hits" if entry is not None
                           else "advert_misses")
        return entry

    def has(self, name, meta):
        """True when the cache already holds this exact advertisement."""
        entry = self._by_name.get(name)
        return entry is not None and entry.meta == meta

    def _evict(self, entry):
        if entry is None:
            return
        self._by_name.pop(entry.name, None)
        self._by_meta.pop(entry.meta, None)
        self.machine.memory.free(entry.nbytes)

    def drop(self, name):
        """Drop one function's advert (if present)."""
        self._evict(self._by_name.get(name))

    def drop_machine(self, machine_id):
        """Drop every advert pointing at a crashed parent machine."""
        for entry in list(self._by_name.values()):
            if entry.meta.machine_id == machine_id:
                self._evict(entry)
                self.counters.incr("adverts_invalidated")

    def drop_below_generation(self, name, floor):
        """Fence composition: a superseded generation must not serve."""
        entry = self._by_name.get(name)
        if (entry is not None and entry.generation is not None
                and entry.generation < floor):
            self._evict(entry)
            self.counters.incr("adverts_fenced")

    def clear(self):
        """Fail-stop wipe (this machine crashed)."""
        for entry in list(self._by_name.values()):
            self._evict(entry)
