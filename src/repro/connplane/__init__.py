"""Swift-style RDMA connection control plane (``REPRO_CONNPLANE=1``).

The paper's own constants make connection setup the scaling wall: a 4 ms
RC handshake, ~700 RCQP creations per second per machine, and one
descriptor-query RPC per fork (§4.2).  Swift ("Rethinking RDMA Control
Plane for Elastic Computing") attacks exactly this with connection
caching and ahead-of-demand handle distribution; rFaaS shows advertised
descriptors composing with leases.  This package is that control plane
for the simulated cluster:

* :class:`~repro.connplane.pool.QpPool` — per-machine warm RC QP cache
  with LRU eviction, in-use pinning, refcounted sharing across
  co-located children, and doorbell-batched single-flight creation.
* :class:`~repro.connplane.advert.AdvertCache` — per-invoker cache of
  pushed seed advertisements (fork meta, DCT handles, rkeys, descriptor
  body), replacing the per-fork key-fetch RPC on the hit path.
* :class:`~repro.connplane.plane.ConnPlane` — the cluster-wide plane:
  advertisement pushes on seed (re-)election, heartbeat-piggybacked
  refresh, suspicion-aware prefill, and invalidation on crash/fence.

Armed via ``REPRO_CONNPLANE=1`` or :meth:`FnCluster.enable_connplane`;
off (the default) every hook is a single ``is None`` test and the event
sequence is byte-identical to the seed.
"""

import os

from .advert import AdvertCache, AdvertEntry
from .plane import ConnPlane
from .pool import QpLease, QpPool

__all__ = [
    "AdvertCache", "AdvertEntry", "ConnPlane", "QpLease", "QpPool",
    "default_connplane",
]


def default_connplane():
    """True when ``REPRO_CONNPLANE`` asks for the connection plane.

    Unset / ``0`` / ``off`` / ``none`` / ``no`` / ``false`` keep the
    layer unarmed (the seed behaviour); anything else arms it.
    """
    raw = os.environ.get("REPRO_CONNPLANE", "").strip().lower()
    return raw not in ("", "0", "off", "none", "no", "false")
