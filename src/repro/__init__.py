"""repro — a full reproduction of MITOSIS (OSDI 2023).

*No Provisioned Concurrency: Fast RDMA-codesigned Remote Fork for
Serverless Computing*, rebuilt as a production-quality Python library on a
discrete-event simulated cluster (see DESIGN.md for the substitution
rationale).

Layering (bottom-up):

* :mod:`repro.sim` — discrete-event kernel.
* :mod:`repro.cluster` — machines, racks, DRAM accounting.
* :mod:`repro.rdma` — RNICs, RC/DC/UD transports, MRs, FaSST RPC.
* :mod:`repro.kernel` — frames, page tables, VMAs, faults, local fork.
* :mod:`repro.containers` — images and the Docker-like runtime.
* :mod:`repro.criu` / :mod:`repro.dfs` — the C/R baseline and its DFS.
* :mod:`repro.core` — **MITOSIS** itself.
* :mod:`repro.fn` — the Fn serverless framework integration.
* :mod:`repro.workloads` / :mod:`repro.experiments` — traces, functions,
  and one harness per table/figure in the paper.
"""

from . import params

__version__ = "1.0.0"

__all__ = ["params", "__version__"]
