"""The authoritative seed-lineage registry (LB-side, crash-recoverable).

Tracks, per function lineage (one warm seed family):

* the **generation** — a monotonic fencing token bumped on every
  placement or re-election; stale holders are rejected by comparing
  ``held < current`` (never equality);
* the **primary placement** (invoker + descriptor handler);
* the **replica set** with per-replica **copy epochs** (how many VMAs
  the background copier has fully streamed — a replica may only serve
  VMAs below its epoch);
* active **leases**: which invokers hold the descriptor at which
  generation.  The invariant — at most one *distinct* generation among
  a lineage's active leases — is what makes fencing split-brain-safe;
* the delivered **fence** floor per lineage.

Every mutation is journaled to the :class:`~repro.lineage.wal.WriteAheadLog`
*first* and then applied through the single :meth:`_apply` path, so
:meth:`from_wal` (controller restart) rebuilds the exact same state —
``audit_lineage`` asserts this equivalence.  Mutators validate; the
apply path trusts the journal.  The registry is pure state: no events,
no randomness, no wall clock (timestamps come in as arguments).
"""

from .wal import WriteAheadLog


class LineageRegistry:  # reprolint: owner=cluster
    """Journaled authority over one cluster's seed lineages.

    Pure state machine: every mutator journals first, then applies via
    :meth:`_apply`; :meth:`from_wal` replays the journal into an
    identical registry (asserted by ``audit_lineage``).
    """

    def __init__(self, wal=None):
        self.wal = wal if wal is not None else WriteAheadLog()
        #: name -> current generation (monotonic fencing token).
        self._generations = {}
        #: name -> {"invoker": index, "handler_id": int} for the primary.
        self._placements = {}
        #: name -> {invoker_index: {"handler_id": int|None, "copy_epoch": n}}.
        self._replicas = {}
        #: name -> number of VMAs in the primary descriptor (the epoch a
        #: replica must reach before it can serve every VMA).
        self._primary_epochs = {}
        #: name -> {invoker_index: (handler_id, generation)} active leases.
        self._leases = {}
        #: name -> highest fence generation broadcast for the lineage.
        self._fences = {}
        #: name -> machine ids that ever hosted the lineage (fence targets).
        self._hosts = {}

    @classmethod
    def from_wal(cls, wal):
        """Rebuild a registry from a journal (controller restart path).

        Records are applied through the same :meth:`_apply` used live and
        are *not* re-journaled; the returned registry adopts ``wal`` so
        subsequent mutations continue the same history.
        """
        registry = cls(wal=WriteAheadLog())
        for record in wal:
            registry._apply(record)
        registry.wal = wal
        return registry

    # ------------------------------------------------------------- mutators

    def _journal(self, at, op, **payload):
        record = self.wal.append(at, op, **payload)
        self._apply(record)
        return record

    def place_primary(self, at, name, invoker, handler_id, machine_id,
                      vma_count):
        """Install (or re-install) the primary seed; bumps the generation
        and atomically replaces all leases with the primary's."""
        generation = self._generations.get(name, 0) + 1
        self._journal(at, "place_primary", name=name, invoker=invoker,
                      handler_id=handler_id, machine_id=machine_id,
                      vma_count=vma_count, generation=generation)
        return generation

    def grant_lease(self, at, name, invoker, handler_id, generation):
        """Record that ``invoker`` holds the lineage descriptor.  Stale
        grants (below the current generation) are rejected up front so a
        slow re-preparation can never resurrect an old generation."""
        if generation < self._generations.get(name, 0):
            raise ValueError(
                "stale lease grant for %r: generation %d < current %d"
                % (name, generation, self._generations.get(name, 0)))
        self._journal(at, "grant_lease", name=name, invoker=invoker,
                      handler_id=handler_id, generation=generation)

    def revoke_lease(self, at, name, invoker):
        """Drop ``invoker``'s lease (idempotent)."""
        if invoker in self._leases.get(name, {}):
            self._journal(at, "revoke_lease", name=name, invoker=invoker)

    def add_replica(self, at, name, invoker, machine_id):
        """Start tracking a replica-in-copy on ``invoker`` (epoch 0)."""
        self._journal(at, "add_replica", name=name, invoker=invoker,
                      machine_id=machine_id)

    def bump_copy_epoch(self, at, name, invoker):
        """One more VMA fully streamed to ``invoker``'s replica."""
        entry = self._replicas.get(name, {}).get(invoker)
        if entry is None:
            raise KeyError("no replica of %r on invoker %r" % (name, invoker))
        if entry["copy_epoch"] + 1 > self._primary_epochs.get(name, 0):
            raise ValueError(
                "replica copy epoch for %r on invoker %r would exceed the "
                "primary epoch %d" % (name, invoker,
                                      self._primary_epochs.get(name, 0)))
        self._journal(at, "bump_copy_epoch", name=name, invoker=invoker)

    def replica_ready(self, at, name, invoker, handler_id):
        """The replica published its own descriptor; it now holds a lease
        at the current generation."""
        generation = self._generations.get(name, 0)
        self._journal(at, "replica_ready", name=name, invoker=invoker,
                      handler_id=handler_id, generation=generation)
        return generation

    def elect(self, at, name, invoker, handler_id, vma_count):
        """Promote a replica to primary: bump the generation, adopt the
        new primary's VMA count as the full copy epoch, and atomically
        replace all leases with the new primary's (survivors re-acquire
        via :meth:`grant_lease` once they confirm adoption)."""
        generation = self._generations.get(name, 0) + 1
        self._journal(at, "elect", name=name, invoker=invoker,
                      handler_id=handler_id, generation=generation,
                      vma_count=vma_count)
        return generation

    def drop_replica(self, at, name, invoker):
        """Forget a replica (and its lease, if any).  Idempotent."""
        if invoker in self._replicas.get(name, {}):
            self._journal(at, "drop_replica", name=name, invoker=invoker)

    def fence(self, at, name, generation):
        """Raise the lineage's fence floor (max-merge; never lowers)."""
        if generation <= self._fences.get(name, -1):
            return
        self._journal(at, "fence", name=name, generation=generation)

    def retire(self, at, name):
        """Drop the whole lineage from the registry (idempotent)."""
        if name in self._generations:
            self._journal(at, "retire", name=name)

    # ----------------------------------------------------------- apply path

    def _apply(self, record):
        """Apply one journaled record.  Trusting by design: validation
        happened in the mutator before journaling, and replay must accept
        exactly what the journal says."""
        op, p = record.op, record.payload
        name = p.get("name")
        if op == "place_primary":
            self._generations[name] = p["generation"]
            self._placements[name] = {"invoker": p["invoker"],
                                      "handler_id": p["handler_id"]}
            self._primary_epochs[name] = p["vma_count"]
            self._replicas.setdefault(name, {})
            self._hosts.setdefault(name, set()).add(p["machine_id"])
            self._leases[name] = {
                p["invoker"]: (p["handler_id"], p["generation"])}
        elif op == "grant_lease":
            self._leases.setdefault(name, {})[p["invoker"]] = (
                p["handler_id"], p["generation"])
        elif op == "revoke_lease":
            self._leases.get(name, {}).pop(p["invoker"], None)
        elif op == "add_replica":
            self._replicas.setdefault(name, {})[p["invoker"]] = {
                "handler_id": None, "copy_epoch": 0}
            self._hosts.setdefault(name, set()).add(p["machine_id"])
        elif op == "bump_copy_epoch":
            self._replicas[name][p["invoker"]]["copy_epoch"] += 1
        elif op == "replica_ready":
            self._replicas[name][p["invoker"]]["handler_id"] = p["handler_id"]
            self._leases.setdefault(name, {})[p["invoker"]] = (
                p["handler_id"], p["generation"])
        elif op == "elect":
            self._generations[name] = p["generation"]
            self._placements[name] = {"invoker": p["invoker"],
                                      "handler_id": p["handler_id"]}
            self._primary_epochs[name] = p["vma_count"]
            self._replicas.get(name, {}).pop(p["invoker"], None)
            self._leases[name] = {
                p["invoker"]: (p["handler_id"], p["generation"])}
        elif op == "drop_replica":
            self._replicas.get(name, {}).pop(p["invoker"], None)
            self._leases.get(name, {}).pop(p["invoker"], None)
        elif op == "fence":
            self._fences[name] = p["generation"]
        elif op == "retire":
            for table in (self._generations, self._placements,
                          self._replicas, self._primary_epochs,
                          self._leases, self._fences, self._hosts):
                table.pop(name, None)
        else:
            raise ValueError("unknown WAL op %r" % (op,))

    # ------------------------------------------------------------ accessors

    def names(self):
        """Every lineage name, sorted."""
        return sorted(self._generations)

    def generation(self, name):
        """The lineage's current generation (0 if unknown)."""
        return self._generations.get(name, 0)

    def placement(self, name):
        """The primary placement dict, or None."""
        return self._placements.get(name)

    def replicas(self, name):
        """Replica map copy: invoker index -> {handler_id, copy_epoch}."""
        return dict(self._replicas.get(name, {}))

    def primary_epoch(self, name):
        """VMA count of the primary descriptor (the full copy epoch)."""
        return self._primary_epochs.get(name, 0)

    def leases(self, name):
        """Active leases copy: invoker index -> (handler_id, generation)."""
        return dict(self._leases.get(name, {}))

    def holder_generations(self, name):
        """The set of distinct generations among active leases — the
        split-brain invariant says this never has more than one member."""
        return {generation
                for _handler, generation in self._leases.get(name,
                                                             {}).values()}

    def fence_of(self, name):
        """The highest fence generation broadcast (0 if none)."""
        return self._fences.get(name, 0)

    def hosts(self, name):
        """Every machine id that ever hosted the lineage."""
        return set(self._hosts.get(name, ()))

    def snapshot(self):
        """A canonical, order-independent dict of the full registry state
        (what ``audit_lineage`` compares against a WAL replay)."""
        return {
            "generations": dict(self._generations),
            "placements": {n: dict(p) for n, p in self._placements.items()},
            "replicas": {n: {i: dict(r) for i, r in reps.items()}
                         for n, reps in self._replicas.items()},
            "primary_epochs": dict(self._primary_epochs),
            "leases": {n: {i: tuple(l) for i, l in leases.items()}
                       for n, leases in self._leases.items()},
            "fences": dict(self._fences),
            "hosts": {n: sorted(h) for n, h in self._hosts.items()},
        }
