"""A write-ahead log for the seed-lineage registry.

The registry journals every mutation *before* applying it, so a
controller (LB) restart can rebuild the exact placement/lease/generation
state by replaying the log through the same apply path.  In the
simulation the "disk" is an in-memory list, but the discipline is real:
the registry never mutates state except through a journaled record, and
``audit_lineage`` cross-checks that a fresh replay reproduces the live
registry byte-for-byte.
"""


class WalRecord:  # reprolint: owner=message
    """One journaled registry mutation."""

    __slots__ = ("seq", "at", "op", "payload")

    def __init__(self, seq, at, op, payload):
        self.seq = seq
        self.at = at
        self.op = op
        self.payload = payload

    def as_dict(self):
        """Plain-dict form (payload copied) for dumps and assertions."""
        return {"seq": self.seq, "at": self.at, "op": self.op,
                "payload": dict(self.payload)}

    def __repr__(self):
        return "WalRecord(seq=%d, op=%s, %r)" % (self.seq, self.op,
                                                 self.payload)


class WriteAheadLog:  # reprolint: owner=cluster
    """Append-only record store with monotonically increasing sequence
    numbers.  Records are immutable once appended; truncation/compaction
    is deliberately not offered — the audit needs full history."""

    def __init__(self):
        self._records = []

    def append(self, at, op, **payload):
        """Journal one mutation; returns the sequenced record."""
        record = WalRecord(len(self._records), at, op, payload)
        self._records.append(record)
        return record

    def __iter__(self):
        return iter(self._records)

    def __len__(self):
        return len(self._records)

    def records(self):
        """The journal as a list copy (safe to iterate while appending)."""
        return list(self._records)
