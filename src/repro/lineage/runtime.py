"""The cluster-side lineage runtime: replication, promotion, rescue.

One :class:`LineageRuntime` lives on the :class:`~repro.fn.FnCluster`
(armed by ``enable_lineage``) and owns:

* **Replication** — at provision time, K replica hosts ``fork_resume``
  the primary seed's descriptor and a copier streams every remote page
  over the existing RDMA paging paths (shared cache, doorbell batching,
  RPC fallback — all of it), bumping the replica's registry *copy epoch*
  once per fully-streamed VMA.  A fully-copied replica then publishes
  its **own** descriptor (all pages owner-hop 0, so its children never
  chain back through the dead primary).
* **Promotion** — when the primary is lost, the freshest alive replica
  is elected at a bumped generation.  Election is split-brain-safe: the
  winner and every surviving replica must *confirm adoption* of the new
  generation over RPC (unconfirmed members are dropped), and only then
  is the fence broadcast to every machine that ever hosted the lineage.
* **Orphan rescue** — :meth:`failover` rewrites a child's
  ``task.predecessors`` slot to the best surviving member, so in-flight
  and future page faults against a dead or fenced seed transparently
  re-route before the policy layer ever degrades to CRIU-from-DFS.
* **Fence delivery** — bounded-retry drivers push the fence to slow or
  flapped hosts; a revived stale primary is re-fenced the moment the
  health monitor re-admits it.

The runtime mutates authoritative state only through the journaled
:class:`~repro.lineage.registry.LineageRegistry`; everything else here
(container handles, procs, gates) is reconstructible runtime state.
"""

from .. import params
from ..faults.errors import FaultError
from ..metrics import CounterSet
from ..rdma import ConnectionError_, RpcError
from ..rdma.rpc import RpcTimeout
from ..resilience import SuspicionGate
from ..sim import Interrupt
from .registry import LineageRegistry

#: What replication/promotion steps may raise when the cluster is faulty
#: (mirrors the policy layer's ``_START_FAULTS``).
_RECOVERABLE = (FaultError, RpcError, RpcTimeout, ConnectionError_)


class _Member:  # reprolint: owner=cluster
    """One live host of a lineage: the primary or a replica."""

    __slots__ = ("invoker", "container", "meta", "descriptor", "node")

    def __init__(self, invoker, container, meta=None, descriptor=None,
                 node=None):
        self.invoker = invoker
        self.container = container
        #: ForkMeta of this member's own published descriptor (None while
        #: a replica is still copying — it cannot serve children yet).
        self.meta = meta
        self.descriptor = descriptor
        self.node = node


class LineageRuntime:  # reprolint: owner=cluster
    """Replication, promotion, fencing, and orphan rescue for seed
    lineages (see the module docstring for the full protocol)."""

    def __init__(self, fn_cluster, replicas):
        self.fn = fn_cluster
        self.env = fn_cluster.env
        #: Replicas to maintain per lineage (K in REPRO_SEED_REPLICAS=K).
        self.replicas = replicas
        self.registry = LineageRegistry()
        self.wal = self.registry.wal
        self.counters = CounterSet()
        #: name -> {invoker index: _Member} (runtime handles, not journaled).
        self._members = {}
        #: name -> in-flight promotion gate (single-flight elections).
        self._promoting = {}
        #: (machine_id, name) -> generation still owed to that machine.
        self._pending_fences = {}
        #: (machine_id, name) -> live fence-delivery process.
        self._fence_procs = {}
        #: Episode dedup for suspicion-triggered sweeps.
        self._gate = SuspicionGate()
        #: Background procs (sweeps, re-replications) for stop().
        self._procs = set()
        self._stopped = False

    # --- Registration & replication ------------------------------------------
    def register_primary(self, name, invoker, container, meta, descriptor,
                         node):
        """Record (or re-record, at a bumped generation) the primary seed.

        Stamps the descriptor with its lineage identity so every daemon
        and pager can recognize it, and — past the first generation —
        queues fences toward every historical host that is not part of
        the new member set (a re-placed lineage must still shut out the
        old one's survivors).
        """
        for idx in list(self.registry.replicas(name)):
            # A re-placed lineage starts from a clean member set; stale
            # replica entries (and their leases) must not survive it.
            self.registry.drop_replica(self.env.now, name, idx)
        generation = self.registry.place_primary(
            self.env.now, name, invoker.index, descriptor.handler_id,
            invoker.machine.machine_id, len(descriptor.vma_descriptors))
        node.service.assign_lineage(descriptor.handler_id, name, generation)
        meta.generation = generation
        self._members[name] = {
            invoker.index: _Member(invoker, container, meta=meta,
                                   descriptor=descriptor, node=node)}
        if generation > 1:
            self._broadcast_fence(name, generation)
        return generation

    def replicate(self, name):
        """Stream the lineage to up to K replica hosts.  Generator.

        Each replica is grown sequentially: fork_resume from the primary,
        copy every remote page VMA-by-VMA (bumping the journaled copy
        epoch per completed VMA), then publish the replica's own
        descriptor and grant it a lease at the current generation.  A
        replica that fails mid-copy is dropped and simply reduces the
        replica count — the lineage survives with fewer spares.
        """
        members = self._members.get(name)
        if not members:
            return 0
        placement = self.registry.placement(name)
        if placement is None:
            return 0
        primary = members.get(placement["invoker"])
        if primary is None:
            return 0
        grown = 0
        for _ in range(self.replicas):
            spares = sum(1 for idx in members
                         if idx != placement["invoker"])
            if spares >= self.replicas:
                break  # already at K (refills are idempotent)
            targets = [i for i in self.fn.invokers
                       if i.alive and i.index not in members]
            if not targets:
                break
            if self.fn.fabric.net is not None:
                # ToR-domain spread (fabric armed): a replica in a rack
                # the lineage does not cover yet survives a ToR cut and
                # gives cross-rack children a rack-local hedge target.
                covered = {members[idx].invoker.machine.rack
                           for idx in members}
                target = min(targets,
                             key=lambda i: (i.machine.rack in covered,
                                            i.machine.memory.used, i.index))
            else:
                target = min(targets,
                             key=lambda i: (i.machine.memory.used, i.index))
            if (yield from self._grow_replica(name, target, primary.meta)):
                grown += 1
        return grown

    def _grow_replica(self, name, invoker, primary_meta):
        """Create + fully copy one replica on ``invoker``.  Generator."""
        members = self._members[name]
        node = self.fn.deployment.node(invoker.machine)
        self.registry.add_replica(self.env.now, name, invoker.index,
                                  invoker.machine.machine_id)
        # Claim the slot before the first yield: concurrent replicate
        # drivers must not both pick this invoker and double-bump its
        # copy epochs.
        member = _Member(invoker, None, node=node)
        members[invoker.index] = member
        try:
            container = yield from node.fork_resume(primary_meta)
            invoker.track(container)
            member.container = container
            yield from self._copy_vmas(member, name, 0)
            yield from self._publish_replica(member, name)
        except _RECOVERABLE:
            self.counters.incr("replica_copy_failures")
            self.registry.drop_replica(self.env.now, name, invoker.index)
            members.pop(invoker.index, None)
            if (member.container is not None
                    and member.container in invoker.live_containers
                    and member.container.task.state != "dead"):
                invoker.destroy(member.container)
            return False
        self.counters.incr("replicas_grown")
        return True

    def _copy_vmas(self, member, name, start_index):
        """The copy stream: touch every still-remote page of each VMA
        from ``start_index`` on, through the ordinary paging path (RDMA
        read, shared cache, batching, fallback — whatever applies), then
        journal the completed VMA as one copy-epoch bump.  Generator."""
        task = member.container.task
        kernel = member.node.kernel
        vmas = list(task.address_space.vmas)
        table = task.address_space.page_table
        for vma in vmas[start_index:]:
            for vpn in range(vma.start_vpn, vma.end_vpn):
                pte = table.entry(vpn)
                if pte is None or pte.present or not pte.remote:
                    continue
                yield from kernel.touch(task, vpn)
                self.counters.incr("pages_replicated")
            self.registry.bump_copy_epoch(self.env.now, name,
                                          member.invoker.index)

    def _publish_replica(self, member, name):
        """Publish a fully-copied replica's own descriptor.  Generator."""
        meta = yield from member.node.fork_prepare(member.container)
        entry = member.node.service.lookup(meta.handler_id, meta.auth_key)
        if entry is None:
            raise RpcError("replica descriptor for %r vanished before "
                           "registration" % (name,))
        descriptor = entry[0]
        generation = self.registry.replica_ready(
            self.env.now, name, member.invoker.index, descriptor.handler_id)
        member.node.service.assign_lineage(descriptor.handler_id, name,
                                           generation)
        meta.generation = generation
        member.meta = meta
        member.descriptor = descriptor

    def spawn_replicate(self, name):
        """Fire-and-forget :meth:`replicate` (post-re-election refill)."""
        def driver():
            try:
                yield from self.replicate(name)
            except Interrupt:
                return
            except _RECOVERABLE:
                self.counters.incr("replicate_driver_failures")

        proc = self.env.process(driver())
        self._procs.add(proc)
        return proc

    # --- Promotion -----------------------------------------------------------
    def current_primary(self, name):
        """The primary's member record if it looks healthy, else None.

        "Healthy" is stricter than "alive": a gray primary (machine up
        but unreachable — open suspicion episode, or evicted from
        admission) must not win the promote fast path, or children would
        bounce back to the very seed they just failed against.
        """
        members = self._members.get(name)
        placement = self.registry.placement(name)
        if not members or placement is None:
            return None
        primary = members.get(placement["invoker"])
        if (primary is not None and primary.invoker.alive
                and primary.invoker.admitting
                and not self._gate.is_high(primary.invoker.index)
                and primary.meta is not None
                and primary.node.service.lookup(
                    primary.meta.handler_id,
                    primary.meta.auth_key) is not None):
            return primary
        return None

    def promote(self, name, suspect_handler=None):
        """Resolve the lineage to a servable primary.  Generator returning
        ``(invoker, container, meta)`` or None when no member survives.

        Fast path: the current primary is alive and still publishes its
        descriptor (the caller's failure was transient, or an earlier
        election already fixed things).  Otherwise a single-flight
        election promotes the freshest alive replica.

        ``suspect_handler`` is the handler id the caller just failed
        against: a "healthy"-looking primary still serving that handler
        does not win the fast path (gray failures — a partitioned seed
        looks fine to every local check), forcing a real election.
        """
        if name not in self._members:
            return None
        while True:
            primary = self.current_primary(name)
            if primary is not None and (
                    suspect_handler is None
                    or primary.meta.handler_id != suspect_handler):
                return (primary.invoker, primary.container, primary.meta)
            pending = self._promoting.get(name)
            if pending is None:
                break
            yield pending
        gate = self.env.event()
        self._promoting[name] = gate
        try:
            return (yield from self._elect(name))
        finally:
            self._promoting.pop(name, None)
            gate.succeed()

    def _elect(self, name):
        """One election round: pick, adopt, fence.  Generator."""
        members = self._members.get(name, {})
        placement = self.registry.placement(name)
        old_primary = placement["invoker"] if placement is not None else None
        replicas = self.registry.replicas(name)
        while True:
            candidates = [
                m for idx, m in members.items()
                if idx != old_primary and m.invoker.alive
                and m.meta is not None]
            if not candidates:
                return None
            # Freshest replica first: highest copy epoch, lowest index.
            winner = max(candidates, key=lambda m: (
                replicas.get(m.invoker.index, {}).get("copy_epoch", 0),
                -m.invoker.index))
            generation = self.registry.elect(
                self.env.now, name, winner.invoker.index,
                winner.meta.handler_id,
                len(winner.descriptor.vma_descriptors))
            if not (yield from self._adopt(winner, name, generation)):
                # The winner never confirmed the new generation: it may
                # not be trusted to serve at it — drop it and re-elect.
                self.registry.drop_replica(self.env.now, name,
                                           winner.invoker.index)
                members.pop(winner.invoker.index, None)
                continue
            winner.meta.generation = generation
            for idx, member in list(members.items()):
                if idx in (winner.invoker.index, old_primary):
                    continue
                if member.meta is None:
                    continue  # still copying; not a lease holder
                if (yield from self._adopt(member, name, generation)):
                    member.meta.generation = generation
                    self.registry.grant_lease(
                        self.env.now, name, idx, member.meta.handler_id,
                        generation)
                else:
                    self.registry.drop_replica(self.env.now, name, idx)
                    members.pop(idx, None)
            if old_primary is not None:
                members.pop(old_primary, None)
            self.counters.incr("promotions")
            self._broadcast_fence(name, generation)
            return (winner.invoker, winner.container, winner.meta)

    def _adopt(self, member, name, generation):
        """Ask one member's daemon to adopt ``generation``.  Generator
        returning True only on an explicit confirmation."""
        try:
            yield from self.fn.rpc.call(
                self.fn.lb_machine, member.invoker.machine,
                "mitosis.adopt_generation",
                {"handler_id": member.meta.handler_id, "name": name,
                 "generation": generation},
                request_bytes=32, deadline=params.RPC_DEFAULT_DEADLINE,
                retries=params.RPC_MAX_RETRIES)
        except _RECOVERABLE:
            self.counters.incr("adoptions_failed")
            return False
        return True

    # --- Fencing -------------------------------------------------------------
    def _broadcast_fence(self, name, generation):
        """Queue fence delivery to every historical host of the lineage
        that is not a confirmed member of the current generation."""
        self.registry.fence(self.env.now, name, generation)
        members = self._members.get(name, {})
        confirmed = {m.invoker.machine.machine_id for m in members.values()}
        for machine_id in self.registry.hosts(name):
            if machine_id in confirmed:
                continue
            key = (machine_id, name)
            queued = self._pending_fences.get(key)
            if queued is not None and queued > generation:
                continue
            self._pending_fences[key] = generation
            self._spawn_fence(machine_id, name)

    def _spawn_fence(self, machine_id, name):
        key = (machine_id, name)
        if key in self._fence_procs:
            return
        proc = self.env.process(self._fence_driver(machine_id, name))
        self._fence_procs[key] = proc
        self._procs.add(proc)

    def _fence_driver(self, machine_id, name):
        """Push the pending fence to one machine, bounded retries."""
        key = (machine_id, name)
        try:
            machine = self.fn.deployment.machine_by_id(machine_id)
            for _ in range(params.LINEAGE_FENCE_MAX_TRIES):
                generation = self._pending_fences.get(key)
                if generation is None:
                    return
                try:
                    yield from self.fn.rpc.call(
                        self.fn.lb_machine, machine,
                        "mitosis.fence_lineage",
                        {"name": name, "generation": generation},
                        request_bytes=32,
                        deadline=params.RPC_DEFAULT_DEADLINE, retries=0)
                except _RECOVERABLE:
                    self.counters.incr("fence_retries")
                    yield self.env.timeout(
                        params.LINEAGE_FENCE_RETRY_PERIOD)
                    continue
                self.counters.incr("fences_delivered")
                queued = self._pending_fences.get(key)
                if queued is not None and queued > generation:
                    continue  # a newer fence arrived while we delivered
                self._pending_fences.pop(key, None)
                return
            # Out of tries: the fence stays pending; re-admission of the
            # host re-arms a fresh driver (see on_invoker_readmitted).
            self.counters.incr("fences_parked")
        except Interrupt:
            return
        finally:
            self._fence_procs.pop(key, None)

    # --- Orphan rescue -------------------------------------------------------
    def failover(self, task, pte, vpn):
        """Re-route one child's faulting owner slot to a surviving member.

        Plain synchronous method (no events) called from the pager's
        rescue loop.  Rewrites ``task.predecessors[pte.owner_index]`` —
        which every future fault through that owner also follows — and
        returns True; False means nothing better exists (same member, no
        lineage, nobody alive) and the caller must let the error stand.
        """
        try:
            _owner_machine, owner_desc = task.predecessors[pte.owner_index]
        except (LookupError, AttributeError):
            return False
        name = getattr(owner_desc, "lineage", None)
        if name is None:
            return False
        members = self._members.get(name)
        if not members:
            return False
        candidates = []
        primary = self.current_primary(name)
        if primary is not None:
            candidates.append(primary)
        replicas = self.registry.replicas(name)
        spares = [members[idx] for idx in replicas
                  if idx in members and members[idx].invoker.alive
                  and members[idx].descriptor is not None]
        spares.sort(key=lambda m: (
            -replicas[m.invoker.index]["copy_epoch"], m.invoker.index))
        candidates.extend(spares)
        for member in candidates:
            descriptor = member.descriptor
            if descriptor is None or descriptor.uid == owner_desc.uid:
                continue
            if descriptor.find_vma(vpn) is None:
                continue
            snap = descriptor.pte_snapshots.get(vpn)
            if snap is not None and snap.owner_hop > 0:
                # That member would only bounce the fault further up the
                # (dead) lineage — not a rescue.
                continue
            if member.node.service.lookup(descriptor.handler_id,
                                          descriptor.auth_key) is None:
                continue
            task.predecessors[pte.owner_index] = (member.invoker.machine,
                                                  descriptor)
            self.counters.incr("failovers")
            return True
        return False

    def rack_local_member(self, name, rack, vpn):
        """A live member in ``rack`` able to serve ``vpn`` right now.

        The pager's topology-aware hedging asks for this when the
        primary owner sits across the spine: the hedge leg then reads a
        rack-local replica instead of doubling down on the congested
        cross-rack path.  Returns ``(machine, descriptor)`` or None.
        Candidate filtering mirrors :meth:`failover`: a published
        descriptor covering the page, no upward owner hop, and a
        directory entry that still resolves.
        """
        if name is None:
            return None
        members = self._members.get(name)
        if not members:
            return None
        for idx in sorted(members):
            member = members[idx]
            if not member.invoker.alive:
                continue
            if member.invoker.machine.rack != rack:
                continue
            descriptor = member.descriptor
            if descriptor is None:
                continue
            if descriptor.find_vma(vpn) is None:
                continue
            snap = descriptor.pte_snapshots.get(vpn)
            if snap is not None and snap.owner_hop > 0:
                continue
            if member.node.service.lookup(descriptor.handler_id,
                                          descriptor.auth_key) is None:
                continue
            return member.invoker.machine, descriptor
        return None

    # --- Health-monitor hooks ------------------------------------------------
    def on_invoker_suspect(self, invoker):
        """A host went suspect: start the copy-out sweep once per episode,
        racing in-flight orphan rescues for still-primary-only pages."""
        if self._stopped or not self._gate.rise(invoker.index):
            return
        for name in self.registry.names():
            placement = self.registry.placement(name)
            if placement is None or placement["invoker"] != invoker.index:
                continue
            proc = self.env.process(self._sweep(name))
            self._procs.add(proc)

    def on_invoker_readmitted(self, invoker):
        """A host came back: re-arm any fences still owed to it (a revived
        stale primary must learn it was superseded), and close the
        suspicion episode."""
        self._gate.clear(invoker.index)
        if self._stopped:
            return
        machine_id = invoker.machine.machine_id
        for (target_id, name) in list(self._pending_fences):
            if target_id == machine_id:
                self._spawn_fence(target_id, name)

    def _sweep(self, name):
        """Copy-out-on-suspicion: finish every partially-copied replica of
        ``name`` while the primary may still answer.  Generator."""
        try:
            members = self._members.get(name, {})
            swept = False
            for idx, member in list(members.items()):
                if (member.meta is not None or member.container is None
                        or not member.invoker.alive):
                    continue
                entry = self.registry.replicas(name).get(idx)
                if entry is None:
                    continue
                try:
                    yield from self._copy_vmas(member, name,
                                               entry["copy_epoch"])
                    yield from self._publish_replica(member, name)
                    swept = True
                except _RECOVERABLE:
                    self.counters.incr("sweep_failures")
            if swept:
                self.counters.incr("sweeps_completed")
        except Interrupt:
            return

    # --- Lifecycle -----------------------------------------------------------
    def stop(self):
        """Interrupt every background process so the event loop drains."""
        self._stopped = True
        for proc in list(self._procs):
            if proc.is_alive and proc is not self.env.active_process:
                proc.interrupt("lineage runtime stopped")
        self._procs.clear()
        self._fence_procs.clear()

    def members(self, name):
        """Live member map (read-only view for tests/sanitizers)."""
        return dict(self._members.get(name, {}))
