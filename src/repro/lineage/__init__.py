"""Seed lineage fault tolerance: replicated seeds + generation fencing.

The paper's remote fork makes every child fate-share with its seed: a
dead or flapping parent machine strands children mid-page-in, and the
only fallback is CRIU-from-DFS (slow) or a cold start (slower).  This
package adds the control-plane capability ROADMAP item 2 names:

* :class:`~repro.lineage.runtime.LineageRuntime` — K-way seed
  replication: a copier streams descriptor + page state from the
  primary seed to replica hosts over the existing RDMA paging paths,
  tracking per-replica *copy epochs* (a replica knows exactly which
  VMAs it can serve), plus split-brain-safe promotion and fencing.
* :class:`~repro.lineage.registry.LineageRegistry` — the LB-side
  authoritative record of placements, leases, and generations, with a
  write-ahead log (:class:`~repro.lineage.wal.WriteAheadLog`) replayed
  on controller restart.
* :class:`~repro.lineage.errors.StaleGeneration` — the authoritative
  rejection a fenced (stale-generation) descriptor RPC receives.

Everything is gated on :meth:`repro.fn.FnCluster.enable_lineage` (or
``REPRO_SEED_REPLICAS=K`` picked up by ``enable_faults``): with
replication off the event sequence stays byte-identical to the seed —
the repo-wide invariant.

Generations are *fencing tokens*: they are compared monotonically
(``stale < fence``), never for equality — the ``stale-generation-compare``
reprolint rule enforces this repo-wide.
"""

import os

from .. import params
from .errors import StaleGeneration
from .registry import LineageRegistry
from .runtime import LineageRuntime
from .wal import WalRecord, WriteAheadLog


def default_seed_replicas():
    """Resolve the replication default: the ``REPRO_SEED_REPLICAS``
    environment variable (replicas per seed), else
    :data:`repro.params.LINEAGE_SEED_REPLICAS_DEFAULT` (0 = off, the
    seed's fate-sharing behavior).  The env var lets CI arm replication
    for a whole run without threading a flag through every rig."""
    value = os.environ.get("REPRO_SEED_REPLICAS")
    if value is None:
        return params.LINEAGE_SEED_REPLICAS_DEFAULT
    return max(0, int(value))


__all__ = [
    "LineageRegistry",
    "LineageRuntime",
    "StaleGeneration",
    "WalRecord",
    "WriteAheadLog",
    "default_seed_replicas",
]
