"""Lineage-specific error types.

:class:`StaleGeneration` subclasses :class:`repro.rdma.RpcError` so the
whole existing fault machinery treats it correctly for free: it is an
*authoritative* rejection (the remote daemon answered and said no), so
the RPC layer never retries it, the paging breaker records it as a
*successful* probe (the wire worked), and the fn-layer start path
classifies it as a recoverable start fault.
"""

from ..rdma import RpcError


class StaleGeneration(RpcError):
    """A descriptor RPC carried a generation below the daemon's fence.

    Raised by a seed daemon that has learned (via ``mitosis.fence_lineage``)
    that the lineage re-elected past the caller's generation.  The caller
    must re-resolve the current primary; retrying the same RPC can never
    succeed because fences only move forward.
    """
