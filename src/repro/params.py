"""Calibrated cost-model constants for the MITOSIS reproduction.

Every constant is annotated with the paper section (or figure) it comes
from.  Simulated time is in **microseconds**; sizes are in **bytes**.

These are the *physics* the simulation substitutes for real hardware: wire
latencies, NIC processing rates, copy bandwidths, and the per-operation
costs the paper reports in its own microbenchmarks.  All protocol *logic*
(what gets sent, how many times, what state changes) is implemented for
real in the subsystem packages.
"""

# --- Units -----------------------------------------------------------------
US = 1.0
MS = 1000.0 * US
SEC = 1000.0 * MS
MINUTE = 60.0 * SEC

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

PAGE_SIZE = 4 * KB
PAGE_SHIFT = 12

# --- RDMA fabric (§3, §4.2; ConnectX-4 100 Gbps InfiniBand) ------------------
#: One-sided RDMA READ base latency (§3: "low latency (e.g., 2us)").
RDMA_READ_LATENCY = 2.0 * US
#: Link bandwidth: 100 Gbps = 12.5 GB/s, in bytes per microsecond.
RDMA_BANDWIDTH = 12.5 * GB / SEC
#: Extra one-way latency when crossing racks through the second switch.
CROSS_RACK_EXTRA_LATENCY = 0.6 * US
#: RC connection handshake (§4.2: "4ms vs. 2us").
RC_CONNECT_LATENCY = 4.0 * MS
#: RC queue-pair creation throughput per machine (§4.2: "up to 700 QPs/sec").
RCQP_CREATE_RATE_PER_SEC = 700.0
RCQP_CREATE_LATENCY = SEC / RCQP_CREATE_RATE_PER_SEC
#: DCT re-connect cost (§4.2: "reconnect DCQP ... <1us").
DCT_RECONNECT_LATENCY = 0.8 * US
#: DC target creation at the parent (§4.3: "DCQP only uses 200us at the parent").
DC_TARGET_CREATE_LATENCY = 200.0 * US
#: Extra per-request processing for DCT vs RC (§4.2 discussion: prohibitive
#: for <64B payloads, negligible at page granularity).
DCT_REQUEST_OVERHEAD = 0.2 * US
#: DCT wire header is larger than RC's.
DCT_EXTRA_HEADER_BYTES = 40
#: Doorbell batching (§4.1): posting n WQEs and ringing the doorbell once
#: pays a single request latency plus this tiny per-extra-WQE CPU/PCIe cost;
#: the per-page payloads then stream back-to-back at line rate.
DOORBELL_WQE_OVERHEAD = 0.05 * US
#: Default contiguous-range size (pages) for batched remote paging.  0
#: disables batching — the seed's page-at-a-time behavior, bit-identical.
PAGER_BATCH_PAGES_DEFAULT = 0
#: Storage footprints (§4.3): DC target 144B, child-side key 12B, RCQP "several KBs".
DC_TARGET_BYTES = 144
DCT_KEY_BYTES = 12
RCQP_FOOTPRINT_BYTES = 8 * KB
#: UD (FaSST-style) RPC round trip, connection-less (§4.1).
UD_RPC_BASE_LATENCY = 3.0 * US
#: Conservative-sync lookahead for the sharded simulation core
#: (``repro.shard``): no cross-machine interaction lands sooner than the
#: cheapest RDMA verb, so a shard may safely advance this far past the
#: fleet-wide horizon without hearing from its peers.  Derived, never
#: tuned — the bound must hold for every message the fabric can carry.
SHARD_LOOKAHEAD = min(RDMA_READ_LATENCY, UD_RPC_BASE_LATENCY)
#: Per-datagram CPU cost when a UD payload spans multiple 4 KB MTUs —
#: why shipping KB-scale descriptors inside RPC replies loses to a single
#: one-sided READ (§4.1's zero-copy argument).
UD_PACKET_OVERHEAD = 0.25 * US
#: Memory-registration cost model (§3.1: "several microseconds even for a
#: small container (e.g., 64MB)", linear in size).
MR_REGISTER_BASE = 1.0 * US
MR_REGISTER_PER_MB = 0.1 * US

# --- Memory / CPU physics ----------------------------------------------------
#: Local DRAM copy bandwidth (memcpy), bytes/us.
DRAM_COPY_BANDWIDTH = 20.0 * GB / SEC
#: Cost of taking + servicing a (minor) page fault in the kernel.
PAGE_FAULT_OVERHEAD = 0.8 * US
#: Cost to allocate and map one physical frame.
FRAME_ALLOC_LATENCY = 0.3 * US
#: CPU cores per machine (§6: two 12-core Xeon E5-2650 v4).
CORES_PER_MACHINE = 24
DRAM_PER_MACHINE = 128 * GB

# --- Containers (§2.3, §4.1, §6) ---------------------------------------------
#: Docker cold start of TC0 (Table 1 caption: "783ms with Docker").
DOCKER_COLD_START = 783.0 * MS
#: Containerization (cgroup etc.) without lean containers (§6: 190ms).
CGROUP_CONTAINERIZATION = 190.0 * MS
#: Lean-container (SOCK-style) containerization (§4.1: "<10ms"; §6: 10ms).
LEAN_CONTAINERIZATION = 10.0 * MS
#: Docker pause/unpause cost for cached containers.  Each warm invocation
#: pays one unpause + one pause on the serialized docker daemon, so one
#: invoker peaks at 1/(2 x 0.385ms) ~= 1,300 starts/s (§6.1), bottlenecked
#: by pausing/unpausing as the paper observes.
CACHE_UNPAUSE_LATENCY = 0.385 * MS
#: Restoring a connected socket via TCP repair (§4.1: "4ms for a connected socket").
SOCKET_RESTORE_LATENCY = 4.0 * MS
#: Per-machine concurrency for sandbox initialisation (calibrated so one
#: invoker peaks at ~600 MITOSIS forks/s = 46.4% of caching's 1,300/s, §6.1).
SANDBOX_INIT_SLOTS = 6
#: Number of cgroups kept ready in the lean-container pool per machine.
CGROUP_POOL_SIZE = 64
#: Refilling one pooled cgroup off the critical path.
CGROUP_POOL_REFILL_LATENCY = 3.0 * MS

# --- CRIU baseline (§2.4, Fig. 2) --------------------------------------------
#: Fixed cost to walk /proc and serialize non-memory state at checkpoint.
CRIU_CHECKPOINT_BASE = 6.0 * MS
#: Memory dump bandwidth at checkpoint (Fig. 2c: TC1's 38MB to tmpfs ~= 30ms
#: total, dominated by memory checkpointing).
CRIU_DUMP_BANDWIDTH = 1.1 * GB / SEC
#: Fixed cost to parse image metadata + rebuild process at restore.
CRIU_RESTORE_BASE = 6.0 * MS
#: Reading + parsing image pages from tmpfs at restore, bytes/us.
CRIU_PARSE_BANDWIDTH = 2.5 * GB / SEC
#: Per-page cost of the userfaultfd-style on-demand path from local tmpfs.
CRIU_LAZY_PAGE_LATENCY = 1.2 * US
#: Per-restore CPU cost of interacting with + parsing the many image files
#: (Fig. 10: "CRIU-tmpfs is bottlenecked by interacting and parsing images
#: from the tmpfs", plus the FN create/destroy integration overhead).
CRIU_RESTORE_INTERACT = 4.5 * MS
#: Runtime memory overhead of linking the CRIU binary into each restored
#: container (§6.1: MITOSIS uses 29.8-46.2% less runtime memory).
CRIU_RUNTIME_OVERHEAD_BYTES = 2 * MB
#: Effective goodput of copying an image file-set machine-to-machine.
#: Even over RDMA the copy runs far below line rate (per-file opens,
#: tmpfs reads, destination writes): Fig. 2 (a) has the copy at 73% of
#: TC0's restore+execution, implying ~0.38 GB/s for the 10.2 MB image.
RCOPY_BANDWIDTH = 0.38 * GB / SEC

# --- DFS (Ceph-like; §2.4 Issue#3, Fig. 2) -----------------------------------
#: Client->OSD request software overhead, each way (messenger, crush, pg).
DFS_REQUEST_OVERHEAD = 18.0 * US
#: Metadata lookup round trip at the monitor/MDS.
DFS_METADATA_LATENCY = 120.0 * US
#: Effective per-OSD service bandwidth (in-memory pool, RDMA messenger).
DFS_OSD_BANDWIDTH = 2.2 * GB / SEC
#: Per-request CPU cost at the OSD (messenger, pg lookup, crc), serialized
#: on the OSD's service loop.  Real Ceph OSDs sustain ~20-40k small ops/s;
#: this is the aggregate DFS capacity bound that caps CRIU-remote's
#: cluster throughput to ~1/14th of MITOSIS at the paper's 17 invokers (Fig. 10).
DFS_OSD_REQUEST_CPU = 21.0 * US
#: Per-page cost of the on-demand (lazy) restore path from DFS: this is what
#: makes "+OnDemand DFS" slow down *execution* by 840%/81% (Fig. 2 d,e).
DFS_LAZY_PAGE_LATENCY = 24.0 * US

# --- MITOSIS (§4) -------------------------------------------------------------
#: Descriptor sizes are KB-scale vs MB-scale images (§4.1).
DESCRIPTOR_BASE_BYTES = 2 * KB
DESCRIPTOR_PER_VMA_BYTES = 256
DESCRIPTOR_PER_PTE_BYTES = 8
#: fork_prepare: copy process data structures to the condensed descriptor
#: (Fig. 14a discussion: "17.24ms vs 2.8ms" checkpoint-vs-prepare for TC0+payload).
FORK_PREPARE_BASE = 2.0 * MS
FORK_PREPARE_PER_MB = 0.04 * MS
#: Restoring execution structures from a fetched descriptor (§4.1: "(2) is
#: fast (e.g., takes sub-millisecond)").
DESCRIPTOR_RESTORE_BASE = 0.4 * MS
#: Fallback-daemon RPC page read: slower than one-sided RDMA (§4.3).
FALLBACK_RPC_PAGE_LATENCY = 12.0 * US
#: Loading a cold page from secondary storage in the fallback daemon.
FALLBACK_STORAGE_PAGE_LATENCY = 80.0 * US
#: Kernel threads per machine serving descriptor fetches + fallbacks (§6).
MITOSIS_DAEMON_THREADS = 2
#: Local copy-on-write reuse of an already-fetched remote page (§4.3
#: "remote page sharing").
SHARED_PAGE_COPY_LATENCY = 0.4 * US
#: Maximum remote-fork lineage depth encodable in the 4 PTE owner bits
#: (§4.4: "a maximum of 15-hops").
MAX_FORK_HOPS = 15

# --- Fn framework (§5, §6) -----------------------------------------------------
#: Load balancer dispatch overhead per request.
LB_DISPATCH_LATENCY = 150.0 * US
#: Concurrent requests one Fn invoker admits; waiting behind stalled cold
#: starts is the "queuing effect" that blows up FN's tail latency under
#: spikes (§6.2).
FN_INVOKER_CONCURRENCY = 8
#: Keepalive for FN-cached containers (§6.2: evicted after 30 seconds).
FN_CACHE_KEEPALIVE = 30.0 * SEC
#: Keepalive for MITOSIS seed containers (§5: "1 hour vs. 1 minute").
SEED_KEEPALIVE = 1.0 * 3600 * SEC
#: Seed-descriptor renewal period (§5: "periodically renew ... 10 minutes").
SEED_RENEW_PERIOD = 10.0 * MINUTE
#: Fn-flow data-passing baseline (Fig. 14a): an HTTP/Java relay service —
#: heavyweight per-hop latency and modest goodput, which is why MITOSIS
#: wins above the piggyback threshold (26-66% faster, §6.3).
FLOW_BASE_LATENCY = 10.0 * MS
FLOW_BANDWIDTH = 0.25 * GB / SEC
#: Payloads below this are piggybacked in the function request by flow.
FLOW_PIGGYBACK_LIMIT = 100 * KB

# --- Cluster (§6 experimental setup) -------------------------------------------
NUM_MACHINES = 24
NUM_INVOKERS = 18
NUM_RACKS = 2

# --- Fault injection & recovery (repro/faults) ----------------------------------
#: Default per-call RPC deadline once fault handling is armed.  The healthy
#: round trip is ~10 us, but the two daemon worker threads queue tens of
#: milliseconds deep under spike load — the deadline detects *dead peers*,
#: not overload, so it sits well above worst-case queueing delay.
RPC_DEFAULT_DEADLINE = 50.0 * MS
#: Retries after the first deadline expiry (attempts = retries + 1).
RPC_MAX_RETRIES = 2
#: Exponential backoff between RPC retries: base * 2**attempt, capped.
RPC_RETRY_BACKOFF_BASE = 0.5 * MS
RPC_RETRY_BACKOFF_CAP = 8.0 * MS
#: Backoff jitter fraction (multiplier drawn from [1, 1 + jitter)), taken
#: from the deterministic ``rpc-retry-jitter`` stream of ``sim.rng``.
RPC_RETRY_JITTER = 0.5
#: Server-side cost to reject an unknown RPC method (table miss + NAK reply).
RPC_UNKNOWN_METHOD_LATENCY = 1.0 * US
#: Transport retry budget before a DC/RC verb completes in error when the
#: peer NIC is unreachable (the IB retry_cnt x timeout knob, scaled down).
DC_RETRY_TIMEOUT = 4.0 * MS
RC_RETRY_TIMEOUT = 4.0 * MS
#: Descriptor lease lifetime (rFaaS-style expiry of RDMA-exposed state).
LEASE_DURATION = 30.0 * SEC
#: Parent-side lease renewal period (must be well under LEASE_DURATION).
LEASE_RENEW_PERIOD = 10.0 * SEC
#: Time for a crashed machine to reboot when the schedule asks for restart.
MACHINE_RESTART_LATENCY = 5.0 * SEC
#: Invoker health probing by the load balancer.
FN_HEARTBEAT_PERIOD = 1.0 * SEC
FN_HEARTBEAT_TIMEOUT = 50.0 * MS
FN_HEARTBEAT_MISS_LIMIT = 2
#: End-to-end attempts (first try + re-admissions) before an invocation is
#: recorded as lost.
FN_INVOKE_MAX_ATTEMPTS = 4
#: LB-side timeout for a dispatch into a dead-but-undetected invoker.
FN_DISPATCH_TIMEOUT = 10.0 * MS
#: Backoff before re-admitting a failed invocation (doubled per attempt).
FN_READMIT_BACKOFF = 50.0 * MS

# --- Gray-failure & overload resilience (repro/resilience) -----------------------
#: Per-retransmission penalty a reliable transport (RC/DC) pays when a
#: lossy link drops its packet: the IB transport retransmit timer, scaled
#: with the rest of the fault timeouts.
LOSSY_RETX_PENALTY = 0.5 * MS
#: End-to-end invocation deadline once resilience is armed: requests that
#: cannot finish inside this budget are shed while queued instead of
#: occupying admission slots (the §6.2 queuing effect, bounded).
FN_INVOCATION_DEADLINE = 2.0 * SEC
#: Retries granted to one invocation, shared across *every* retry it
#: triggers below the LB (RPC resends, fetch fallbacks, re-dispatches) —
#: a retry budget in the Google-SRE sense, so storms cannot amplify.
FN_RETRY_BUDGET = 6
#: Consecutive fallback-RPC failures before a peer's breaker opens.
BREAKER_FAILURE_THRESHOLD = 3
#: Sim-time an open breaker waits before admitting a half-open probe.
BREAKER_COOLDOWN = 200.0 * MS
#: Hedged-read trigger before enough samples exist for a p99 estimate.
HEDGE_INITIAL_DELAY = 200.0 * US
#: Observed-latency percentile that arms the hedge (tail-tolerance
#: standard: clone only probable stragglers, ~1% of requests).
HEDGE_PERCENTILE = 99.0
#: Read-latency samples required before the p99 estimate replaces the
#: initial delay, and the window they are drawn from.
HEDGE_MIN_SAMPLES = 16
HEDGE_WINDOW = 128
#: EWMA smoothing for heartbeat round-trip latency scoring.
FN_HEALTH_EWMA_ALPHA = 0.2
#: Smoothed heartbeat RTT above this marks an invoker *suspect*: the
#: healthy UD ping round trip is ~10 us, a gray (slow-NIC) invoker sits
#: 1-2 orders of magnitude higher while still answering heartbeats.
FN_HEALTH_SUSPECT_LATENCY = 100.0 * US
#: Suspicion increments per missed heartbeat / slow heartbeat, the decay
#: multiplier applied per healthy heartbeat, and the level at which the
#: invoker counts as suspect (queued requests re-route away from it).
FN_SUSPICION_MISS_STEP = 0.5
FN_SUSPICION_LAT_STEP = 0.25
FN_SUSPICION_DECAY = 0.5
FN_SUSPECT_THRESHOLD = 0.5
#: Placement weight: a fully-suspect invoker looks this many in-flight
#: requests more loaded than its counter says (suspicion * penalty).
FN_SUSPICION_LOAD_PENALTY = 8.0

# --- Seed lineage fault tolerance (repro.lineage) ----------------------------
#: Seed replicas per function when ``REPRO_SEED_REPLICAS`` is unset.
#: 0 = replication off — the seed repo's fate-sharing behaviour, and the
#: setting under which the event sequence stays byte-identical.
LINEAGE_SEED_REPLICAS_DEFAULT = 0
#: Retry period of the LB's fence-delivery driver toward one machine.
LINEAGE_FENCE_RETRY_PERIOD = 1.0 * SEC
#: Fence-delivery attempts per (machine, lineage) before the driver
#: parks; re-armed when the health monitor re-admits the invoker, so a
#: revived host still learns the fence without an unbounded loop.
LINEAGE_FENCE_MAX_TRIES = 30
#: Owner re-routes one page fault may attempt before the error stands —
#: bounds ping-pong between two gray members of the same lineage.
LINEAGE_RESCUE_MAX_FAILOVERS = 4

# --- Fabric topology & congestion (repro.fabricnet) --------------------------
#: Host NIC line rate on the shared fabric, bytes/us.  Matches the
#: point-to-point RDMA_BANDWIDTH so the uncongested single-flow cost is
#: identical to the flat model's.
FABRIC_HOST_BANDWIDTH = RDMA_BANDWIDTH
#: ToR uplink oversubscription ratio: aggregate host bandwidth in a rack
#: divided by the rack's spine-facing capacity (a classic 3:1 Clos).
FABRIC_OVERSUBSCRIPTION = 3.0
#: One-way propagation + switching latency per fabric hop.
FABRIC_HOP_LATENCY = 0.3 * US
#: ECN-style marking threshold: a link whose standing backlog meets this
#: marks passing flows (the DCQCN CNP trigger).
FABRIC_ECN_THRESHOLD_BYTES = 128 * KB
#: Hard per-link queue cap; arrivals beyond it tail-drop.  Sized so an
#: unchecked incast overruns it while a DCQCN-paced one never does.
FABRIC_MAX_QUEUE_BYTES = MB
#: DCQCN rate-reduction EWMA gain (the `g` of the alpha update); the
#: multiplicative cut itself is the canonical rate *= 1 - alpha/2.
#: The spec's g is per-CNP with per-packet marking; this model marks
#: per *transfer* (a ~32-packet doorbell batch), so g is scaled up to
#: keep alpha's rise per marked byte comparable.
FABRIC_DCQCN_G = 0.5
#: Additive-recovery step toward line rate per recovery period; slow
#: enough (~3 ms to line rate) that a marked flow cannot fully recover
#: inside one queue-drain epoch and re-overrun the link it just marked.
FABRIC_DCQCN_RECOVERY_STEP = FABRIC_HOST_BANDWIDTH / 64.0
#: Elapsed time granting one additive-recovery step to an idle-ok flow.
FABRIC_DCQCN_RECOVERY_PERIOD = 50.0 * US
#: Floor under per-flow pacing so a marked-to-death flow still drains.
#: Low enough that the sum over one incast's flows stays below even a
#: storm-degraded access link, or CC could never stabilize the queue.
FABRIC_MIN_FLOW_RATE = FABRIC_HOST_BANDWIDTH / 1024.0
#: Go-back-N retransmission penalty a tail-dropped transfer pays per
#: attempt (timeout detection + replay), and the bounded retry budget
#: before the transfer force-completes through the congested queue.
FABRIC_RETX_PENALTY = 2.0 * MS
FABRIC_MAX_RETX = 3
#: Standing backlog at which a host link counts as *hot* for the pager's
#: congestion-aware backpressure (defer range fetches, shed prefetch).
FABRIC_HOT_THRESHOLD_BYTES = 128 * KB
#: Capacity divisor a seed-NIC saturation storm applies to the victim's
#: host links for the duration of the storm window.
FABRIC_SATURATION_FACTOR = 8.0

# --- Connection control plane (repro.connplane) -------------------------------
#: Per-machine budget for *warm* (idle, pooled) RC queue pairs.  Sized in
#: bytes so the LRU evicts by the same currency the memory account charges
#: (``RCQP_FOOTPRINT_BYTES`` each): 64 warm QPs = 512 KB of NIC/driver
#: state per machine, Swift's "cache a working set, not the fleet" sizing.
CONNPLANE_POOL_BYTES = 64 * RCQP_FOOTPRINT_BYTES
#: Max RCQP creations coalesced behind one pass through the NIC's
#: serialized QP factory (one doorbell ring for the control verbs).
CONNPLANE_CREATE_BATCH = 8
#: Per-extra-QP cost inside one batched factory pass: the driver posts the
#: next create WQE on an already-rung doorbell instead of paying the full
#: 1/700 s verbs round trip again (Swift §4's batched control path).
CONNPLANE_QP_BATCH_LATENCY = RCQP_CREATE_LATENCY / 8.0
#: Fixed wire size of one advertisement record (fork meta + DCT handle +
#: generation + lease expiry), before the per-VMA rkeys are added.
CONNPLANE_ADVERT_BYTES = 64
#: CPU cost for an invoker to install or replace one advert in its cache.
CONNPLANE_ADVERT_APPLY_LATENCY = 0.3 * US
#: CPU cost of the child-side advert-cache lookup on the fork hit path
#: (a hash probe — what replaces the descriptor-query RPC round trip).
CONNPLANE_LOOKUP_LATENCY = 0.2 * US


def transfer_time(size_bytes, bandwidth):
    """Time (us) to move ``size_bytes`` at ``bandwidth`` bytes/us."""
    if size_bytes <= 0:
        return 0.0
    return size_bytes / bandwidth


def pages_of(size_bytes):
    """Number of 4 KB pages covering ``size_bytes``."""
    return (int(size_bytes) + PAGE_SIZE - 1) // PAGE_SIZE
