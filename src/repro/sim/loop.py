"""The discrete-event environment: clock, queue, and run loop.

Simulated time is a float in **microseconds** throughout this project; the
helpers in :mod:`repro.params` define ``US``/``MS``/``SEC`` multipliers.
"""

import heapq
from itertools import count

from .errors import EmptySchedule, SimulationError, StopSimulation
from .events import AllOf, AnyOf, Event, Process, Timeout


class Environment:
    """Execution environment for a single simulation.

    Holds the event queue and the simulated clock, creates processes and
    primitive events, and advances time in :meth:`run`/:meth:`step`.
    """

    def __init__(self, initial_time=0.0):
        self._now = float(initial_time)
        self._queue = []
        self._eid = count()
        self._active_process = None

    # Clock -----------------------------------------------------------------
    @property
    def now(self):
        """Current simulated time (microseconds)."""
        return self._now

    @property
    def active_process(self):
        """The process currently being resumed, if any."""
        return self._active_process

    # Event factories ---------------------------------------------------------
    def event(self):
        """Create a pending :class:`Event` to be settled manually."""
        return Event(self)

    def timeout(self, delay, value=None):
        """An event that fires ``delay`` microseconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator):
        """Start a new process driving ``generator``."""
        return Process(self, generator)

    def all_of(self, events):
        """An event that fires when all given events succeed."""
        return AllOf(self, events)

    def any_of(self, events):
        """An event that fires when any given event settles."""
        return AnyOf(self, events)

    # Scheduling --------------------------------------------------------------
    def schedule(self, event, delay=0.0, priority=False):
        """Queue ``event``'s callbacks to run ``delay`` from now.

        ``priority`` events sort ahead of normal events at the same time
        (used for process initialization and interrupts).
        """
        heapq.heappush(
            self._queue,
            (self._now + delay, 0 if priority else 1, next(self._eid), event))

    def peek(self):
        """Time of the next scheduled event, or ``inf`` if queue is empty."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self):
        """Process the single next event, advancing the clock to it."""
        try:
            when, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("event queue is empty")
        if when < self._now:  # pragma: no cover - guarded by schedule()
            raise SimulationError("time went backwards: %r < %r" % (when, self._now))
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody was waiting for: surface it loudly.
            raise event._value

    def run(self, until=None):
        """Run until ``until`` (an event or a time), or until the queue dries.

        * ``until`` is ``None``  — run until no events remain.
        * ``until`` is an :class:`Event` — run until it settles; returns its
          value (raising if it failed).
        * ``until`` is a number — run until the clock reaches it.
        """
        if until is None:
            stop_at = float("inf")
            stop_event = None
        elif isinstance(until, Event):
            stop_event = until
            stop_at = float("inf")
            if until.triggered:
                if until._ok:
                    return until._value
                raise until._value
            until.callbacks.append(_stop_callback)
        else:
            stop_at = float(until)
            stop_event = None
            if stop_at < self._now:
                raise ValueError(
                    "until (%r) must not be in the past (now=%r)" % (stop_at, self._now))

        try:
            while self._queue:
                if self.peek() > stop_at:
                    self._now = stop_at
                    return None
                self.step()
        except StopSimulation as stop:
            return stop.value
        if stop_event is not None:
            raise EmptySchedule(
                "no more events but %r never settled" % (stop_event,))
        if stop_at != float("inf"):
            self._now = stop_at
        return None


def _stop_callback(event):
    if event._ok:
        raise StopSimulation(event._value)
    event._defused = True
    raise event._value
