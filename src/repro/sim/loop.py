"""The discrete-event environment: clock, queue, and run loop.

Simulated time is a float in **microseconds** throughout this project; the
helpers in :mod:`repro.params` define ``US``/``MS``/``SEC`` multipliers.
"""

import sys
from itertools import count

from .errors import EmptySchedule, SimulationError, StopSimulation
from .events import AllOf, AnyOf, Event, Process, Timeout
from .scheduler import make_scheduler

#: Upper bound on the recycled-:class:`Timeout` free list.  Big enough to
#: cover the in-flight timeouts of a 10K-fork replay's steady state, small
#: enough that a pathological burst cannot pin memory forever.
_TIMEOUT_POOL_MAX = 1024


class Environment:
    """Execution environment for a single simulation.

    Holds the event queue and the simulated clock, creates processes and
    primitive events, and advances time in :meth:`run`/:meth:`step`.
    """

    def __init__(self, initial_time=0.0, scheduler=None, eid_base=0):
        self._now = float(initial_time)
        #: The pending-event store.  Every access goes through the
        #: scheduler interface (push/pop_entry/peek_*) so ``REPRO_SCHED``
        #: can swap the heap for a calendar queue; direct ``_queue``
        #: indexing outside this module is a lint error
        #: (scheduler-abstraction-leak).
        self._queue = scheduler if scheduler is not None else make_scheduler()
        #: Event ids break same-timestamp ties FIFO.  ``eid_base`` lets a
        #: shard worker namespace its ids (shard k counts from
        #: ``k << EID_SHARD_SHIFT``) so cross-shard merge order is total;
        #: the default 0 keeps single-process ids byte-identical.
        self._eid = count(eid_base)
        self._active_process = None
        #: Total events processed by :meth:`step` — the denominator for the
        #: wall-clock benchmark harness's events/sec metric.
        self.events_processed = 0
        # Free list of fired Timeout instances safe to re-arm (the hottest
        # allocation in the kernel: every wire delay and every bare yield).
        self._timeout_pool = []
        #: Optional :class:`repro.trace.Tracer`.  ``None`` (the default)
        #: keeps every instrumentation guard a single attribute test and
        #: the untraced event sequence byte-identical.
        self.tracer = None

    # Clock -----------------------------------------------------------------
    @property
    def now(self):
        """Current simulated time (microseconds)."""
        return self._now

    @property
    def active_process(self):
        """The process currently being resumed, if any."""
        return self._active_process

    # Event factories ---------------------------------------------------------
    def event(self):
        """Create a pending :class:`Event` to be settled manually."""
        return Event(self)

    def timeout(self, delay, value=None):
        """An event that fires ``delay`` microseconds from now.

        Reuses a pooled instance when one is free (see :meth:`step`);
        otherwise allocates.  Either way the caller gets a freshly-armed,
        not-yet-fired timeout.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError("negative delay %r" % (delay,))
            timeout = pool.pop()
            timeout._rearm(delay, value)
            return timeout
        return Timeout(self, delay, value)

    def process(self, generator):
        """Start a new process driving ``generator``.

        With a tracer installed and enabled the new process inherits the
        spawner's current span, so causality survives the spawn boundary
        (RPC attempts, hedge legs, hosted invocations).
        """
        process = Process(self, generator)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.on_spawn(process)
        return process

    def all_of(self, events):
        """An event that fires when all given events succeed."""
        return AllOf(self, events)

    def any_of(self, events):
        """An event that fires when any given event settles."""
        return AnyOf(self, events)

    # Scheduling --------------------------------------------------------------
    def schedule(self, event, delay=0.0, priority=False):
        """Queue ``event``'s callbacks to run ``delay`` from now.

        ``priority`` events sort ahead of normal events at the same time
        (used for process initialization and interrupts).
        """
        if delay < 0:
            raise ValueError("negative delay %r" % (delay,))
        self._queue.push(
            (self._now + delay, 0 if priority else 1, next(self._eid), event))

    def peek(self):
        """Time of the next scheduled event, or ``inf`` if queue is empty."""
        return self._queue.peek_when()

    def peek_entry(self):
        """The next ``(when, priority, eid, event)`` entry, or ``None``.

        The supported way to observe the queue head without popping it
        (the race auditor's hook); direct ``_queue`` access is a lint
        error because the storage layout is scheduler-specific.
        """
        return self._queue.peek_entry()

    def step(self):
        """Process the single next event, advancing the clock to it."""
        try:
            when, _, _, event = self._queue.pop_entry()
        except IndexError:
            raise EmptySchedule("event queue is empty")
        if when < self._now:  # pragma: no cover - guarded by schedule()
            raise SimulationError("time went backwards: %r < %r" % (when, self._now))
        self._now = when
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody was waiting for: surface it loudly.
            raise event._value
        # Recycle fired timeouts nobody can observe anymore.  The refcount
        # gate is the safety proof: 2 == our local + getrefcount's argument,
        # so any process, condition, or closure still holding the event
        # keeps it out of the pool and settled events are never resurrected.
        if (type(event) is Timeout
                and len(self._timeout_pool) < _TIMEOUT_POOL_MAX
                and sys.getrefcount(event) == 2):
            self._timeout_pool.append(event)

    def instrument_step(self, wrap):
        """Shadow :meth:`step` with ``wrap(self.step)`` on this instance.

        The hook the runtime race auditor uses: ``wrap`` receives the
        bound original and must return a callable run in its place.
        Because :meth:`run` binds ``step = self.step`` once on entry,
        install the wrapper *before* calling :meth:`run`.  With no
        wrapper installed there is zero hot-path cost — the method only
        exists on the class, and ``self.step`` resolves as always.
        """
        if "step" in self.__dict__:
            raise SimulationError("step is already instrumented")
        self.__dict__["step"] = wrap(Environment.step.__get__(self))
        return self.__dict__["step"]

    def uninstrument_step(self):
        """Remove an :meth:`instrument_step` wrapper (idempotent)."""
        self.__dict__.pop("step", None)

    def run(self, until=None):
        """Run until ``until`` (an event or a time), or until the queue dries.

        * ``until`` is ``None``  — run until no events remain.
        * ``until`` is an :class:`Event` — run until it settles; returns its
          value (raising if it failed).
        * ``until`` is a number — run until the clock reaches it.
        """
        if until is None:
            stop_at = float("inf")
            stop_event = None
        elif isinstance(until, Event):
            stop_event = until
            stop_at = float("inf")
            if until.triggered:
                if until._ok:
                    return until._value
                raise until._value
            until.callbacks.append(_stop_callback)
        else:
            stop_at = float(until)
            stop_event = None
            if stop_at < self._now:
                raise ValueError(
                    "until (%r) must not be in the past (now=%r)" % (stop_at, self._now))

        queue = self._queue
        step = self.step
        try:
            if stop_at == float("inf"):
                # Hot loop: no deadline to poll, just drain.
                while queue:
                    step()
            else:
                while queue:
                    if queue.peek_when() > stop_at:
                        self._now = stop_at
                        return None
                    step()
        except StopSimulation as stop:
            return stop.value
        if stop_event is not None:
            raise EmptySchedule(
                "no more events but %r never settled" % (stop_event,))
        if stop_at != float("inf"):
            self._now = stop_at
        return None


def _stop_callback(event):
    if event._ok:
        raise StopSimulation(event._value)
    event._defused = True
    raise event._value
