"""Exception types used by the discrete-event simulation kernel."""


class SimulationError(Exception):
    """Base class for all simulation kernel errors."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early.

    Carries the value the run should return.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class EmptySchedule(SimulationError):
    """Raised when the event queue runs dry before ``until`` is reached."""


class Interrupt(Exception):
    """Delivered into a process when another process interrupts it.

    The interrupting party supplies an arbitrary ``cause`` describing why the
    target was interrupted (e.g. a revoked connection or a cancelled request).
    """

    def __init__(self, cause=None):
        super().__init__(cause)

    @property
    def cause(self):
        """The cause object passed by the interrupter."""
        return self.args[0]


class EventAlreadyTriggered(SimulationError):
    """Raised when succeed()/fail() is called on a settled event."""
