"""Core event and process types for the discrete-event kernel.

The kernel follows the classic generator-coroutine design: simulated
activities are written as Python generators that ``yield`` events.  The
:class:`Process` wrapper drives the generator, resuming it whenever the
yielded event settles.  Events settle either successfully (``succeed``)
carrying a value, or exceptionally (``fail``) carrying an exception which is
thrown back into the waiting generator.
"""

from .errors import EventAlreadyTriggered, Interrupt, SimulationError

_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*, becomes *triggered* once scheduled with a
    value or an exception, and *processed* after its callbacks have run.
    """

    # Events are the unit allocation of the simulation: a 10K-fork replay
    # creates tens of millions of them, so every subclass is slotted.
    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "_abandon")

    def __init__(self, env):
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False
        #: Optional hook run when a waiter abandons this event (its process
        #: was interrupted while waiting).  Resource/Store grants use it to
        #: give their slot/item back instead of leaking it.
        self._abandon = None

    def __repr__(self):
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return "<%s %s at %#x>" % (type(self).__name__, state, id(self))

    @property
    def triggered(self):
        """True once the event has a value or an exception."""
        return self._value is not _PENDING

    @property
    def processed(self):
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self):
        """True if the event settled successfully.

        Only meaningful once :attr:`triggered` is true.
        """
        return bool(self._ok)

    @property
    def value(self):
        """The event's value (or exception, for failed events)."""
        if self._value is _PENDING:
            raise SimulationError("event %r is still pending" % self)
        return self._value

    def succeed(self, value=None):
        """Settle the event successfully and schedule its callbacks."""
        if self.triggered:
            raise EventAlreadyTriggered("cannot succeed %r twice" % self)
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception):
        """Settle the event with an exception and schedule its callbacks.

        The exception is thrown into every process waiting on the event.  If
        nobody waits, the environment raises it at the end of the step unless
        the event is :meth:`defused`.
        """
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception, got %r" % (exception,))
        if self.triggered:
            raise EventAlreadyTriggered("cannot fail %r twice" % self)
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def defuse(self):
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    # Composition -----------------------------------------------------------
    # Chained ``a & b & c`` flattens into ONE condition over [a, b, c]
    # rather than a nested AllOf(AllOf(a, b), c): the intermediate is
    # unobserved (nothing ever waits on it), so nesting would only add a
    # callback hop and an extra heap event per link.  Mixed chains such as
    # ``(a | b) & c`` keep the inner condition as a constituent.
    def __and__(self, other):
        return _chain(self.env, AllOf, self, other)

    def __or__(self, other):
        return _chain(self.env, AnyOf, self, other)


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("_delay",)

    def __init__(self, env, delay, value=None):
        if delay < 0:
            raise ValueError("negative delay %r" % (delay,))
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self):
        return "<Timeout delay=%r at %#x>" % (self._delay, id(self))

    def _rearm(self, delay, value):
        """Re-arm a recycled instance exactly as ``__init__`` would.

        Pool-internal — only :meth:`Environment.timeout` may call this,
        and only on an instance the run loop proved unreferenced (see the
        refcount gate in :meth:`Environment.step`), so a settled timeout
        some process still holds can never be resurrected.
        """
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self._abandon = None
        self._delay = delay
        self.env.schedule(self, delay=delay)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env, process):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env.schedule(self, priority=True)


class Process(Event):
    """Drives a generator; itself an event that fires when the body returns.

    The process's value is the generator's return value; if the body raises,
    the process fails with that exception (propagating to any waiter).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env, generator):
        if not hasattr(generator, "throw"):
            raise TypeError("expected a generator, got %r" % (generator,))
        super().__init__(env)
        self._generator = generator
        self._target = Initialize(env, self)

    def __repr__(self):
        return "<Process %s at %#x>" % (
            getattr(self._generator, "__name__", self._generator), id(self))

    @property
    def is_alive(self):
        """True while the process body has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError("%r has terminated and cannot be interrupted" % self)
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from whatever the process is waiting on, so that when the
        # abandoned event later fires it does not resume a dead generator.
        target = self._target
        if target is not None and not target.processed:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            if target._abandon is not None:
                target._abandon()
            # An abandoned event's failure has no owner anymore; keep it
            # from crashing the run loop as an unhandled failure.
            target.defuse()
        self._target = None
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, priority=True)

    def _resume(self, event):
        self.env._active_process = self
        # Not waiting on anything while the body runs; dropping the old
        # target here (instead of at the next yield) also releases the
        # last reference that would keep a fired Timeout out of the pool.
        self._target = None
        while True:
            if event._ok:
                try:
                    target = self._generator.send(event._value)
                except StopIteration as stop:
                    self._settle(True, stop.value)
                    break
                except BaseException as exc:
                    self._settle(False, exc)
                    break
            else:
                # Throw the failure into the generator. Mark it defused: the
                # process is now responsible for it.  The original exception
                # object is propagated as-is — rebuilding it from .args would
                # strip keyword-only parameters and carried attributes (the
                # typed resilience errors rely on both).
                event._defused = True
                try:
                    target = self._generator.throw(event._value)
                except StopIteration as stop:
                    self._settle(True, stop.value)
                    break
                except BaseException as exc:
                    self._settle(False, exc)
                    break

            if target is None:
                # "yield" with no event: continue immediately next step.
                target = self.env.timeout(0)
            if not isinstance(target, Event):
                exc = SimulationError(
                    "process %r yielded a non-event: %r" % (self, target))
                try:
                    self._generator.throw(exc)
                except StopIteration as stop:
                    self._settle(True, stop.value)
                except BaseException as body_exc:
                    self._settle(False, body_exc)
                break
            if target.processed:
                # Already settled and delivered: loop and feed it straight in.
                event = target
                continue
            if target.callbacks is None:
                event = target
                continue
            target.callbacks.append(self._resume)
            self._target = target
            break
        self.env._active_process = None

    def _settle(self, ok, value):
        if ok:
            self.succeed(value)
        else:
            if not isinstance(value, BaseException):  # pragma: no cover
                value = SimulationError(repr(value))
            self.fail(value)


class Condition(Event):
    """Waits on several events; settles when ``check`` says so.

    Fails immediately if any constituent fails first.
    """

    __slots__ = ("_events", "_check", "_settled")

    def __init__(self, env, events, check):
        super().__init__(env)
        self._events = list(events)
        self._check = check
        self._settled = []
        for event in self._events:
            if not isinstance(event, Event):
                raise TypeError("condition over non-event %r" % (event,))
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.processed:
                self._on_settle(event)
            else:
                event.callbacks.append(self._on_settle)
        # A waiter interrupted mid-condition abandons the whole tree: pass
        # the abandonment down so resource grants / store getters queued
        # under an AnyOf give their slot back instead of leaking it.
        self._abandon = self._abandon_constituents

    def _abandon_constituents(self):
        for event in self._events:
            if not event.processed and event._abandon is not None:
                event._abandon()

    def _on_settle(self, event):
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            # Fail with the constituent's exception object itself: cloning
            # via type(exc)(*exc.args) would lose kwargs-only parameters
            # and any attributes attached after construction.
            self.fail(event._value)
            return
        self._settled.append(event)
        if self._check(self._events, len(self._settled)):
            self.succeed(self._collect())

    def _collect(self):
        return {e: e._value for e in self._settled}

    def _absorb_into(self, cls):
        """Release the constituents for flattening into a new ``cls``, or
        return None when this condition must stay a constituent itself.

        Only an unobserved pending condition of the exact same type may be
        absorbed: once anything waits on it (or it has settled), its own
        identity is load-bearing and flattening would change behavior.
        """
        if type(self) is not cls or self.triggered or self.callbacks:
            return None
        for event in self._events:
            callbacks = event.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(self._on_settle)
                except ValueError:  # pragma: no cover - defensive
                    pass
        return self._events


class AllOf(Condition):
    """Settles once every constituent event has settled successfully."""

    __slots__ = ()

    def __init__(self, env, events):
        super().__init__(env, events, lambda events, count: count >= len(events))


class AnyOf(Condition):
    """Settles as soon as at least one constituent event settles."""

    __slots__ = ()

    def __init__(self, env, events):
        super().__init__(env, events, lambda events, count: count >= 1)


def _chain(env, cls, left, right):
    """Build ``cls`` over ``left``/``right``, absorbing unobserved pending
    intermediates of the same type so ``a & b & c`` yields one flat
    condition over three events instead of a nested two-level tree."""
    events = []
    for side in (left, right):
        absorbed = side._absorb_into(cls) if isinstance(side, Condition) else None
        if absorbed is None:
            events.append(side)
        else:
            events.extend(absorbed)
    return cls(env, events)
