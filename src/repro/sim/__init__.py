"""Discrete-event simulation kernel (simpy-style, built from scratch).

Public surface:

* :class:`Environment` — clock + event queue + run loop.
* :class:`Event`, :class:`Timeout`, :class:`Process` — waitables.
* :class:`AllOf` / :class:`AnyOf` — event composition.
* :class:`Resource`, :class:`Store`, :class:`Gate` — contention primitives.
* :class:`Interrupt` — asynchronous cancellation of a process.
* :class:`SeededStreams` — deterministic named RNG streams.
"""

from .errors import (
    EmptySchedule,
    EventAlreadyTriggered,
    Interrupt,
    SimulationError,
    StopSimulation,
)
from .events import AllOf, AnyOf, Condition, Event, Process, Timeout
from .loop import Environment
from .resources import Gate, Resource, Store
from .rng import SeededStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "EmptySchedule",
    "Environment",
    "Event",
    "EventAlreadyTriggered",
    "Gate",
    "Interrupt",
    "Process",
    "Resource",
    "SeededStreams",
    "SimulationError",
    "Store",
    "StopSimulation",
    "Timeout",
]
