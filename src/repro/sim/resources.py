"""Shared-resource primitives built on the event kernel.

These model contention points in the simulated cluster: CPU cores on an
invoker, NIC doorbells, the per-machine kernel threads that serve descriptor
fetches, etc.
"""

from collections import deque

from .errors import SimulationError
from .events import Event


class Resource:
    """A counted resource with FIFO admission (a semaphore).

    Processes ``yield resource.acquire()`` to obtain a slot and must call
    :meth:`release` exactly once per grant.
    """

    def __init__(self, env, capacity=1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got %r" % (capacity,))
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters = deque()

    @property
    def in_use(self):
        """Number of currently held slots."""
        return self._in_use

    @property
    def queued(self):
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def acquire(self):
        """Return an event that fires once a slot is granted."""
        grant = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.succeed(self)
        else:
            self._waiters.append(grant)
        grant._abandon = lambda: self._abandon_grant(grant)
        return grant

    def _abandon_grant(self, grant):
        """A waiter was interrupted: give its slot (or queue spot) back."""
        if grant.triggered:
            # The slot was already granted but will never be used/released
            # by the dead waiter; hand it to the next in line.
            self.release()
        else:
            try:
                self._waiters.remove(grant)
            except ValueError:
                pass

    def release(self):
        """Return a slot; wakes the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without matching acquire()")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO hand-off queue between processes.

    ``put`` never blocks; ``get`` returns an event that fires with the oldest
    item once one is available.
    """

    def __init__(self, env):
        self.env = env
        self._items = deque()
        self._getters = deque()

    def __len__(self):
        return len(self._items)

    def put(self, item):
        """Deposit ``item``; wakes the oldest blocked getter if any."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:  # skip cancelled getters
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self):
        """Return an event that fires with the next item."""
        getter = Event(self.env)
        if self._items:
            getter.succeed(self._items.popleft())
        else:
            self._getters.append(getter)
        getter._abandon = lambda: self._abandon_get(getter)
        return getter

    def _abandon_get(self, getter):
        """An interrupted getter returns its item (if granted) to the queue."""
        if getter.triggered:
            self._items.appendleft(getter._value)
        else:
            self.cancel(getter)

    def cancel(self, getter):
        """Withdraw a pending getter (it will never fire)."""
        try:
            self._getters.remove(getter)
        except ValueError:
            pass


class Gate:
    """A broadcast condition: many waiters, released all at once.

    Unlike :class:`Event`, a gate can be re-armed after each :meth:`open`,
    which suits recurring signals (e.g. "a page arrived, recheck").
    """

    def __init__(self, env):
        self.env = env
        self._waiters = []

    def wait(self):
        """Return an event that fires at the next :meth:`open`."""
        waiter = Event(self.env)
        self._waiters.append(waiter)
        return waiter

    def open(self, value=None):
        """Fire all current waiters with ``value`` and re-arm."""
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed(value)
        return len(waiters)

    def cancel(self, waiter):
        """Withdraw a pending waiter (it will never fire)."""
        try:
            self._waiters.remove(waiter)
        except ValueError:
            pass
