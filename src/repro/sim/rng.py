"""Deterministic random-number streams for reproducible experiments.

Every stochastic component draws from a named stream derived from a single
experiment seed, so that enabling/disabling one subsystem does not perturb
the draws seen by another (a classic simulation-reproducibility pitfall).
"""

import hashlib
import random


class SeededStreams:
    """A factory of independent, deterministic random streams."""

    def __init__(self, seed=0):
        self.seed = seed
        self._streams = {}

    def stream(self, name):
        """Return (creating if needed) the stream with the given name."""
        if name not in self._streams:
            digest = hashlib.sha256(
                ("%s/%s" % (self.seed, name)).encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def exponential(self, name, mean):
        """One draw from Exp(mean) on the named stream."""
        return self.stream(name).expovariate(1.0 / mean)

    def uniform(self, name, low, high):
        """One uniform draw on the named stream."""
        return self.stream(name).uniform(low, high)

    def choice(self, name, seq):
        """One choice from ``seq`` on the named stream."""
        return self.stream(name).choice(seq)

    def shuffled(self, name, seq):
        """A shuffled copy of ``seq`` using the named stream."""
        items = list(seq)
        self.stream(name).shuffle(items)
        return items

    def lognormal(self, name, mu, sigma):
        """One lognormal draw on the named stream."""
        return self.stream(name).lognormvariate(mu, sigma)

    def randint(self, name, low, high):
        """One integer draw in [low, high] on the named stream."""
        return self.stream(name).randint(low, high)

    def random(self, name):
        """One [0,1) draw on the named stream."""
        return self.stream(name).random()
