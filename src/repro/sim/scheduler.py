"""Pluggable event schedulers for :class:`~repro.sim.loop.Environment`.

The environment stores pending events as ``(when, priority, eid, event)``
tuples and needs exactly four operations from its queue: ``push``,
``pop_entry`` (min-first), ``peek_when``, and ``peek_entry``.  Two
implementations provide them:

* :class:`HeapScheduler` — the default.  A :mod:`heapq` binary heap, and
  deliberately a ``list`` subclass so the run loop's emptiness test and
  the pop path cost exactly what the seed's raw ``heappush``/``heappop``
  did.  With ``REPRO_SCHED`` unset (or ``heap``) the event sequence is
  byte-identical to the seed.
* :class:`CalendarScheduler` — a calendar-queue / bucket-wheel
  (R. Brown, CACM 1988): events hash into year-of-``width``-days
  buckets, so ``push`` and ``pop_entry`` are O(1) amortized instead of
  O(log n) when the schedule is dense and near-uniform — the 10K-fork
  storm's regime.  Selected with ``REPRO_SCHED=calendar``.

Both pop in the identical total order — the full ``(when, priority,
eid)`` tuple — which the Hypothesis equivalence property in
``tests/test_scheduler.py`` pins down, ties, zero delays, and priority
events included.  The calendar keeps per-bucket heaps of the *same*
tuples, so same-timestamp events (which always land in the same bucket)
break ties exactly as the global heap does.
"""

import os
from heapq import heappop, heappush

#: Environment knob naming the scheduler (``heap`` | ``calendar``).
SCHED_ENV_VAR = "REPRO_SCHED"

SCHEDULERS = ("heap", "calendar")


def default_scheduler_name():
    """The scheduler ``REPRO_SCHED`` asks for (unset -> ``heap``)."""
    name = os.environ.get(SCHED_ENV_VAR, "") or "heap"
    if name not in SCHEDULERS:
        raise ValueError(
            "%s=%r: choose from %s" % (SCHED_ENV_VAR, name,
                                       "|".join(SCHEDULERS)))
    return name


def make_scheduler(name=None):
    """Instantiate a scheduler by name (default: ``REPRO_SCHED``)."""
    if name is None:
        name = default_scheduler_name()
    if name == "heap":
        return HeapScheduler()
    if name == "calendar":
        return CalendarScheduler()
    raise ValueError(
        "unknown scheduler %r: choose from %s" % (name,
                                                  "|".join(SCHEDULERS)))


class HeapScheduler(list):
    """Binary-heap scheduler — the seed's behaviour, verbatim.

    Subclassing ``list`` keeps ``while queue:`` in the hot drain loop a
    C-level truthiness test and lets ``heappush``/``heappop`` operate on
    ``self`` directly, so the only cost over the seed's raw heap is one
    bound-method call per push/pop.
    """

    __slots__ = ()

    name = "heap"

    def push(self, entry):
        """Insert a ``(when, priority, eid, event)`` entry."""
        heappush(self, entry)

    def pop_entry(self):
        """Remove and return the min entry; raises IndexError when empty."""
        return heappop(self)

    def peek_when(self):
        """Timestamp of the next entry, or ``inf`` when empty."""
        if not self:
            return float("inf")
        return self[0][0]

    def peek_entry(self):
        """The next entry without removing it, or ``None`` when empty."""
        if not self:
            return None
        return self[0]


#: Calendar sizing bounds.  Buckets double past 2x occupancy and halve
#: below 1/2x, the classic thresholds; the floor keeps degenerate tiny
#: schedules from thrashing resizes.
_MIN_BUCKETS = 16
_MAX_BUCKETS = 1 << 20
#: Entries sampled for Brown's bucket-width rule at each resize.
_WIDTH_SAMPLE = 25


class CalendarScheduler:
    """Calendar-queue scheduler: a bucket wheel over simulated time.

    Entry ``(when, priority, eid, event)`` lives in bucket
    ``int(when / width) % nbuckets``; a "year" is ``nbuckets * width``.
    ``pop_entry`` walks the wheel from the current day and takes the
    head of the first bucket whose head still falls inside the current
    year; a full revolution without a hit (sparse far-future schedules —
    heartbeat timers orders of magnitude past the paging traffic) falls
    back to a direct min scan, then fast-forwards the calendar there.

    Per-bucket ordering is a heap of the full tuples, so the pop order
    equals :class:`HeapScheduler`'s total order exactly (same-``when``
    entries always share a bucket, where ``(priority, eid)`` decides).
    """

    __slots__ = ("_buckets", "_width", "_size", "_day", "_year_end",
                 "_last_when")

    name = "calendar"

    def __init__(self, width=1.0, nbuckets=_MIN_BUCKETS):
        if width <= 0:
            raise ValueError("bucket width must be positive")
        self._buckets = [[] for _ in range(nbuckets)]
        self._width = float(width)
        self._size = 0
        #: Wheel position: index of the bucket ``pop_entry`` scans next.
        self._day = 0
        #: Exclusive end of the day ``_day`` currently covers.
        self._year_end = self._width
        #: Clock floor — the ``when`` of the last pop; new entries below
        #: the current day still pop correctly via the direct-scan path.
        self._last_when = 0.0

    def __len__(self):
        return self._size

    def __bool__(self):
        return self._size > 0

    def _bucket_index(self, when):
        return int(when / self._width) % len(self._buckets)

    def push(self, entry):
        """Insert a ``(when, priority, eid, event)`` entry."""
        heappush(self._buckets[self._bucket_index(entry[0])], entry)
        self._size += 1
        if self._size > 2 * len(self._buckets):
            self._resize(2 * len(self._buckets))

    def pop_entry(self):
        """Remove and return the min entry; raises IndexError when empty."""
        if not self._size:
            raise IndexError("pop from an empty calendar")
        buckets = self._buckets
        nbuckets = len(buckets)
        day = self._day
        year_end = self._year_end
        width = self._width
        for _ in range(nbuckets):
            bucket = buckets[day]
            if bucket and bucket[0][0] < year_end:
                entry = heappop(bucket)
                self._day = day
                self._year_end = year_end
                self._last_when = entry[0]
                self._size -= 1
                if (self._size < len(buckets) // 2
                        and len(buckets) > _MIN_BUCKETS):
                    self._resize(max(_MIN_BUCKETS, len(buckets) // 2))
                return entry
            day = (day + 1) % nbuckets
            year_end += width
        # A full revolution found nothing inside the year: every pending
        # entry is at least a year out.  Direct-scan the bucket heads,
        # pop the global min, and fast-forward the wheel to its day.
        entry = min(bucket[0] for bucket in buckets if bucket)
        bucket = buckets[self._bucket_index(entry[0])]
        heappop(bucket)
        self._day = self._bucket_index(entry[0])
        self._year_end = (int(entry[0] / width) + 1) * width
        self._last_when = entry[0]
        self._size -= 1
        return entry

    def peek_entry(self):
        """The next entry without removing it, or ``None`` when empty."""
        if not self._size:
            return None
        return min(bucket[0] for bucket in self._buckets if bucket)

    def peek_when(self):
        """Timestamp of the next entry, or ``inf`` when empty."""
        entry = self.peek_entry()
        return float("inf") if entry is None else entry[0]

    def _resize(self, nbuckets):
        """Rebuild the wheel with ``nbuckets`` buckets and a re-estimated
        width (Brown's rule: ~3x the mean gap between adjacent pending
        timestamps, sampled from the earliest entries)."""
        nbuckets = min(max(nbuckets, _MIN_BUCKETS), _MAX_BUCKETS)
        entries = [entry for bucket in self._buckets for entry in bucket]
        self._width = self._estimate_width(entries)
        self._buckets = [[] for _ in range(nbuckets)]
        for entry in entries:
            heappush(self._buckets[self._bucket_index(entry[0])], entry)
        floor = self._last_when
        self._day = self._bucket_index(floor)
        self._year_end = (int(floor / self._width) + 1) * self._width

    def _estimate_width(self, entries):
        if len(entries) < 2:
            return self._width
        sample = sorted(entry[0] for entry in entries)[:_WIDTH_SAMPLE]
        gaps = [b - a for a, b in zip(sample, sample[1:]) if b > a]
        if not gaps:
            return self._width
        mean_gap = sum(gaps) / len(gaps)
        return max(3.0 * mean_gap, 1e-9)
