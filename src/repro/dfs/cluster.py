"""The DFS data path: monitor, OSDs, client operations."""

import hashlib

from .. import params
from ..sim import Resource


class DfsError(Exception):
    """Missing objects, bad ranges, or placement failures."""


class Osd:  # reprolint: owner=machine
    """One object-storage daemon: a serialized service loop + DRAM pool."""

    def __init__(self, env, machine):
        self.env = env
        self.machine = machine
        self.service = Resource(env, capacity=1)
        self.stored_bytes = 0
        self.requests_served = 0

    def serve(self, nbytes):
        """Hold the OSD's service loop while one request is processed.

        Per-request CPU plus bandwidth-proportional data movement, fully
        serialized: queueing here is what collapses CRIU-remote's
        throughput when thousands of restores hit the DFS at once (Fig. 10).
        Generator.
        """
        yield self.service.acquire()
        try:
            yield self.env.timeout(
                params.DFS_OSD_REQUEST_CPU
                + params.transfer_time(nbytes, params.DFS_OSD_BANDWIDTH))
        finally:
            self.service.release()
        self.requests_served += 1


class _StoredObject:
    __slots__ = ("name", "nbytes", "payload", "osd")

    def __init__(self, name, nbytes, payload, osd):
        self.name = name
        self.nbytes = nbytes
        self.payload = payload
        self.osd = osd


class CephLikeDfs:  # reprolint: owner=cluster
    """The DFS cluster: deterministic placement over a set of OSD machines."""

    def __init__(self, env, fabric, osd_machines):
        if not osd_machines:
            raise ValueError("need at least one OSD machine")
        self.env = env
        self.fabric = fabric
        self.osds = [Osd(env, m) for m in osd_machines]
        self._objects = {}

    # --- Placement -------------------------------------------------------------
    def _place(self, name):
        digest = hashlib.sha256(name.encode()).digest()
        return self.osds[int.from_bytes(digest[:4], "big") % len(self.osds)]

    def exists(self, name):
        """True if an object of that name is stored."""
        return name in self._objects

    def size(self, name):
        """Stored object size in bytes."""
        return self._lookup(name).nbytes

    def payload(self, name):
        """The opaque payload attached at put() (e.g. a checkpoint image)."""
        return self._lookup(name).payload

    def _lookup(self, name):
        try:
            return self._objects[name]
        except KeyError:
            raise DfsError("no such object %r" % (name,))

    # --- Client operations -------------------------------------------------------
    def put(self, client_machine, name, nbytes, payload=None):
        """Store an object.  Generator."""
        if nbytes < 0:
            raise DfsError("negative object size")
        osd = self._place(name)
        yield self.env.timeout(params.DFS_METADATA_LATENCY)
        yield from self._wire(client_machine, osd.machine, nbytes)
        yield from osd.serve(nbytes)
        osd.machine.memory.alloc(nbytes)
        osd.stored_bytes += nbytes
        self._objects[name] = _StoredObject(name, nbytes, payload, osd)

    def get(self, client_machine, name):
        """Read a whole object.  Generator returning its size."""
        obj = self._lookup(name)
        yield self.env.timeout(params.DFS_METADATA_LATENCY)
        yield self.env.timeout(2 * params.DFS_REQUEST_OVERHEAD)
        yield from obj.osd.serve(obj.nbytes)
        yield from self._wire(obj.osd.machine, client_machine, obj.nbytes)
        return obj.nbytes

    def get_range(self, client_machine, name, nbytes):
        """Read part of an object (metadata-only reads, partial restores)."""
        obj = self._lookup(name)
        if nbytes > obj.nbytes:
            raise DfsError("range %d beyond object size %d" % (nbytes, obj.nbytes))
        yield self.env.timeout(params.DFS_METADATA_LATENCY)
        yield self.env.timeout(2 * params.DFS_REQUEST_OVERHEAD)
        yield from obj.osd.serve(nbytes)
        yield from self._wire(obj.osd.machine, client_machine, nbytes)
        return nbytes

    def page_in(self, client_machine, name):
        """Lazy single-page read: the on-demand restore path through DFS.

        Pays the fixed per-page software overhead (request mapping, file
        abstraction, messenger) that makes "+OnDemand DFS" slow down
        function *execution* (Fig. 2 d,e), plus OSD queueing.  Generator.
        """
        obj = self._lookup(name)
        yield self.env.timeout(params.DFS_LAZY_PAGE_LATENCY)
        yield from obj.osd.serve(params.PAGE_SIZE)
        yield from self._wire(obj.osd.machine, client_machine, params.PAGE_SIZE)
        return params.PAGE_SIZE

    def delete(self, name):
        """Remove an object and free its OSD memory."""
        obj = self._objects.pop(name, None)
        if obj is None:
            raise DfsError("no such object %r" % (name,))
        obj.osd.machine.memory.free(obj.nbytes)
        obj.osd.stored_bytes -= obj.nbytes

    # --- Internals ------------------------------------------------------------------
    def _wire(self, src_machine, dst_machine, nbytes):
        """Move bytes between client and OSD over the RDMA messenger."""
        if src_machine.machine_id == dst_machine.machine_id:
            return
        wire = self.fabric.wire_latency(src_machine, dst_machine)
        src_nic = self.fabric.nics.get(src_machine.machine_id)
        if src_nic is not None:
            yield from self.fabric.stream(src_nic, nbytes,
                                          dst_machine=dst_machine)
        else:
            yield self.env.timeout(
                params.transfer_time(nbytes, params.RDMA_BANDWIDTH))
        yield self.env.timeout(params.RDMA_READ_LATENCY + wire)
