"""A Ceph-like distributed file system substrate.

The paper's strongest C/R baseline stores checkpoint images in Ceph
configured for in-memory pools and RDMA messengers (§6).  We reproduce the
parts that determine its performance: metadata round trips, CRUSH-style
deterministic placement, per-OSD service capacity, and the per-page
software overhead of lazy (on-demand) reads that causes the 840%/81%
execution slowdowns of Fig. 2 (d,e).
"""

from .cluster import CephLikeDfs, DfsError, Osd

__all__ = ["CephLikeDfs", "DfsError", "Osd"]
