"""Trace exporters: Chrome ``trace_event`` JSON and a compact text tree.

The JSON document loads directly in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing``: spans become ``"X"`` complete events (``ts`` /
``dur`` are already microseconds — the sim clock's unit), span events
become thread-scoped ``"i"`` instants, tracer marks (injected faults)
become global instants.  Rows: ``pid`` is the machine id stamped on the
span (0 when absent) and ``tid`` groups each root's tree, so one
invocation reads as one timeline row per machine.
"""

import json

__all__ = ["chrome_trace", "text_tree", "write_chrome_trace"]


def _args(attrs):
    """Chrome-trace ``args``: keep JSON primitives, stringify the rest."""
    return {key: value if isinstance(value, (int, float, str, bool))
            or value is None else str(value)
            for key, value in attrs.items()}


def chrome_trace(tracer):
    """The tracer's forest as a Chrome ``trace_event`` document (dict)."""
    events = []
    pids = set()
    for tid, root in enumerate(tracer.roots, start=1):
        stack = [root]
        while stack:
            span = stack.pop()
            pid = span.attrs.get("machine", 0)
            pids.add(pid)
            duration = 0.0
            if span.end_time is not None:
                duration = span.end_time - span.start
            args = _args(span.attrs)
            if span.end_time is None:
                args["unfinished"] = True
            events.append({"ph": "X", "name": span.name,
                           "cat": span.name.split(".")[0],
                           "pid": pid, "tid": tid,
                           "ts": span.start, "dur": duration,
                           "args": args})
            for when, name, attrs in span.events:
                events.append({"ph": "i", "name": name, "cat": "annotation",
                               "pid": pid, "tid": tid, "ts": when,
                               "s": "t", "args": _args(attrs)})
            stack.extend(span.children)
    for when, name, attrs in tracer.marks:
        events.append({"ph": "i", "name": name, "cat": "timeline",
                       "pid": attrs.get("machine", 0), "tid": 0,
                       "ts": when, "s": "g", "args": _args(attrs)})
    for pid in sorted(pids):
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "ts": 0,
                       "args": {"name": "machine %d" % pid
                                if isinstance(pid, int) else str(pid)}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer, path):
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(tracer), handle, indent=1)
        handle.write("\n")
    return path


def text_tree(span, max_depth=None):
    """A compact indented rendering of one span tree."""
    lines = []
    _render(span, 0, max_depth, lines)
    return "\n".join(lines)


def _render(span, depth, max_depth, lines):
    if span.end_time is None:
        timing = "[%.2f .. open]" % span.start
    else:
        timing = "[%.2f .. %.2f]  %8.2f us" % (span.start, span.end_time,
                                               span.end_time - span.start)
    attrs = " ".join("%s=%s" % (key, value)
                     for key, value in sorted(span.attrs.items()))
    lines.append("%s%-28s %s%s" % ("  " * depth, span.name, timing,
                                   "  " + attrs if attrs else ""))
    for when, name, attrs_ in span.events:
        lines.append("%s* %s @ %.2f%s"
                     % ("  " * (depth + 1), name, when,
                        "  " + " ".join("%s=%s" % kv
                                        for kv in sorted(attrs_.items()))
                        if attrs_ else ""))
    if max_depth is not None and depth + 1 >= max_depth:
        return
    for child in sorted(span.children, key=lambda c: (c.start, c.name)):
        _render(child, depth + 1, max_depth, lines)
