"""Critical-path analysis over finished trace trees.

:func:`breakdown` partitions a root span's entire interval across the
tree: every child interval (clipped against its siblings, earlier start
wins) is charged to the child, gaps between children are charged to the
parent as *self time*, and the charges sum **exactly** to the root's
end-to-end duration — the invariant that lets a trace reproduce the
paper's breakdown tables and be cross-checked against hand-placed
recorders.  ``max_depth`` stops the recursion so, e.g., a fork span's
phase-level split ignores per-verb detail.

:func:`critical_path` walks the chain of latest-finishing children —
the spans whose completion gated the root's completion.
"""

__all__ = ["breakdown", "critical_path", "self_time"]


def breakdown(span, max_depth=None):
    """Attribute ``span``'s duration to stage names; values sum to it.

    Returns ``{name: microseconds}``.  Raises :class:`ValueError` if the
    tree under ``span`` is not fully ended (analyze at quiescence).
    """
    if span.end_time is None:
        raise ValueError("cannot analyze open span %r" % span.name)
    out = {}
    _attribute(span, span.start, span.end_time, 0, max_depth, out)
    return out


def _attribute(span, lo, hi, depth, max_depth, out):
    """Charge ``[lo, hi)`` to ``span``'s subtree, clipping children."""
    cursor = lo
    for child in sorted(span.children, key=lambda c: (c.start, c.end_time)):
        if child.end_time is None:
            raise ValueError("cannot analyze open span %r" % child.name)
        start = max(child.start, cursor)
        end = min(child.end_time, hi)
        if end <= start:
            continue
        if start > cursor:
            out[span.name] = out.get(span.name, 0.0) + (start - cursor)
        if max_depth is not None and depth + 1 >= max_depth:
            out[child.name] = out.get(child.name, 0.0) + (end - start)
        else:
            _attribute(child, start, end, depth + 1, max_depth, out)
        cursor = end
    if hi > cursor:
        out[span.name] = out.get(span.name, 0.0) + (hi - cursor)


def critical_path(span):
    """The root-to-leaf chain of latest-finishing children.

    Each hop is the child whose end time gated its parent's completion;
    the returned list starts at ``span`` itself.
    """
    path = [span]
    node = span
    while True:
        ended = [c for c in node.children if c.end_time is not None]
        if not ended:
            return path
        node = max(ended, key=lambda c: (c.end_time, c.start))
        path.append(node)


def self_time(span):
    """Time inside ``span`` not covered by any child (same clipping)."""
    parts = {}
    _attribute(span, span.start, span.end_time, 0, 1, parts)
    return parts.get(span.name, 0.0)
