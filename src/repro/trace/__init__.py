"""``repro.trace`` — causal span tracing, critical-path analysis, export.

See :mod:`repro.trace.tracer` for the span/context model,
:mod:`repro.trace.analysis` for the breakdown algorithm, and
:mod:`repro.trace.export` for the Perfetto-loadable Chrome format.
"""

from .analysis import breakdown, critical_path, self_time
from .export import chrome_trace, text_tree, write_chrome_trace
from .tracer import (
    NULL_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
    enabled_by_env,
    get_tracer,
    maybe_install,
)

__all__ = [
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "Span",
    "Tracer",
    "breakdown",
    "chrome_trace",
    "critical_path",
    "enabled_by_env",
    "get_tracer",
    "maybe_install",
    "self_time",
    "text_tree",
    "write_chrome_trace",
]
