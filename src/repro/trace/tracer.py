"""Causal span tracing over simulated time.

A :class:`Tracer` records explicit *spans* — named intervals of simulated
time with parent links, structured attributes, and point events — and
propagates the current span across the two boundaries where causality
would otherwise be lost:

* **process spawns** — :meth:`repro.sim.Environment.process` hands every
  new :class:`~repro.sim.events.Process` to :meth:`Tracer.on_spawn`, so a
  child process inherits the spawner's current span as its starting
  parent (RPC retry attempts, hedge legs, hosted invocations);
* **inline RPC / verb calls** — fail-free calls run inside the caller's
  generator, so the ordinary per-process span stack already nests them.

The tracer is **off by default**: ``Environment.tracer`` is ``None`` and
every instrumentation site guards with ``tracer is not None and
tracer.enabled``, keeping the untraced event sequence byte-identical and
the overhead to one attribute test (the perf harness gates the
installed-but-disabled worst case below 2% wall time).  Set
``REPRO_TRACE=1`` to have the standard rigs (:class:`PrimitiveRig`,
:class:`FnCluster`) install a tracer via :func:`maybe_install`.
"""

import os

from ..metrics import CounterSet, LatencyRecorder

__all__ = [
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "NullTracer",
    "Span",
    "Tracer",
    "enabled_by_env",
    "get_tracer",
    "maybe_install",
]


class Span:
    """A named interval of simulated time within one trace tree.

    Spans are context managers (``with tracer.start_span("x"):``) or can
    be held and closed explicitly with :meth:`end` — typically in a
    ``finally:`` so interrupts thrown into a generator still close them.
    """

    __slots__ = ("tracer", "name", "parent", "start", "end_time",
                 "attrs", "events", "children", "_ctx_key")

    def __init__(self, tracer, name, parent, start, attrs, ctx_key):
        self.tracer = tracer
        self.name = name
        self.parent = parent
        self.start = start
        self.end_time = None
        self.attrs = attrs
        self.events = []
        self.children = []
        self._ctx_key = ctx_key

    def __repr__(self):
        end = "open" if self.end_time is None else "%g" % self.end_time
        return "<Span %s [%g..%s] at %#x>" % (self.name, self.start, end,
                                              id(self))

    @property
    def ended(self):
        """True once :meth:`end` has stamped the closing time."""
        return self.end_time is not None

    @property
    def duration(self):
        """Simulated time covered by the span (requires it to be ended)."""
        if self.end_time is None:
            raise ValueError("span %r has not ended" % self.name)
        return self.end_time - self.start

    def set(self, **attrs):
        """Attach/overwrite structured attributes; returns the span."""
        self.attrs.update(attrs)
        return self

    def event(self, name, **attrs):
        """Record a point annotation at the current simulated time."""
        self.events.append((self.tracer.env.now, name, attrs))

    def end(self, **attrs):
        """Close the span at the current simulated time (idempotent)."""
        if self.end_time is None:
            if attrs:
                self.attrs.update(attrs)
            self.tracer._end_span(self)
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc is not None and "error" not in self.attrs:
            self.attrs["error"] = type(exc).__name__
        self.end()
        return False


class MetricsRegistry:
    """Named counters and histograms, unified with :mod:`repro.metrics`.

    Histograms *are* :class:`~repro.metrics.LatencyRecorder` instances, so
    existing recorder-based code can be backed by a tracer's registry with
    no API change: either ask the registry for a recorder by name
    (:meth:`histogram`) or :meth:`adopt` one that already exists.
    """

    def __init__(self):
        self.counters = CounterSet()
        self._histograms = {}

    def histogram(self, name):
        """The recorder registered under ``name``, created on first use."""
        recorder = self._histograms.get(name)
        if recorder is None:
            recorder = self._histograms[name] = LatencyRecorder(name)
        return recorder

    def adopt(self, recorder):
        """Register an existing recorder under its own name; returns it."""
        self._histograms[recorder.name] = recorder
        return recorder

    def incr(self, name, amount=1):
        """Bump the named counter."""
        self.counters.incr(name, amount)

    def histograms(self):
        """Snapshot of ``{name: recorder}``."""
        return dict(self._histograms)


class Tracer:
    """Records spans against an :class:`~repro.sim.Environment`.

    The *current* span is tracked per sim process (driver code — no
    active process — gets its own slot), and a freshly spawned process
    inherits the spawner's current span until it opens one of its own.
    """

    def __init__(self, env, enabled=True, registry=None,
                 record_durations=False, install=True):
        self.env = env
        #: Master switch every guarded call site tests.  An installed but
        #: disabled tracer is the worst-case off path the perf gate times.
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        #: When true, every ended span also records its duration into the
        #: registry histogram of the same name.  Off by default so spans
        #: can share names with hand-placed recorders (the cross-check in
        #: ``experiments trace``) without double-recording.
        self.record_durations = record_durations
        #: Every span ever started, in start order.
        self.spans = []
        #: Spans started with no parent (``root=True`` or no context).
        self.roots = []
        #: Global timeline instants ``(time, name, attrs)`` — injected
        #: faults, invoker wipes: things that are causes, not intervals.
        self.marks = []
        self._stacks = {}      # context key -> [open spans, innermost last]
        self._inherited = {}   # Process -> span inherited at spawn
        if install:
            env.tracer = self

    # Context -----------------------------------------------------------

    def current(self):
        """The innermost open span of the active context, if any."""
        key = self.env.active_process
        stack = self._stacks.get(key)
        if stack:
            return stack[-1]
        return self._inherited.get(key)

    def on_spawn(self, process):
        """Called by ``Environment.process``: inherit the current span."""
        span = self.current()
        if span is not None:
            self._inherited[process] = span
            # A Process is itself an Event; its settle callback is the
            # cleanup hook, so the dict never outgrows live processes.
            process.callbacks.append(self._forget)

    def _forget(self, process):
        self._inherited.pop(process, None)
        self._stacks.pop(process, None)

    # Spans --------------------------------------------------------------

    def start_span(self, name, root=False, **attrs):
        """Open a span under the current context (or as a new root)."""
        key = self.env.active_process
        parent = None if root else self.current()
        span = Span(self, name, parent, self.env.now, attrs, key)
        self.spans.append(span)
        if parent is None:
            self.roots.append(span)
        else:
            parent.children.append(span)
        stack = self._stacks.get(key)
        if stack is None:
            stack = self._stacks[key] = []
        stack.append(span)
        return span

    def _end_span(self, span):
        span.end_time = self.env.now
        stack = self._stacks.get(span._ctx_key)
        if stack:
            if stack[-1] is span:
                stack.pop()
            else:
                try:
                    stack.remove(span)
                except ValueError:
                    pass
            if not stack:
                self._stacks.pop(span._ctx_key, None)
        if self.record_durations:
            self.registry.histogram(span.name).record(
                span.end_time - span.start)

    # Annotations --------------------------------------------------------

    def mark(self, name, **attrs):
        """Stamp a global timeline instant (no span required)."""
        self.marks.append((self.env.now, name, attrs))

    def annotate(self, name, **attrs):
        """Event on the current span if one is open, else a global mark."""
        span = self.current()
        if span is not None:
            span.events.append((self.env.now, name, attrs))
        else:
            self.mark(name, **attrs)

    # Introspection ------------------------------------------------------

    def open_spans(self):
        """Spans not yet ended (should be empty at quiescence)."""
        return [span for span in self.spans if span.end_time is None]


class NullSpan:
    """Inert span: every operation is a no-op; usable as context manager."""

    __slots__ = ()

    name = "null"
    parent = None
    start = 0.0
    end_time = 0.0
    attrs = {}
    events = ()
    children = ()
    ended = True
    duration = 0.0

    def set(self, **attrs):
        """Discard the attributes; returns self for chaining."""
        return self

    def event(self, name, **attrs):
        """Discard the event."""

    def end(self, **attrs):
        """Do nothing; returns self for chaining."""
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


NULL_SPAN = NullSpan()


class NullTracer:
    """Inert tracer for unconditional call sites; records nothing."""

    enabled = False
    spans = ()
    roots = ()
    marks = ()

    def current(self):
        """Always ``None`` — there is never an open span."""
        return None

    def on_spawn(self, process):
        """Ignore the spawn."""

    def start_span(self, name, root=False, **attrs):
        """Return the shared :data:`NULL_SPAN`."""
        return NULL_SPAN

    def mark(self, name, **attrs):
        """Discard the mark."""

    def annotate(self, name, **attrs):
        """Discard the annotation."""

    def open_spans(self):
        """Always empty."""
        return []


NULL_TRACER = NullTracer()


def enabled_by_env():
    """True when ``REPRO_TRACE`` requests tracing for this run."""
    return os.environ.get("REPRO_TRACE", "") not in ("", "0")


def maybe_install(env):
    """Install a tracer on ``env`` if ``REPRO_TRACE=1`` asks for one.

    Returns the environment's tracer (existing one wins) or ``None`` —
    the standard rigs call this so plain runs stay untraced and
    zero-cost while ``REPRO_TRACE=1`` traces any experiment unchanged.
    """
    if env.tracer is not None:
        return env.tracer
    if enabled_by_env():
        return Tracer(env)
    return None


def get_tracer(env):
    """The environment's tracer, or :data:`NULL_TRACER` when untraced."""
    tracer = env.tracer
    return tracer if tracer is not None else NULL_TRACER
