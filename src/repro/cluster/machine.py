"""Machines: CPU, DRAM accounting, and attachment points for NIC/kernel."""

from .. import params
from ..sim import Resource


class OutOfMemoryError(Exception):
    """Raised when a machine's DRAM account would go over capacity."""


class MemoryAccount:  # reprolint: owner=machine
    """Byte-accurate DRAM accounting for one machine.

    Tracks current usage and the high-water mark; experiment harnesses
    sample it into a :class:`~repro.metrics.TimeSeries` to reproduce the
    paper's memory figures (Fig. 11 b, Fig. 12 b).
    """

    def __init__(self, capacity):
        self.capacity = capacity
        self.used = 0
        self.peak = 0

    def alloc(self, nbytes):
        """Charge ``nbytes`` against capacity; raises OutOfMemoryError when over."""
        if nbytes < 0:
            raise ValueError("cannot allocate %r bytes" % (nbytes,))
        if self.used + nbytes > self.capacity:
            raise OutOfMemoryError(
                "allocating %d bytes would exceed capacity (%d/%d used)"
                % (nbytes, self.used, self.capacity))
        self.used += nbytes
        if self.used > self.peak:
            self.peak = self.used
        return nbytes

    def free(self, nbytes):
        """Return ``nbytes`` to the account."""
        if nbytes < 0:
            raise ValueError("cannot free %r bytes" % (nbytes,))
        if nbytes > self.used:
            raise ValueError(
                "freeing %d bytes but only %d allocated" % (nbytes, self.used))
        self.used -= nbytes

    @property
    def available(self):
        """Bytes still unallocated."""
        return self.capacity - self.used


class Machine:  # reprolint: owner=machine
    """One cluster node: cores, DRAM, and (attached later) NIC and kernel.

    ``cores`` is a counted resource processes acquire to model CPU
    contention; ``sandbox_slots`` models the bounded concurrency of
    container/sandbox initialisation observed in the paper (§6.1: fork
    latency is "dominated by initializing the sandbox environment").
    """

    def __init__(self, env, machine_id, rack,
                 cores=params.CORES_PER_MACHINE,
                 dram=params.DRAM_PER_MACHINE,
                 sandbox_slots=params.SANDBOX_INIT_SLOTS):
        self.env = env
        self.machine_id = machine_id
        self.rack = rack
        self.cores = Resource(env, capacity=cores)
        self.memory = MemoryAccount(dram)
        self.sandbox_slots = Resource(env, capacity=sandbox_slots)
        self.nic = None      # attached by repro.rdma
        self.kernel = None   # attached by repro.kernel

    def __repr__(self):
        return "<Machine m%d rack=%d>" % (self.machine_id, self.rack)

    def __hash__(self):
        return hash(self.machine_id)

    def __eq__(self, other):
        return isinstance(other, Machine) and other.machine_id == self.machine_id
