"""Cluster topology: racks, switches, inter-machine wire latency.

Mirrors the paper's testbed (§6): 24 machines over two racks; 18 of them
RDMA-capable invokers behind two 100 Gbps switches, the rest acting as load
balancers without RNICs.
"""

from .. import params
from .machine import Machine


class Cluster:  # reprolint: owner=cluster
    """A set of machines with a rack-aware latency model."""

    def __init__(self, env, num_machines=params.NUM_MACHINES,
                 num_racks=params.NUM_RACKS, **machine_kwargs):
        if num_machines < 1:
            raise ValueError("need at least one machine")
        if num_racks < 1:
            raise ValueError("need at least one rack")
        self.env = env
        self.machines = [
            Machine(env, machine_id=i, rack=i % num_racks, **machine_kwargs)
            for i in range(num_machines)
        ]
        self.num_racks = num_racks

    def __len__(self):
        return len(self.machines)

    def __iter__(self):
        return iter(self.machines)

    def machine(self, machine_id):
        """The machine with the given id."""
        return self.machines[machine_id]

    def wire_latency(self, src, dst):
        """One-way propagation/switching latency between two machines.

        Same machine: zero (loopback handled by callers).  Same rack: one
        switch hop (folded into the base RDMA latency).  Cross rack: extra
        hop through the second switch.
        """
        if src.machine_id == dst.machine_id:
            return 0.0
        if src.rack == dst.rack:
            return 0.0
        return params.CROSS_RACK_EXTRA_LATENCY

    def split_roles(self, num_invokers=params.NUM_INVOKERS):
        """(invokers, load_balancers) per the paper's 18 + 6 split."""
        if num_invokers > len(self.machines):
            raise ValueError(
                "asked for %d invokers from a %d-machine cluster"
                % (num_invokers, len(self.machines)))
        invokers = self.machines[:num_invokers]
        balancers = self.machines[num_invokers:]
        return invokers, balancers
