"""Simulated cluster hardware: machines, DRAM accounting, topology."""

from .machine import Machine, MemoryAccount, OutOfMemoryError
from .topology import Cluster

__all__ = ["Cluster", "Machine", "MemoryAccount", "OutOfMemoryError"]
