"""Dynamic connected transport (DCT) targets and the target pool.

DCT is the advanced RDMA transport MITOSIS builds on (§4.2): one DC queue
pair can talk to any DC *target* on any machine, re-connecting in under a
microsecond.  MITOSIS assigns one DC target per parent VMA and revokes
access to a VMA's physical pages by destroying its target (§4.3) — the
"connection-based passive memory access control" that replaces MRs.
"""

from itertools import count

from .. import params


class DctKey:  # reprolint: owner=message
    """The 12-byte key a child must present to use a DC target.

    The paper treats the NIC-generated 4B number and the user-passed 8B key
    as one unit; so do we.
    """

    _nic_parts = count(0x1000)

    def __init__(self, user_part):
        self.nic_part = next(DctKey._nic_parts)
        self.user_part = user_part

    def __eq__(self, other):
        return (isinstance(other, DctKey)
                and other.nic_part == self.nic_part
                and other.user_part == self.user_part)

    def __hash__(self):
        return hash((self.nic_part, self.user_part))

    def __repr__(self):
        return "<DctKey %x/%x>" % (self.nic_part, self.user_part)

    @property
    def nbytes(self):
        """Wire size of the key (12 B)."""
        return params.DCT_KEY_BYTES


class DcTarget:  # reprolint: owner=machine
    """A DC target living on one machine's RNIC.

    ``active`` drops to False on destroy; the RNIC thereafter NAKs any
    request presenting this target (the passive-revocation signal children
    observe as :class:`~repro.rdma.errors.RemoteAccessError`).
    """

    _ids = count(1)

    def __init__(self, machine, user_key):
        self.machine = machine
        self.target_id = next(DcTarget._ids)
        self.key = DctKey(user_key)
        self.active = True

    def destroy(self):
        """Deactivate the target; the RNIC NAKs future requests."""
        self.active = False

    def admits(self, key):
        """True if the target is active and the key matches."""
        return self.active and key == self.key

    def credentials(self):
        """``(target_id, key)`` — the handle a remote DC QP presents.

        This pair is exactly what advertisement records distribute ahead
        of demand (``repro.connplane``): holding it lets any invoker read
        through the target without first asking the owner.
        """
        return self.target_id, self.key

    @property
    def nbytes(self):
        """NIC memory footprint of the target (144 B)."""
        return params.DC_TARGET_BYTES

    def __repr__(self):
        return "<DcTarget %d on m%d %s>" % (
            self.target_id, self.machine.machine_id,
            "active" if self.active else "destroyed")


class DcTargetPool:  # reprolint: owner=machine
    """Pre-created DC targets amortizing the 200 us creation cost (§4.3).

    ``take`` returns a pooled target instantly when available and triggers
    an asynchronous refill, so steady-state fork_prepare never pays target
    creation on the critical path.
    """

    def __init__(self, env, nic, size=16):
        self.env = env
        self.nic = nic
        self.size = size
        self._free = []
        self._created = 0

    def prefill(self):
        """Create the initial pool, paying creation time (a generator)."""
        for _ in range(self.size):
            yield self.env.timeout(params.DC_TARGET_CREATE_LATENCY)
            self._free.append(self.nic._new_target(user_key=self._created))
            self._created += 1

    def prefill_at_boot(self):
        """Fill the pool before the experiment clock starts (no sim time)."""
        while len(self._free) < self.size:
            self._free.append(self.nic._new_target(user_key=self._created))
            self._created += 1

    def take(self):
        """Get a target: free from the pool, else pay creation cost.

        Generator returning a :class:`DcTarget`.
        """
        if self._free:
            target = self._free.pop()
            self.env.process(self._refill_one())
            return target
        tracer = self.env.tracer
        if tracer is not None and tracer.enabled:
            # Pool empty: the 200 us creation lands on the critical path —
            # exactly the event worth seeing on a fork timeline.
            with tracer.start_span("dct.create_target",
                                   machine=self.nic.machine.machine_id):
                yield self.env.timeout(params.DC_TARGET_CREATE_LATENCY)
        else:
            yield self.env.timeout(params.DC_TARGET_CREATE_LATENCY)
        self._created += 1
        return self.nic._new_target(user_key=self._created)

    def _refill_one(self):
        yield self.env.timeout(params.DC_TARGET_CREATE_LATENCY)
        if len(self._free) < self.size:
            self._free.append(self.nic._new_target(user_key=self._created))
            self._created += 1

    @property
    def available(self):
        """Free targets currently pooled."""
        return len(self._free)
