"""Simulated RDMA stack: RNICs, RC/DC/UD transports, MRs, FaSST RPC.

The co-design surface MITOSIS relies on: one-sided READs into remote
physical memory, dynamic connected transport with per-target revocation,
and connection-less datagram RPC.
"""

from .dct import DcTarget, DcTargetPool, DctKey
from .errors import ConnectionError_, RdmaError, RegistrationError, RemoteAccessError
from .fabric import LoopbackFabric, RdmaFabric
from .mr import MemoryRegion, MrTable
from .nic import Rnic
from .qp import DcQp, RcQp, UdQp
from .rpc import RpcEndpoint, RpcError, RpcRuntime, RpcTimeout

__all__ = [
    "ConnectionError_",
    "DcQp",
    "DcTarget",
    "DcTargetPool",
    "DctKey",
    "LoopbackFabric",
    "MemoryRegion",
    "MrTable",
    "RcQp",
    "RdmaError",
    "RdmaFabric",
    "RegistrationError",
    "RemoteAccessError",
    "Rnic",
    "RpcEndpoint",
    "RpcError",
    "RpcRuntime",
    "RpcTimeout",
    "UdQp",
]
