"""The wire: moves bytes between RNICs with latency + bandwidth contention.

The model splits a one-sided operation into a small request packet (pure
latency) and a data stream (serialized on the *data source's* link, which is
where contention concentrates when thousands of children read one parent).
"""

from .. import params

from .nic import Rnic


class RdmaFabric:  # reprolint: owner=cluster
    """Attaches RNICs to machines and provides the transfer primitives."""

    def __init__(self, env, cluster, rdma_machines=None):
        self.env = env
        self.cluster = cluster
        #: Installed :class:`~repro.faults.FaultInjector`, or None.  Every
        #: fault check below the RDMA layer is gated on this being set, so
        #: the fail-free path costs one ``is None`` test and nothing else.
        self.faults = None
        #: Armed :class:`~repro.fabricnet.FabricNetwork`, or None.  Same
        #: gating contract: with this unset, ``stream`` is byte-identical
        #: to the point-to-point model and fabricnet never imports.
        self.net = None
        if rdma_machines is None:
            rdma_machines = list(cluster)
        self.nics = {}
        for machine in rdma_machines:
            nic = Rnic(env, machine, self)
            machine.nic = nic
            self.nics[machine.machine_id] = nic

    def nic_of(self, machine):
        """The RNIC attached to ``machine``; raises if none."""
        nic = self.nics.get(machine.machine_id)
        if nic is None:
            raise ValueError("machine %r has no RNIC" % (machine,))
        return nic

    def wire_latency(self, src_machine, dst_machine):
        """One-way propagation latency between two machines."""
        return self.cluster.wire_latency(src_machine, dst_machine)

    def path_up(self, src_machine, dst_machine):
        """False only when an installed injector says the path is broken."""
        if self.faults is None:
            return True
        return self.faults.path_up(src_machine.machine_id,
                                   dst_machine.machine_id)

    def stream(self, source_nic, nbytes, extra_time=0.0, dst_machine=None):
        """Occupy the source NIC's link while ``nbytes`` flow out of it.

        ``extra_time`` adds serialized per-transfer work at the source
        (e.g. per-datagram packetization CPU).  Generator; callers add
        their own propagation latency around it.

        ``dst_machine`` names where the bytes land.  The point-to-point
        model ignores it (contention lives at the source NIC only); an
        armed :class:`~repro.fabricnet.FabricNetwork` charges the
        transfer against every shared link between the two hosts
        instead of the egress token.
        """
        if nbytes <= 0 and extra_time <= 0:
            return
        if self.net is not None and dst_machine is not None:
            yield from self.net.transfer(source_nic.machine, dst_machine,
                                         nbytes, extra_time=extra_time)
            return
        duration = params.transfer_time(nbytes, params.RDMA_BANDWIDTH)
        yield source_nic.egress.acquire()
        try:
            yield self.env.timeout(duration + extra_time)
        finally:
            source_nic.egress.release()


class LoopbackFabric(RdmaFabric):
    """Single-machine fabric used by unit tests."""

    def __init__(self, env, cluster):
        super().__init__(env, cluster, rdma_machines=list(cluster))
