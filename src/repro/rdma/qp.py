"""Queue pairs: RC (static connected), DC (dynamic connected), UD (datagram).

All data-plane methods are generators (``yield from`` them inside a
process); they simulate timing and raise
:class:`~repro.rdma.errors.RemoteAccessError` where the real NIC would
return an error completion.
"""

from .. import params
from .errors import ConnectionError_, RemoteAccessError


class _QpBase:  # reprolint: owner=machine
    def __init__(self, nic):
        self.nic = nic
        self.env = nic.env

    def _fabric(self):
        return self.nic.fabric

    def _local_port_up(self):
        """False only when an installed injector downed our own port."""
        faults = self.nic.fabric.faults
        return faults is None or faults.nic_up(self.nic.machine.machine_id)

    def _path_up(self, peer_machine):
        """False only when an installed injector broke the path to peer."""
        return self.nic.fabric.path_up(self.nic.machine, peer_machine)

    def _degrade(self, peer_machine):
        """``(slowdown, extra_latency)`` for the path to ``peer_machine``.

        ``(1.0, 0.0)`` when healthy — applying it is then an exact float
        identity, so the fail-free timing stays bit-identical.
        """
        faults = self.nic.fabric.faults
        if faults is None or not faults.any_degraded:
            return 1.0, 0.0
        src = self.nic.machine.machine_id
        dst = peer_machine.machine_id
        return (faults.path_slowdown(src, dst),
                faults.link_extra_latency(src, dst))

    def _lossy_retx(self, peer_machine):
        """Generator: retransmit penalties on a lossy link.

        Reliable transports (RC/DC) don't lose packets to a lossy link —
        they pay for them: each drop draw costs one go-back-N retransmit
        penalty, re-drawn geometrically until the packet gets through.
        """
        faults = self.nic.fabric.faults
        if faults is None:
            return
        rate = faults.link_drop_rate(self.nic.machine.machine_id,
                                     peer_machine.machine_id)
        if rate <= 0.0:
            return
        while faults.streams.random("lossy-retx") < rate:
            self.nic.counters.incr("lossy_retx")
            tracer = self.env.tracer
            if tracer is not None and tracer.enabled:
                # Lands on the in-flight verb span when there is one.
                tracer.annotate("lossy_retx",
                                peer=peer_machine.machine_id)
            yield self.env.timeout(params.LOSSY_RETX_PENALTY)


class RcQp(_QpBase):  # reprolint: owner=machine
    """Reliable-connected QP: bound to one peer, several-KB footprint."""

    def __init__(self, nic, peer_machine):
        super().__init__(nic)
        self.peer = peer_machine
        self.connected = True
        #: "RTS" (ready to send) or "ERROR" — a reliable QP that saw a
        #: transport timeout transitions to ERROR and stays there until
        #: the connection is re-established (real RC semantics).
        self.state = "RTS"
        self.footprint = params.RCQP_FOOTPRINT_BYTES

    def close(self):
        """Tear the connection down; further verbs raise."""
        self.connected = False

    @property
    def usable(self):
        """True while verbs can still be posted (open and in RTS).

        The connection plane's pool check: a cached QP that went to
        ERROR (transport timeout) or was closed must be discarded, never
        handed out as warm.
        """
        return self.connected and self.state == "RTS"

    def _check_usable(self):
        if not self.connected:
            raise ConnectionError_("RCQP to m%d is closed" % self.peer.machine_id)
        if self.state != "RTS":
            raise ConnectionError_("RCQP to m%d is in ERROR state"
                                   % self.peer.machine_id)

    def _transport_timeout(self):
        """Exhaust the retry budget, move to ERROR, raise.  Generator."""
        yield self.env.timeout(params.RC_RETRY_TIMEOUT)
        self.state = "ERROR"
        self.nic.counters.incr("rc_timeouts")
        raise ConnectionError_(
            "RCQP to m%d: transport retries exhausted" % self.peer.machine_id)

    def read(self, length, rkey=None, addr=0):
        """One-sided READ of ``length`` bytes from the connected peer.

        With ``rkey`` the responder NIC performs the conventional MR bounds
        check and NAKs out-of-region accesses.
        """
        tracer = self.env.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.start_span("rdma.rc_read",
                                     machine=self.nic.machine.machine_id,
                                     peer=self.peer.machine_id, nbytes=length)
        try:
            self._check_usable()
            if not self._local_port_up():
                self.state = "ERROR"
                raise ConnectionError_("RCQP on m%d: local port down"
                                       % self.nic.machine.machine_id)
            if not self._path_up(self.peer):
                yield from self._transport_timeout()
            fabric = self._fabric()
            peer_nic = fabric.nic_of(self.peer)
            wire = fabric.wire_latency(self.nic.machine, self.peer)
            slow, extra = self._degrade(self.peer)
            yield from self._lossy_retx(self.peer)
            half = params.RDMA_READ_LATENCY / 2.0
            yield self.env.timeout((half + wire) * slow + extra)  # request
            if rkey is not None and not peer_nic.mrs.check(rkey, addr, length):
                yield self.env.timeout((half + wire) * slow + extra)  # NAK
                self.nic.counters.incr("rc_read_rejected")
                raise RemoteAccessError(
                    "MR check failed for rkey=%r addr=%#x len=%d"
                    % (rkey, addr, length))
            yield from fabric.stream(peer_nic, length,   # response data
                                     dst_machine=self.nic.machine)
            yield self.env.timeout((half + wire) * slow + extra)
            self.nic.counters.incr("rc_read")
            return length
        finally:
            if span is not None:
                span.end()

    def read_batch(self, npages, page_bytes, rkey=None, addr=0):
        """Doorbell-batched READ of ``npages`` contiguous pages (§4.1).

        Models the amortized cost structure of posting ``npages`` WQEs and
        ringing the doorbell once: a single request latency (plus a tiny
        per-extra-WQE posting cost), one MR check covering the whole range,
        the per-page payloads streamed back-to-back, and a single response
        latency.  Counters are charged per page so page-granularity
        accounting stays comparable with the unbatched path.
        """
        if npages <= 0:
            raise ValueError("read_batch of %d pages" % npages)
        tracer = self.env.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.start_span("rdma.rc_read_batch",
                                     machine=self.nic.machine.machine_id,
                                     peer=self.peer.machine_id, npages=npages)
        try:
            self._check_usable()
            if not self._local_port_up():
                self.state = "ERROR"
                raise ConnectionError_("RCQP on m%d: local port down"
                                       % self.nic.machine.machine_id)
            if not self._path_up(self.peer):
                yield from self._transport_timeout()
            fabric = self._fabric()
            peer_nic = fabric.nic_of(self.peer)
            wire = fabric.wire_latency(self.nic.machine, self.peer)
            slow, extra = self._degrade(self.peer)
            yield from self._lossy_retx(self.peer)
            half = params.RDMA_READ_LATENCY / 2.0
            length = npages * page_bytes
            # One doorbell: request latency paid once for the whole range.
            yield self.env.timeout(
                (half + wire + (npages - 1) * params.DOORBELL_WQE_OVERHEAD)
                * slow + extra)
            if rkey is not None and not peer_nic.mrs.check(rkey, addr, length):
                yield self.env.timeout((half + wire) * slow + extra)  # NAK
                self.nic.counters.incr("rc_read_rejected")
                raise RemoteAccessError(
                    "MR check failed for rkey=%r addr=%#x len=%d"
                    % (rkey, addr, length))
            yield from fabric.stream(peer_nic, length,   # per-page payloads
                                     dst_machine=self.nic.machine)
            yield self.env.timeout((half + wire) * slow + extra)
            self.nic.counters.incr("rc_read", npages)
            self.nic.counters.incr("rc_read_batches")
            return length
        finally:
            if span is not None:
                span.end()

    def write(self, length):
        """One-sided WRITE of ``length`` bytes to the connected peer."""
        tracer = self.env.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.start_span("rdma.rc_write",
                                     machine=self.nic.machine.machine_id,
                                     peer=self.peer.machine_id, nbytes=length)
        try:
            self._check_usable()
            if not self._local_port_up():
                self.state = "ERROR"
                raise ConnectionError_("RCQP on m%d: local port down"
                                       % self.nic.machine.machine_id)
            if not self._path_up(self.peer):
                yield from self._transport_timeout()
            fabric = self._fabric()
            wire = fabric.wire_latency(self.nic.machine, self.peer)
            slow, extra = self._degrade(self.peer)
            yield from self._lossy_retx(self.peer)
            yield from fabric.stream(self.nic, length,  # data leaves our link
                                     dst_machine=self.peer)
            yield self.env.timeout(
                (params.RDMA_READ_LATENCY + 2 * wire) * slow + extra)
            self.nic.counters.incr("rc_write")
            return length
        finally:
            if span is not None:
                span.end()


class DcQp(_QpBase):  # reprolint: owner=machine
    """Dynamic-connected QP: one QP reaches any DC target on any machine.

    Re-targeting costs <1 us (§4.2); each request carries the 12 B DCT key
    and the remote RDMA address for routing.
    """

    def __init__(self, nic):
        super().__init__(nic)
        self._last_target_id = None

    def read(self, target_machine, target_id, key, length):
        """One-sided READ via a DC target.

        Raises :class:`RemoteAccessError` if the target was destroyed or the
        key mismatches — this NAK is exactly how children *passively* learn
        the parent reclaimed the underlying physical pages (§4.3).  A *dead*
        or unreachable peer is different: the transport burns its retry
        budget and completes in error with :class:`ConnectionError_`, so
        callers can tell "revoked" (expected) from "dead" (recover).
        """
        tracer = self.env.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.start_span("rdma.dc_read",
                                     machine=self.nic.machine.machine_id,
                                     peer=target_machine.machine_id,
                                     nbytes=length)
        try:
            fabric = self._fabric()
            if not self._local_port_up():
                raise ConnectionError_("DCQP on m%d: local port down"
                                       % self.nic.machine.machine_id)
            if not self._path_up(target_machine):
                yield self.env.timeout(params.DC_RETRY_TIMEOUT)
                self.nic.counters.incr("dc_timeouts")
                raise ConnectionError_(
                    "DC peer m%d unreachable: transport retries exhausted"
                    % target_machine.machine_id)
            peer_nic = fabric.nic_of(target_machine)
            wire = fabric.wire_latency(self.nic.machine, target_machine)
            slow, extra = self._degrade(target_machine)
            yield from self._lossy_retx(target_machine)
            if target_id != self._last_target_id:
                if span is not None:
                    span.event("dct_reconnect", target=target_id)
                yield self.env.timeout(params.DCT_RECONNECT_LATENCY * slow)
                self._last_target_id = target_id
            half = params.RDMA_READ_LATENCY / 2.0
            yield self.env.timeout(
                (half + wire + params.DCT_REQUEST_OVERHEAD) * slow + extra)
            if not peer_nic.admits_dct(target_id, key):
                yield self.env.timeout((half + wire) * slow + extra)
                self.nic.counters.incr("dc_read_rejected")
                raise RemoteAccessError(
                    "DC target %r rejected on m%d"
                    % (target_id, target_machine.machine_id))
            yield from fabric.stream(
                peer_nic, length + params.DCT_EXTRA_HEADER_BYTES,
                dst_machine=self.nic.machine)
            yield self.env.timeout((half + wire) * slow + extra)
            self.nic.counters.incr("dc_read")
            return length
        finally:
            if span is not None:
                span.end()

    def read_batch(self, target_machine, target_id, key, npages, page_bytes):
        """Doorbell-batched READ of ``npages`` contiguous pages via a DC
        target (§4.1 + §4.2).

        Same failure semantics as :meth:`read` — a destroyed target NAKs
        the whole batch with :class:`RemoteAccessError` (the passive
        reclamation signal covers every page behind the target at once),
        and an unreachable peer burns one retry budget for the batch.  The
        cost model is one request packet (single doorbell ring, tiny
        per-extra-WQE posting cost), per-page payloads each carrying the
        DCT header, and one response latency.
        """
        if npages <= 0:
            raise ValueError("read_batch of %d pages" % npages)
        tracer = self.env.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.start_span("rdma.dc_read_batch",
                                     machine=self.nic.machine.machine_id,
                                     peer=target_machine.machine_id,
                                     npages=npages)
        try:
            fabric = self._fabric()
            if not self._local_port_up():
                raise ConnectionError_("DCQP on m%d: local port down"
                                       % self.nic.machine.machine_id)
            if not self._path_up(target_machine):
                yield self.env.timeout(params.DC_RETRY_TIMEOUT)
                self.nic.counters.incr("dc_timeouts")
                raise ConnectionError_(
                    "DC peer m%d unreachable: transport retries exhausted"
                    % target_machine.machine_id)
            peer_nic = fabric.nic_of(target_machine)
            wire = fabric.wire_latency(self.nic.machine, target_machine)
            slow, extra = self._degrade(target_machine)
            yield from self._lossy_retx(target_machine)
            if target_id != self._last_target_id:
                if span is not None:
                    span.event("dct_reconnect", target=target_id)
                yield self.env.timeout(params.DCT_RECONNECT_LATENCY * slow)
                self._last_target_id = target_id
            half = params.RDMA_READ_LATENCY / 2.0
            yield self.env.timeout(
                (half + wire + params.DCT_REQUEST_OVERHEAD
                 + (npages - 1) * params.DOORBELL_WQE_OVERHEAD) * slow + extra)
            if not peer_nic.admits_dct(target_id, key):
                yield self.env.timeout((half + wire) * slow + extra)
                self.nic.counters.incr("dc_read_rejected")
                raise RemoteAccessError(
                    "DC target %r rejected on m%d"
                    % (target_id, target_machine.machine_id))
            yield from fabric.stream(
                peer_nic,
                npages * (page_bytes + params.DCT_EXTRA_HEADER_BYTES),
                dst_machine=self.nic.machine)
            yield self.env.timeout((half + wire) * slow + extra)
            self.nic.counters.incr("dc_read", npages)
            self.nic.counters.incr("dc_read_batches")
            return npages * page_bytes
        finally:
            if span is not None:
                span.end()


class UdQp(_QpBase):  # reprolint: owner=machine
    """Unreliable-datagram QP: connection-less two-sided messaging.

    The transport under FaSST-style RPC (§4.1): no handshake, small
    per-message cost, used for descriptor-address queries and fallbacks.
    """

    MTU = 4096

    def send(self, target_machine, nbytes):
        """Send a datagram payload, fragmented at the 4 KB MTU.

        Each extra MTU chunk costs per-packet CPU at the sender — UD RPC
        is built for small control messages, not bulk payloads (§4.1).

        Returns the bytes *delivered*: ``nbytes`` normally, ``0`` when the
        datagram was lost in flight (dead path, or an injected drop) — UD
        really is unreliable once a fault injector is installed.  A downed
        local port is the one loud case (immediate send-CQ error).
        """
        tracer = self.env.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.start_span("rdma.ud_send",
                                     machine=self.nic.machine.machine_id,
                                     peer=target_machine.machine_id,
                                     nbytes=nbytes)
        try:
            fabric = self._fabric()
            faults = fabric.faults
            if faults is not None and not faults.nic_up(
                    self.nic.machine.machine_id):
                raise ConnectionError_("UD send on m%d: local port down"
                                       % self.nic.machine.machine_id)
            wire = fabric.wire_latency(self.nic.machine, target_machine)
            slow, extra = self._degrade(target_machine)
            chunks = max(1, (int(nbytes) + self.MTU - 1) // self.MTU)
            yield from fabric.stream(
                self.nic, nbytes,
                extra_time=(chunks - 1) * params.UD_PACKET_OVERHEAD,
                dst_machine=target_machine)
            yield self.env.timeout(
                (params.UD_RPC_BASE_LATENCY / 2.0 + wire) * slow + extra)
            self.nic.counters.incr("ud_send")
            if faults is not None:
                dst = target_machine.machine_id
                if (not faults.path_up(self.nic.machine.machine_id, dst)
                        or not faults.ud_delivered(
                            self.nic.machine.machine_id, dst)):
                    self.nic.counters.incr("ud_lost")
                    if span is not None:
                        span.set(lost=True)
                    return 0
            return nbytes
        finally:
            if span is not None:
                span.end()
