"""FaSST-style RPC over unreliable datagrams (§4.1).

Connection-less two-sided messaging used for the cheap control plane:
descriptor-address queries and the fallback-daemon page reads.  Each machine
runs a small, fixed pool of kernel worker threads (the paper deploys two) —
so RPC service capacity, not just wire time, bounds fallback throughput.
"""

from .. import params
from ..metrics import CounterSet
from ..sim import Resource, SeededStreams
from .errors import ConnectionError_, RdmaError
from .qp import UdQp


class RpcError(Exception):
    """Raised to the caller when the remote handler rejects the request."""


class RpcTimeout(RdmaError):
    """A call's deadline expired without an authoritative reply.

    Deliberately *not* an :class:`RpcError`: a rejection is a statement
    from a live peer, a timeout says the peer may be dead or the message
    was lost.  Recovery paths treat the two very differently ("revoked"
    vs. "dead", §4.3).
    """


#: Sentinel returned by an RPC attempt whose request or reply vanished:
#: the caller cannot observe the loss, it just waits out its deadline.
_LOST = object()


class RpcEndpoint:  # reprolint: owner=machine
    """One machine's RPC service: handler table + worker pool."""

    def __init__(self, env, nic, workers=params.MITOSIS_DAEMON_THREADS):
        self.env = env
        self.nic = nic
        self.machine = nic.machine
        self.workers = Resource(env, capacity=workers)
        self._handlers = {}
        # Boot-time UD QP, created before the experiment clock starts.
        self._udqp = UdQp(nic)

    def register(self, method, handler):
        """Install ``handler`` for ``method``.

        ``handler`` is a generator function ``(args) -> (value, reply_bytes)``
        run on this machine; it may yield simulation events and may raise
        :class:`RpcError` to fail the call.
        """
        if method in self._handlers:
            raise ValueError("handler for %r already registered" % (method,))
        self._handlers[method] = handler

    def handler_for(self, method):
        """The handler for ``method``; raises RpcError if absent."""
        try:
            return self._handlers[method]
        except KeyError:
            raise RpcError("no handler for %r on m%d"
                           % (method, self.machine.machine_id))


class RpcRuntime:  # reprolint: owner=cluster
    """Cluster-wide registry of RPC endpoints and the call primitive."""

    def __init__(self, env, fabric, streams=None):
        self.env = env
        self.fabric = fabric
        #: Deterministic jitter for retry backoff (``rpc-retry-jitter``).
        self.streams = streams or SeededStreams(0)
        self.counters = CounterSet()
        self._endpoints = {}

    def endpoint(self, machine, workers=params.MITOSIS_DAEMON_THREADS):
        """Get (creating on first use) the endpoint on ``machine``."""
        key = machine.machine_id
        if key not in self._endpoints:
            self._endpoints[key] = RpcEndpoint(
                self.env, self.fabric.nic_of(machine), workers=workers)
        return self._endpoints[key]

    def call(self, caller_machine, target_machine, method, args,
             request_bytes=64, deadline=None, retries=None, budget=None):
        """Invoke ``method`` on ``target_machine``; generator returning the value.

        Timing: UD request (latency + caller egress) -> queue for a worker
        -> handler's own simulated time -> UD reply (latency + target
        egress).  Local calls skip the wire but still queue for a worker.

        With no fault injector installed and no ``deadline``, the call is
        driven inline (zero extra events — the fail-free fast path).  Once
        faults are armed, every call races against a per-call ``deadline``
        (default :data:`~repro.params.RPC_DEFAULT_DEADLINE`) and retries up
        to ``retries`` times (default :data:`~repro.params.RPC_MAX_RETRIES`)
        with exponential backoff + seeded jitter; exhaustion raises
        :class:`RpcTimeout`.  A handler's :class:`RpcError` is authoritative
        and is never retried.

        ``budget`` (a :class:`~repro.resilience.RetryBudget`) caps retries
        across *every* call sharing one invocation: each resend must be
        paid for, and an exhausted budget fails the call immediately
        instead of letting per-call retry counts multiply.
        """
        tracer = self.env.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.start_span(
                "rpc.call", method=method,
                machine=caller_machine.machine_id,
                peer=target_machine.machine_id)
        try:
            caller_ep = self.endpoint(caller_machine)
            target_ep = self.endpoint(target_machine)
            remote = caller_machine.machine_id != target_machine.machine_id
            if self.fabric.faults is None and deadline is None:
                value = yield from self._attempt(caller_ep, target_ep, method,
                                                 args, request_bytes, remote)
                return value

            if deadline is None:
                deadline = params.RPC_DEFAULT_DEADLINE
            if retries is None:
                retries = params.RPC_MAX_RETRIES
            attempts = int(retries) + 1
            for attempt in range(attempts):
                attempt_proc = self.env.process(self._attempt(
                    caller_ep, target_ep, method, args, request_bytes, remote))
                timer = self.env.timeout(deadline)
                try:
                    yield self.env.any_of([attempt_proc, timer])
                except RpcError:
                    raise  # authoritative rejection from a live peer
                except ConnectionError_:
                    # Local port down (loud send-CQ error): retryable.
                    pass
                else:
                    if attempt_proc.triggered and attempt_proc.ok:
                        value = attempt_proc.value
                        if value is not _LOST:
                            return value
                        # Request or reply silently lost: the caller cannot
                        # observe that — it just waits out its deadline.
                        # (Timeouts are born `triggered`; `processed` is the
                        # has-it-actually-fired test.)
                        if not timer.processed:
                            yield timer
                    else:
                        # Deadline fired first; the straggler attempt may
                        # still complete (or fail) later — nobody is
                        # waiting for it.
                        attempt_proc.defuse()
                self.counters.incr("rpc_timeouts")
                if span is not None:
                    span.event("rpc_timeout", attempt=attempt)
                if attempt < attempts - 1:
                    if budget is not None and not budget.try_spend(
                            1, label="rpc:%s" % method):
                        self.counters.incr("rpc_budget_exhausted")
                        if span is not None:
                            span.event("rpc_budget_exhausted")
                        break
                    self.counters.incr("rpc_retries")
                    if span is not None:
                        span.event("rpc_retry", attempt=attempt)
                    backoff = min(
                        params.RPC_RETRY_BACKOFF_CAP,
                        params.RPC_RETRY_BACKOFF_BASE * (2 ** attempt))
                    backoff *= 1.0 + self.streams.uniform(
                        "rpc-retry-jitter", 0.0, params.RPC_RETRY_JITTER)
                    yield self.env.timeout(backoff)
            raise RpcTimeout(
                "%s to m%d: no reply within %g us per attempt"
                % (method, target_machine.machine_id, deadline))
        finally:
            if span is not None:
                span.end()

    def push(self, caller_machine, target_machine, nbytes):
        """One-way, best-effort UD datagram: no reply, no worker slot.

        Generator returning True when the payload arrived.  The primitive
        under ahead-of-demand distribution (``repro.connplane``'s
        advertisement pushes): losing one is harmless — the receiver just
        falls back to the authoritative RPC path — so there is no
        deadline, retry, or budget machinery here.
        """
        caller_ep = self.endpoint(caller_machine)
        if caller_machine.machine_id == target_machine.machine_id:
            return True  # local install, nothing on the wire
        delivered = yield from caller_ep._udqp.send(target_machine, nbytes)
        if not delivered:
            self.counters.incr("push_lost")
            return False
        faults = self.fabric.faults
        if faults is not None and not faults.machine_up(
                target_machine.machine_id):
            return False  # arrived at a dead NIC
        self.counters.incr("push_delivered")
        return True

    def _attempt(self, caller_ep, target_ep, method, args, request_bytes,
                 remote):
        """One request/serve/reply round; returns the value or ``_LOST``."""
        faults = self.fabric.faults
        if remote:
            delivered = yield from caller_ep._udqp.send(
                target_ep.machine, request_bytes)
            if not delivered:
                return _LOST
        if faults is not None and not faults.machine_up(
                target_ep.machine.machine_id):
            return _LOST  # the daemon is dead; the request falls on the floor
        try:
            handler = target_ep.handler_for(method)
        except RpcError:
            # Unknown method: the server still burns a worker slot on the
            # table miss and sends an error reply — the caller pays the
            # full round trip before seeing the rejection.
            yield target_ep.workers.acquire()
            try:
                yield self.env.timeout(params.RPC_UNKNOWN_METHOD_LATENCY)
            finally:
                target_ep.workers.release()
            if remote:
                delivered = yield from target_ep._udqp.send(
                    caller_ep.machine, 32)
                if not delivered:
                    return _LOST
            raise
        yield target_ep.workers.acquire()
        try:
            if faults is not None and not faults.machine_up(
                    target_ep.machine.machine_id):
                return _LOST  # crashed while the request sat in the queue
            value, reply_bytes = yield from handler(args)
        finally:
            target_ep.workers.release()
        if faults is not None and not faults.machine_up(
                target_ep.machine.machine_id):
            return _LOST  # crashed before the reply left the machine
        if remote:
            delivered = yield from target_ep._udqp.send(
                caller_ep.machine, reply_bytes)
            if not delivered:
                return _LOST
        return value
