"""FaSST-style RPC over unreliable datagrams (§4.1).

Connection-less two-sided messaging used for the cheap control plane:
descriptor-address queries and the fallback-daemon page reads.  Each machine
runs a small, fixed pool of kernel worker threads (the paper deploys two) —
so RPC service capacity, not just wire time, bounds fallback throughput.
"""

from .. import params
from ..sim import Resource
from .qp import UdQp


class RpcError(Exception):
    """Raised to the caller when the remote handler rejects the request."""


class RpcEndpoint:
    """One machine's RPC service: handler table + worker pool."""

    def __init__(self, env, nic, workers=params.MITOSIS_DAEMON_THREADS):
        self.env = env
        self.nic = nic
        self.machine = nic.machine
        self.workers = Resource(env, capacity=workers)
        self._handlers = {}
        # Boot-time UD QP, created before the experiment clock starts.
        self._udqp = UdQp(nic)

    def register(self, method, handler):
        """Install ``handler`` for ``method``.

        ``handler`` is a generator function ``(args) -> (value, reply_bytes)``
        run on this machine; it may yield simulation events and may raise
        :class:`RpcError` to fail the call.
        """
        if method in self._handlers:
            raise ValueError("handler for %r already registered" % (method,))
        self._handlers[method] = handler

    def handler_for(self, method):
        """The handler for ``method``; raises RpcError if absent."""
        try:
            return self._handlers[method]
        except KeyError:
            raise RpcError("no handler for %r on m%d"
                           % (method, self.machine.machine_id))


class RpcRuntime:
    """Cluster-wide registry of RPC endpoints and the call primitive."""

    def __init__(self, env, fabric):
        self.env = env
        self.fabric = fabric
        self._endpoints = {}

    def endpoint(self, machine, workers=params.MITOSIS_DAEMON_THREADS):
        """Get (creating on first use) the endpoint on ``machine``."""
        key = machine.machine_id
        if key not in self._endpoints:
            self._endpoints[key] = RpcEndpoint(
                self.env, self.fabric.nic_of(machine), workers=workers)
        return self._endpoints[key]

    def call(self, caller_machine, target_machine, method, args,
             request_bytes=64):
        """Invoke ``method`` on ``target_machine``; generator returning the value.

        Timing: UD request (latency + caller egress) -> queue for a worker
        -> handler's own simulated time -> UD reply (latency + target
        egress).  Local calls skip the wire but still queue for a worker.
        """
        caller_ep = self.endpoint(caller_machine)
        target_ep = self.endpoint(target_machine)
        remote = caller_machine.machine_id != target_machine.machine_id
        if remote:
            yield from caller_ep._udqp.send(target_machine, request_bytes)
        handler = target_ep.handler_for(method)
        yield target_ep.workers.acquire()
        try:
            value, reply_bytes = yield from handler(args)
        finally:
            target_ep.workers.release()
        if remote:
            yield from target_ep._udqp.send(caller_machine, reply_bytes)
        return value
