"""The RNIC: queue pairs, DC targets, memory regions, link serialization.

Creation-rate limits matter as much as wire speed in this paper: a machine
can only create ~700 RC queue pairs per second (§4.2), which is precisely
what caps the "base" design in the factor analysis (Fig. 15 b).
"""

from .. import params
from ..metrics import CounterSet
from ..sim import Resource
from .dct import DcTarget, DcTargetPool
from .mr import MrTable
from .qp import DcQp, RcQp, UdQp


class Rnic:  # reprolint: owner=machine
    """One machine's RDMA NIC."""

    def __init__(self, env, machine, fabric):
        self.env = env
        self.machine = machine
        self.fabric = fabric
        #: Serializes outbound data streams (the contended link direction).
        self.egress = Resource(env, capacity=1)
        #: RCQP creation is serialized and rate-limited on the NIC (§4.2).
        self._qp_factory = Resource(env, capacity=1)
        self.mrs = MrTable(env, machine)
        self.dc_targets = {}
        self.target_pool = DcTargetPool(env, self)
        self.counters = CounterSet()

    def __repr__(self):
        return "<Rnic m%d>" % self.machine.machine_id

    # --- Queue pairs ---------------------------------------------------------
    def create_rc_qp(self, peer_machine):
        """Create + connect an RC queue pair to one specific peer.

        Generator.  RC is connection-*ful*: the peer must create a matching
        QP, so its 700/s creation slot is consumed too — which is why one
        heavily-forked parent caps the whole cluster at ~700 forks/s in the
        Fig. 15 b "base" design.  The peer's creation overlaps the 4 ms
        handshake when uncontended.
        """
        qps = yield from self.create_rc_qps(peer_machine, 1)
        return qps[0]

    def create_rc_qps(self, peer_machine, count):
        """The ONE place RC connection setup is costed.

        Generator returning ``count`` connected :class:`RcQp`\\ s to one
        peer.  Every caller — the seed's one-QP-per-fork path and the
        connection plane's pooled/batched path — goes through here, so
        the creation-rate limit and the 4 ms handshake are never re-added
        inline at call sites.  A multi-QP batch makes *one* serialized
        pass through each NIC's QP factory: the first creation pays the
        full 1/700 s verbs round trip, the rest ride the same doorbell at
        :data:`~repro.params.CONNPLANE_QP_BATCH_LATENCY` each, and the
        whole batch shares one 4 ms handshake.
        """
        yield self._qp_factory.acquire()
        try:
            yield self.env.timeout(self._creation_pass_cost(count))
        finally:
            self._qp_factory.release()
        handshake_started = self.env.now
        peer_nic = self.fabric.nics.get(peer_machine.machine_id)
        if peer_nic is not None and peer_nic is not self:
            yield peer_nic._qp_factory.acquire()
            try:
                yield self.env.timeout(peer_nic._creation_pass_cost(count))
            finally:
                peer_nic._qp_factory.release()
            peer_nic.counters.incr("rcqp_created", count)
        remaining = params.RC_CONNECT_LATENCY - (self.env.now - handshake_started)
        if remaining > 0:
            yield self.env.timeout(remaining)
        self.counters.incr("rcqp_created", count)
        return [RcQp(self, peer_machine) for _ in range(count)]

    @staticmethod
    def _creation_pass_cost(count):
        """Factory occupancy for ``count`` creations in one batched pass.

        ``count == 1`` is exactly the seed's ``RCQP_CREATE_LATENCY`` —
        the off path must stay byte-identical.
        """
        return (params.RCQP_CREATE_LATENCY
                + (count - 1) * params.CONNPLANE_QP_BATCH_LATENCY)

    def create_dc_qp(self):
        """Create a DC queue pair (cheap; cached by the network daemon)."""
        yield self.env.timeout(params.DC_TARGET_CREATE_LATENCY)
        self.counters.incr("dcqp_created")
        return DcQp(self)

    def create_ud_qp(self):
        """Create a UD queue pair for connection-less (FaSST) RPC."""
        yield self.env.timeout(params.DC_TARGET_CREATE_LATENCY)
        self.counters.incr("udqp_created")
        return UdQp(self)

    # --- DC targets ------------------------------------------------------------
    def _new_target(self, user_key):
        target = DcTarget(self.machine, user_key)
        self.dc_targets[target.target_id] = target
        return target

    def destroy_target(self, target):
        """Revoke a DC target: the NIC will NAK all future requests to it.

        This is the parent-side half of MITOSIS's passive access control —
        O(1), no coordination with any child (§4.3).
        """
        target.destroy()
        self.dc_targets.pop(target.target_id, None)
        self.counters.incr("dct_destroyed")

    def admits_dct(self, target_id, key):
        """The responder-side connection check replacing MR checks."""
        target = self.dc_targets.get(target_id)
        return target is not None and target.admits(key)

    # --- Footprint accounting ----------------------------------------------------
    @property
    def dc_target_bytes(self):
        """NIC memory held by live DC targets."""
        return len(self.dc_targets) * params.DC_TARGET_BYTES
