"""Error types surfaced by the simulated RDMA fabric."""


class RdmaError(Exception):
    """Base class for RDMA-layer failures."""


class RemoteAccessError(RdmaError):
    """The RNIC rejected a one-sided access.

    Raised when a DC target has been destroyed (MITOSIS's passive
    memory-access revocation, §4.3), when a DCT key mismatches, or when an
    MR-based access falls outside a registered region.  The child OS treats
    this as the signal to take the RPC fallback path.
    """


class ConnectionError_(RdmaError):
    """A queue pair is not (or no longer) usable."""


class RegistrationError(RdmaError):
    """Invalid memory-registration request (bad bounds, double free)."""
