"""Memory regions: the conventional RDMA access-control mechanism.

MITOSIS ultimately *rejects* MR-based control (§3.1: registration cost grows
linearly with container size, and kernel-space DCT is incompatible with
on-the-fly registration), but we implement it faithfully both for the RC
baseline and for the ablation that quantifies why it loses.
"""

from itertools import count

from .. import params
from .errors import RegistrationError


class MemoryRegion:  # reprolint: owner=machine
    """A registered virtual-address range with an rkey."""

    _rkeys = count(1)

    def __init__(self, machine, addr, length):
        self.machine = machine
        self.addr = addr
        self.length = length
        self.rkey = next(MemoryRegion._rkeys)
        self.valid = True

    def covers(self, addr, length):
        """True if the access lies inside this valid region."""
        return (self.valid
                and addr >= self.addr
                and addr + length <= self.addr + self.length)

    def __repr__(self):
        return "<MR rkey=%d [%#x, +%d) %s>" % (
            self.rkey, self.addr, self.length,
            "valid" if self.valid else "revoked")


class MrTable:  # reprolint: owner=machine
    """Per-NIC table of registered regions."""

    def __init__(self, env, machine):
        self.env = env
        self.machine = machine
        self._regions = {}

    def register(self, addr, length):
        """Register [addr, addr+length); costs time linear in size (§3.1).

        Generator: ``yield from`` it inside a process.
        """
        if length <= 0:
            raise RegistrationError("cannot register %r bytes" % (length,))
        cost = (params.MR_REGISTER_BASE
                + params.MR_REGISTER_PER_MB * (length / params.MB))
        yield self.env.timeout(cost)
        region = MemoryRegion(self.machine, addr, length)
        self._regions[region.rkey] = region
        return region

    def deregister(self, region):
        """Invalidate a region so future accesses are rejected.

        Deregistration is fast relative to registration; we charge the base.
        """
        if region.rkey not in self._regions:
            raise RegistrationError("unknown rkey %r" % (region.rkey,))
        yield self.env.timeout(params.MR_REGISTER_BASE)
        region.valid = False
        del self._regions[region.rkey]

    def check(self, rkey, addr, length):
        """True iff an access of ``length`` at ``addr`` under ``rkey`` is legal."""
        region = self._regions.get(rkey)
        return region is not None and region.covers(addr, length)

    def __len__(self):
        return len(self._regions)
