"""Fabric conservation audit: the runtime shadow of ``raw-link-capacity``.

The static rule keeps every bandwidth/latency constant in ``params.py``
so the fabric model stays calibratable from one place; this auditor
checks the *arithmetic* those constants feed at a quiescent point:

* per-link byte conservation — every byte enqueued on a link was
  either delivered or dropped (a leak means a transfer path forgot its
  accounting branch, e.g. an interrupted hedge leg);
* queue sanity — no link's busy horizon sits in the past's future
  (``busy_until`` finite, never negative), and its drop/mark counters
  are non-negative;
* flow-rate bounds — no DCQCN flow's rate is negative, below the
  configured floor, or above its line rate (the link capacity it is
  paced against).
"""

from .. import params


def audit_fabric(net):
    """Audit one armed :class:`~repro.fabricnet.FabricNetwork`.

    Call at a quiescent point (event loop drained): in-flight
    transfers hold bytes that are neither delivered nor dropped yet,
    so mid-run the conservation check would false-positive.
    Returns a list of human-readable violation strings.
    """
    violations = []
    if net is None:
        return violations
    for link in net.topology.links():
        moved = link.bytes_delivered + link.bytes_dropped
        if moved != link.bytes_enqueued:
            violations.append(
                "link %s leaked bytes: enqueued=%d != delivered=%d "
                "+ dropped=%d" % (link.name, link.bytes_enqueued,
                                  link.bytes_delivered, link.bytes_dropped))
        if link.bytes_dropped < 0 or link.bytes_delivered < 0:
            violations.append(
                "link %s has a negative byte counter (delivered=%d, "
                "dropped=%d)" % (link.name, link.bytes_delivered,
                                 link.bytes_dropped))
        if link.busy_until < 0 or link.busy_until != link.busy_until:
            violations.append(
                "link %s busy horizon is invalid: %r"
                % (link.name, link.busy_until))
        if link.degrade_factor < 1.0:
            violations.append(
                "link %s degrade factor %.3f < 1 — a restore() outran "
                "its degrade()" % (link.name, link.degrade_factor))
        if link.cut < 0:
            violations.append(
                "link %s cut nesting count is negative (%d)"
                % (link.name, link.cut))
    for flow in net.flows():
        if flow.rate <= 0:
            violations.append(
                "flow m%d->m%d rate is not positive: %r"
                % (flow.key[0], flow.key[1], flow.rate))
        elif flow.rate > flow.line_rate * (1.0 + 1e-9):
            violations.append(
                "flow m%d->m%d rate %.3f exceeds line rate %.3f"
                % (flow.key[0], flow.key[1], flow.rate, flow.line_rate))
        elif (flow.marks > 0
                and flow.rate < params.FABRIC_MIN_FLOW_RATE * (1 - 1e-9)):
            violations.append(
                "flow m%d->m%d rate %.3f fell below the pacing floor %.3f"
                % (flow.key[0], flow.key[1], flow.rate,
                   params.FABRIC_MIN_FLOW_RATE))
        if not 0.0 <= flow.alpha <= 1.0:
            violations.append(
                "flow m%d->m%d alpha %.4f outside [0, 1]"
                % (flow.key[0], flow.key[1], flow.alpha))
    return violations
