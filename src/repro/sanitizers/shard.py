"""Runtime audit of the conservative-sync shard contract.

Cross-validates the ``scheduler-abstraction-leak`` lint rule's static
side the same way the race auditor backs the shard-boundary report:
statically the queue is only touched through the scheduler interface;
dynamically this auditor checks the protocol the sharded run relied on —

* no message undercuts the lookahead bound (``deliver_at`` at least
  ``lookahead`` past ``sent_at``),
* no message lands in a receiver's past, and deliveries are in the
  fixed merge order,
* windows advance monotonically,
* shard replicas agree (identical pick digests) and own a disjoint,
  complete partition of the cluster with namespaced event ids.

Accepts the three shapes shard runs produce: a list of live
:class:`~repro.shard.sync.ShardSim` instances, the per-shard report
dicts from :func:`~repro.shard.coordinator.run_windows_mp`, or a merged
fork-rig result from :func:`~repro.shard.fork_rig.run_sharded`.
"""

def _audit_windows(violations, label, windows):
    last_start = None
    for start, horizon in windows:
        if horizon < start:
            violations.append(
                "%s: window [%g, %g) ends before it starts"
                % (label, start, horizon))
        if last_start is not None and start < last_start:
            violations.append(
                "%s: window start %g went backwards (previous %g)"
                % (label, start, last_start))
        last_start = start


def _audit_traffic(violations, label, lookahead, sent, received):
    if lookahead <= 0:
        violations.append("%s: non-positive lookahead %r — the "
                          "conservative bound is vacuous"
                          % (label, lookahead))
    for message in sent:
        if message.deliver_at - message.sent_at < lookahead:
            violations.append(
                "%s: %r delivers %g after send — under the %g lookahead"
                % (label, message, message.deliver_at - message.sent_at,
                   lookahead))
    last_key = None
    for message in received:
        key = message.merge_key()
        if last_key is not None and key < last_key:
            violations.append(
                "%s: delivery of %r out of merge order" % (label, message))
        last_key = key


def _audit_sims(sims):
    violations = []
    for sim in sims:
        label = "shard %d" % sim.shard_id
        _audit_windows(violations, label, sim.windows)
        _audit_traffic(violations, label, sim.lookahead, sim.sent,
                       sim.received)
    return violations


def _audit_window_reports(reports):
    violations = []
    for report in reports:
        label = "shard %d" % report["shard"]
        _audit_windows(violations, label, report["windows"])
        _audit_traffic(violations, label, report["lookahead"],
                       report["sent"], report["received"])
    return violations


def _audit_rig_result(result):
    violations = []
    reports = result["shards"]
    digests = {report["pick_digest"] for report in reports}
    if len(digests) != 1:
        violations.append(
            "replica pick digests diverged: %s" % sorted(digests))
    for report in reports:
        if report["picks"] != result["num_forks"]:
            violations.append(
                "shard %d replayed %d picks, expected %d"
                % (report["shard"], report["picks"], result["num_forks"]))
        _audit_windows(violations, "shard %d" % report["shard"],
                       report["windows"])
        if report["lookahead"] <= 0:
            violations.append("shard %d: non-positive lookahead"
                              % report["shard"])
        if report["messages_sent"] or report["messages_received"]:
            violations.append(
                "shard %d claims the replay contract but exchanged "
                "%d/%d runtime messages"
                % (report["shard"], report["messages_sent"],
                   report["messages_received"]))
    owned = [index for report in reports
             for index in report["owned_invokers"]]
    if len(owned) != len(set(owned)):
        violations.append("invoker ownership overlaps across shards")
    bases = {report["eid_base"] for report in reports}
    if len(bases) != len(reports):
        violations.append("event-id namespaces collide across shards")
    seen = [entry[0] for entry in result["records"]]
    if seen != sorted(set(seen)) or len(seen) != result["num_forks"]:
        violations.append(
            "merged records are not a complete per-invocation partition")
    return violations


def audit_shard(run):
    """Audit one sharded run; returns violation strings (empty = clean)."""
    if isinstance(run, dict) and "shards" in run:
        return _audit_rig_result(run)
    run = list(run)
    if run and isinstance(run[0], dict):
        return _audit_window_reports(run)
    return _audit_sims(run)
