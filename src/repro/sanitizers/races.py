"""Runtime cross-validation of the static shard-boundary analysis.

The static pass (``tools/reprolint/dataflow``) claims a set of
*shard-boundary edges*: cells (``ClassName.attr``) that event handlers
touch across an ownership boundary, where same-timestamp ordering is
decided by the event loop's ``_eid`` insertion-order tie-break.  This
module replays a rig with :meth:`Environment.instrument_step` armed and
checks the claim from the other side:

* a :class:`RaceAuditor` snapshots registered cells around every
  ``step()`` and attributes each observed mutation to the event that
  ran (owner, attr, instance, timestamp, event id);
* two *different* events mutating the same cell instance at the same
  simulated timestamp is a **conflict** — the runtime shadow of a
  tie-order hazard;
* :func:`audit_races` flags every conflict on a cell the static report
  does **not** claim.  An empty result means no runtime-only surprises:
  the static edge set covers everything the rig actually raced on.

Observation is read-only snapshot diffing: the auditor never schedules
events, so the audited run's event *sequence* is byte-identical to an
unaudited one, and with the auditor not installed there is zero cost
(the ``step`` wrapper only exists while installed).

Limits, by construction: snapshot diffing sees *writes* only (R/W
hazards have no runtime shadow), and in-place mutations that keep a
container's cheap fingerprint unchanged (e.g. overwriting one dict
value) can escape; the static pass stays the source of truth, this is
its lower bound.
"""


def _fingerprint(value):
    """A cheap token that changes when ``value`` is (re)written.

    Scalars compare by value; containers by length plus a content sum
    where one is cheap (CounterSet totals, latency sample counts);
    other objects by identity, which catches rebinding the attribute
    but not interior mutation.
    """
    if value is None or isinstance(value, (int, float, str, bool)):
        return value
    counts = getattr(value, "_counts", None)
    if counts is not None:  # CounterSet: incr on an existing key
        return (len(counts), sum(counts.values()))
    samples = getattr(value, "values", None)
    if isinstance(samples, list):  # LatencyRecorder
        return ("samples", len(samples))
    records = getattr(value, "records", None)
    if isinstance(records, list):  # WriteAheadLog / RecoveryLog
        return ("records", len(records))
    try:
        return ("len", len(value))
    except TypeError:
        return ("id", id(value))


class RaceAuditor:
    """Snapshot-diff race detection around :meth:`Environment.step`."""

    def __init__(self, env, claimed_cells=None):
        self.env = env
        #: ``{"ClassName.attr", ...}`` the static report claims as
        #: shard-boundary edges (see ``dataflow.report.claimed_cells``).
        self.claimed_cells = set(claimed_cells or ())
        self._cells = []        # [(owner, attr, instance_label, obj)]
        self._last = []         # fingerprint per cell
        self._bucket = {}       # cell idx -> (timestamp, [event labels])
        self.conflicts = []     # [{"cell", "instance", "t", "writers"}]
        self.writes_seen = 0
        self._installed = False

    # -- registration ---------------------------------------------------

    def watch(self, owner, instance, attrs, label=None):
        """Track ``instance.attr`` for each attr, owned by ``owner``.

        ``owner`` is the *class name* the static analysis uses for the
        cell (``"Invoker"``), so runtime conflicts and static edges key
        identically.  ``label`` distinguishes instances (defaults to
        the watch order).
        """
        if self._installed:
            raise RuntimeError("watch() before install()")
        for attr in attrs:
            if not hasattr(instance, attr):
                continue
            name = label if label is not None else str(len(self._cells))
            self._cells.append((owner, attr, name, instance))
        return self

    # -- instrumentation ------------------------------------------------

    def install(self):
        """Wrap ``env.step``; call before ``env.run()``."""
        self._last = [
            _fingerprint(getattr(obj, attr, None))
            for _owner, attr, _label, obj in self._cells]
        auditor = self

        def wrap(step):
            def audited_step():
                pending = auditor.env.peek_entry()
                result = step()
                if pending is not None:
                    when, _prio, eid, event = pending
                    auditor._note(when, eid, event)
                return result
            return audited_step

        self.env.instrument_step(wrap)
        self._installed = True
        return self

    def uninstall(self):
        """Remove the ``step`` wrapper; recorded conflicts are kept."""
        self.env.uninstrument_step()
        self._installed = False

    def _note(self, when, eid, event):
        cells, last = self._cells, self._last
        for index, (owner, attr, label, obj) in enumerate(cells):
            token = _fingerprint(getattr(obj, attr, None))
            if token == last[index]:
                continue
            last[index] = token
            self.writes_seen += 1
            writer = "%s#%d" % (type(event).__name__, eid)
            bucket = self._bucket.get(index)
            if bucket is not None and bucket[0] == when:
                bucket[1].append(writer)
                if len(bucket[1]) == 2:  # first conflict on this tick
                    self.conflicts.append({
                        "cell": "%s.%s" % (owner, attr),
                        "instance": label,
                        "t": when,
                        "writers": bucket[1],
                    })
            else:
                self._bucket[index] = (when, [writer])

    # -- verdicts -------------------------------------------------------

    def unclaimed_conflicts(self):
        """Conflicts on cells the static shard-boundary report missed."""
        return [c for c in self.conflicts
                if c["cell"] not in self.claimed_cells]


def watch_fn_cluster(auditor, fn):
    """Register the boundary-adjacent cells of an :class:`FnCluster` rig.

    Owner names and attrs mirror the static analysis's cells exactly
    (class name + attribute), so conflicts and edges key identically.
    The set is *boundary-adjacent* by design: cluster-global state
    (FnCluster, LineageRegistry) plus the machine-owned state that
    handlers cross into (Invoker health/admission, DescriptorService
    directory).  Machine-owned cells with only self accesses (pager
    counters, daemon serve logs) are deliberately not watched: their
    same-tick multi-event writes are intra-shard under a machine-sharded
    loop, and the auditor has no event-to-shard attribution with which
    to tell those apart from real boundary crossings.  Everything is
    duck-typed and optional-layer tolerant: absent attributes are
    skipped.
    """
    auditor.watch("FnCluster", fn,
                  ("records", "latencies", "counters", "_next_rr",
                   "contexts", "recovery", "_invocation_seq"),
                  label="lb")
    for invoker in getattr(fn, "invokers", ()):
        label = "invoker%d" % getattr(invoker, "index", 0)
        auditor.watch("Invoker", invoker,
                      ("outstanding", "admitting", "suspicion",
                       "health_ewma", "live_containers", "idle_cache",
                       "stemcells"),
                      label=label)
    deployment = getattr(fn, "deployment", None)
    for node in (deployment.nodes() if deployment is not None else ()):
        machine = getattr(node, "machine", None)
        label = "m%s" % getattr(machine, "machine_id", "?")
        service = getattr(node, "service", None)
        if service is not None:
            auditor.watch("DescriptorService", service,
                          ("_table", "_leases", "counters"), label=label)
    lineage = getattr(fn, "lineage", None)
    registry = getattr(lineage, "registry", None)
    if registry is not None:
        auditor.watch("LineageRegistry", registry,
                      ("wal", "_generations", "_placements", "_replicas",
                       "_leases", "_fences", "_hosts"),
                      label="registry")
    net = getattr(getattr(fn, "fabric", None), "net", None)
    if net is not None:
        # Shared-fabric cells are cluster-owned by design: every sender
        # in an incast mutates the same link's virtual clock, so these
        # are exactly the cells whose same-tick ordering the _eid
        # tie-break decides.
        for link in net.topology.links():
            auditor.watch("FabricLink", link,
                          ("busy_until", "bytes_enqueued",
                           "bytes_delivered", "bytes_dropped",
                           "ecn_marks"),
                          label=link.name)
        auditor.watch("FabricNetwork", net, ("counters",), label="net")
    return auditor


def audit_races(auditor):
    """Violations: runtime conflicts the static pass did not claim.

    Returns a list of human-readable strings (empty == the static
    shard-boundary edge set covers every observed same-timestamp
    write/write conflict).  Claimed-cell conflicts are *expected* —
    they are exactly what the tie-order-hazard rule reported.
    """
    violations = []
    for conflict in auditor.unclaimed_conflicts():
        violations.append(
            "unclaimed race: %s (instance %s) written by %s at t=%.3f — "
            "statically invisible shard-boundary edge"
            % (conflict["cell"], conflict["instance"],
               " and ".join(conflict["writers"][:4]), conflict["t"]))
    return violations
