"""Connection-plane audit: the runtime face of ``qp-create-outside-connplane``.

The static rule keeps RC QP / DC target construction inside the RDMA
layer and the connection plane; this auditor checks, at a quiescent
point, that the plane's *bookkeeping* held up while it ran:

* **Capacity** — every pool's warm (evictable) footprint is within its
  byte budget; eviction may never have been deferred past it.
* **Pinning** — nothing on an LRU is in use (refs > 0), and nothing in
  use sits on an LRU: an evicted-while-leased QP would yank a
  connection out from under a running fork.
* **Liveness** — every pooled QP is still usable; a dead QP parked warm
  would hand a future fork a connection that errors on first verb.
* **Lease conservation** — ``issued - released`` equals the sum of live
  refcounts, per pool: anything else is a leaked (or double-released)
  lease, the connection-plane face of acquire/release imbalance.
* **Index coherence** — advert caches index every entry under both its
  function name and its fork meta, with no strays in either map.

Memory-charge conservation for pooled QPs and cached adverts is folded
into :func:`~repro.sanitizers.audit_memory_conservation` (pass the
plane via ``connplane=``), so a pool leak shows up in the same sweep
that catches frame and descriptor leaks.
"""


def audit_connplane(plane):
    """Verify a :class:`~repro.connplane.ConnPlane` at quiescence.

    Returns a list of human-readable violation strings (empty = clean).
    """
    violations = []
    if plane is None:
        return violations
    for mid, pool in plane.pools.items():
        if pool.warm_bytes > pool.capacity_bytes:
            violations.append(
                "m%d: pool holds %d warm byte(s) over its %d-byte budget — "
                "eviction fell behind" % (mid, pool.warm_bytes,
                                          pool.capacity_bytes))
        lru = set(pool._lru)
        for entry in pool.entries():
            if not entry.pooled:
                violations.append(
                    "m%d: discarded entry toward m%d still reachable in "
                    "the pool" % (mid, entry.peer_id))
            if not entry.qp.usable:
                violations.append(
                    "m%d: unusable QP toward m%d still pooled (state=%s)"
                    % (mid, entry.peer_id, entry.qp.state))
            if entry.refs < 0:
                violations.append(
                    "m%d: entry toward m%d has negative refcount %d"
                    % (mid, entry.peer_id, entry.refs))
            elif entry.refs == 0 and entry not in lru:
                violations.append(
                    "m%d: idle QP toward m%d is off the LRU — it can "
                    "never be evicted" % (mid, entry.peer_id))
            elif entry.refs > 0 and entry in lru:
                violations.append(
                    "m%d: in-use QP toward m%d (refs=%d) sits on the LRU "
                    "— eviction could close a leased connection"
                    % (mid, entry.peer_id, entry.refs))
        outstanding = pool.leases_issued - pool.leases_released
        if outstanding != pool.live_refs():
            violations.append(
                "m%d: %d lease(s) outstanding (%d issued - %d released) "
                "but live refcounts sum to %d — a lease %s"
                % (mid, outstanding, pool.leases_issued,
                   pool.leases_released, pool.live_refs(),
                   "leaked" if outstanding > pool.live_refs()
                   else "was double-released"))
        for peer_id, queue in pool._demand.items():
            pending = [g for g in queue if not g.triggered]
            if pending:
                violations.append(
                    "m%d: %d miss grant(s) toward m%d still queued at "
                    "quiescence — their forks wedged"
                    % (mid, len(pending), peer_id))
    for mid, cache in plane.caches.items():
        by_meta = {id(e) for e in cache._by_meta.values()}
        by_name = {id(e) for e in cache._by_name.values()}
        if by_meta != by_name:
            violations.append(
                "m%d: advert cache indexes diverge (%d by-name vs %d "
                "by-meta entries)" % (mid, len(cache._by_name),
                                      len(cache._by_meta)))
        for entry in cache.entries():
            if cache._by_meta.get(entry.meta) is not entry:
                violations.append(
                    "m%d: advert for %r not reachable through its fork "
                    "meta — fork-path lookups would miss it"
                    % (mid, entry.name))
    return violations
