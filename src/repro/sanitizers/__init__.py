"""Runtime sanitizers: dynamic cross-checks of reprolint's static invariants.

Each static rule in ``tools/reprolint`` has a runtime counterpart here, so
a bug that slips past the AST (e.g. a refcount corrupted through an alias
the lint heuristic cannot see) is still caught when a test or experiment
runs with sanitizers on:

=============================  ==========================================
static rule                    runtime sanitizer
=============================  ==========================================
no-raw-pte-mutation            :func:`audit_frame_refcounts`
acquire-release-balance        :func:`audit_memory_conservation`
event-handler-hygiene          :func:`audit_loop_drained`
rpc-deadline                   :func:`audit_resilience`
unclosed-span                  :func:`audit_traces`
stale-generation-compare       :func:`audit_lineage`
cross-shard-mutation           :func:`audit_races`
tie-order-hazard               :func:`audit_races`
raw-link-capacity              :func:`audit_fabric`
scheduler-abstraction-leak     :func:`audit_shard`
qp-create-outside-connplane    :func:`audit_connplane`
=============================  ==========================================

All auditors return a list of human-readable violation strings (empty when
clean); the ``check_*`` wrappers raise :class:`SanitizerViolation` instead.
Tests opt in per-run; setting ``REPRO_SANITIZERS=1`` (see :func:`enabled`)
makes the sanitizer-aware tests audit every seeded experiment they run
instead of just the cheap default subset.
"""

import os

__all__ = [
    "SanitizerViolation", "enabled",
    "audit_frame_refcounts", "audit_memory_conservation",
    "audit_loop_drained", "audit_resilience", "audit_traces",
    "audit_lineage", "audit_rig", "audit_races", "audit_fabric",
    "audit_shard", "audit_connplane",
    "check_frame_refcounts", "check_memory_conservation",
    "check_loop_drained", "check_resilience", "check_traces",
    "check_lineage", "check_rig", "check_races", "check_fabric",
    "check_shard", "check_connplane",
    "RaceAuditor", "watch_fn_cluster",
]


class SanitizerViolation(AssertionError):
    """A simulation invariant was observed broken at runtime."""

    def __init__(self, violations):
        self.violations = list(violations)
        super().__init__(
            "%d invariant violation(s):\n%s"
            % (len(self.violations), "\n".join("  - %s" % v
                                               for v in self.violations)))


def enabled():
    """True when the ``REPRO_SANITIZERS`` flag asks for the strict sweep."""
    return os.environ.get("REPRO_SANITIZERS", "") not in ("", "0")


# --- Frame refcount audit (cross-validates no-raw-pte-mutation) ----------------

def audit_frame_refcounts(kernels):
    """Verify frame bookkeeping against the page tables on each machine.

    At a quiescent point (no process mid-fault), for every machine:

    * no present PTE maps a freed frame,
    * no non-present PTE still holds a frame reference,
    * each live frame's refcount equals its number of PTE mappings, and
    * the allocator's live-frame count equals the mapped-frame count
      (anything else is a leaked — alloc'd but unmapped — frame).
    """
    violations = []
    for kernel in kernels:
        machine_id = kernel.machine.machine_id
        mapped = {}
        frames = {}
        for task in kernel.tasks.values():
            for vpn, pte in task.address_space.page_table.entries():
                if pte.present and pte.frame is not None:
                    frames[id(pte.frame)] = pte.frame
                    mapped[id(pte.frame)] = mapped.get(id(pte.frame), 0) + 1
                    if not pte.frame.live:
                        violations.append(
                            "m%d: task %d (%s) vpn %d maps freed frame %r"
                            % (machine_id, task.pid, task.name, vpn,
                               pte.frame))
                elif pte.frame is not None:
                    violations.append(
                        "m%d: task %d (%s) vpn %d holds frame %r on a "
                        "non-present PTE" % (machine_id, task.pid,
                                             task.name, vpn, pte.frame))
        for fid, frame in frames.items():
            if frame.live and frame.refcount != mapped[fid]:
                violations.append(
                    "m%d: frame pfn=%d refcount=%d but %d PTE mapping(s)"
                    % (machine_id, frame.pfn, frame.refcount, mapped[fid]))
        live_mapped = sum(1 for f in frames.values() if f.live)
        if kernel.frames.allocated != live_mapped:
            violations.append(
                "m%d: allocator reports %d live frame(s) but %d are mapped "
                "— %s" % (machine_id, kernel.frames.allocated, live_mapped,
                          "frame leak" if kernel.frames.allocated > live_mapped
                          else "double free"))
    return violations


# --- Memory-charge conservation (cross-validates acquire-release-balance) ------

def audit_memory_conservation(machines, kernels=(), descriptor_services=(),
                              tmpfs_stores=(), dfs=None, connplane=None):
    """Verify every machine's DRAM account against its known charge holders.

    The holders are the only subsystems that charge ``machine.memory``:
    page frames, published descriptors, tmpfs checkpoint images, DFS
    objects, and (with the connection plane armed) pooled warm QPs and
    cached advertisements.  Any difference means a charge was taken
    without a balancing release on some exit path (the dynamic face of
    acquire-release imbalance).
    """
    expected = {}

    def add(machine, nbytes, label):
        expected.setdefault(machine.machine_id, []).append((nbytes, label))

    for kernel in kernels:
        add(kernel.machine, kernel.frames.bytes_allocated, "frames")
    for service in descriptor_services:
        nbytes = sum(descriptor.nbytes
                     for descriptor, _shadow in service._table.values())
        add(service.machine, nbytes, "descriptors")
    for store in tmpfs_stores:
        add(store.machine, store.stored_bytes, "tmpfs images")
    if dfs is not None:
        for osd in dfs.osds:
            add(osd.machine, osd.stored_bytes, "dfs objects")
    if connplane is not None:
        for pool in connplane.pools.values():
            add(pool.machine, pool.pooled_bytes, "pooled qps")
        for cache in connplane.caches.values():
            add(cache.machine, cache.cached_bytes, "adverts")

    violations = []
    for machine in machines:
        account = machine.memory
        if not 0 <= account.used <= account.capacity:
            violations.append(
                "m%d: memory account out of range (used=%d capacity=%d)"
                % (machine.machine_id, account.used, account.capacity))
        if account.peak < account.used:
            violations.append(
                "m%d: high-water mark %d below current usage %d"
                % (machine.machine_id, account.peak, account.used))
        holders = expected.get(machine.machine_id)
        if holders is None:
            continue
        total = sum(nbytes for nbytes, _ in holders)
        if total != account.used:
            detail = ", ".join("%s=%d" % (label, nbytes)
                               for nbytes, label in holders)
            violations.append(
                "m%d: %d byte(s) charged but holders account for %d (%s) — "
                "an exit path %s its charge"
                % (machine.machine_id, account.used, total, detail,
                   "leaked" if account.used > total else "double-freed"))
    return violations


# --- Event-loop drain (cross-validates event-handler-hygiene) ------------------

def audit_loop_drained(env):
    """Drain the event loop and verify it empties without surfacing errors.

    Call after an experiment's arrivals are done and its daemons are
    stopped: a queue that never dries (a runaway self-rescheduling
    callback) or an unhandled failure nobody waited on shows up here.
    """
    violations = []
    try:
        # The auditor *is* a loop driver, like an experiment harness: it is
        # only ever called from test/experiment code at a quiescent point.
        env.run()  # reprolint: disable=event-handler-hygiene
    except BaseException as exc:  # surface, don't mask, the drain failure
        violations.append("loop drain raised %s: %s"
                          % (type(exc).__name__, exc))
    if env.peek() != float("inf"):
        violations.append(
            "event queue not drained: next event still scheduled at %r"
            % (env.peek(),))
    return violations


# --- Resilience accounting (cross-validates rpc-deadline) ----------------------

def audit_resilience(breakers=(), contexts=(), now=None):
    """Verify the gray-failure layer's accounting at quiescence.

    * Every circuit breaker that ever opened must be observable as closed
      or half-open at ``now`` — a breaker stuck open past its cooldown
      means its clock math (or a missed probe outcome) wedged the path
      shut forever.
    * Every transition log must alternate legally (closed->open,
      open->half-open, half-open->open/closed).
    * Every retry budget must conserve: ``spent`` equals the sum of its
      append-only ledger and never exceeds ``granted`` — anything else is
      a retry that was taken without being paid for.
    """
    violations = []
    for breaker in breakers:
        if now is not None and breaker.state_at(now) == "open":
            violations.append(
                "breaker %s still open at quiescence (t=%g) — cooldown "
                "never elapsed or a probe outcome was dropped"
                % (breaker.name, now))
        legal = {"closed": ("open",),
                 "open": ("half-open",),
                 "half-open": ("open", "closed")}
        for _at, from_state, to_state in breaker.transitions:
            if to_state not in legal.get(from_state, ()):
                violations.append(
                    "breaker %s made an illegal transition %s -> %s"
                    % (breaker.name, from_state, to_state))
    for ctx in contexts:
        budget = getattr(ctx, "retry_budget", None)
        if budget is None:
            continue
        ledger_total = sum(amount for _label, amount in budget.ledger)
        if budget.spent != ledger_total:
            violations.append(
                "retry budget %r: spent=%d but ledger sums to %d — a "
                "retry was taken off the books"
                % (budget, budget.spent, ledger_total))
        if budget.spent > budget.granted:
            violations.append(
                "retry budget %r: spent %d of %d granted — overdraft"
                % (budget, budget.spent, budget.granted))
    return violations


# --- Trace well-formedness (cross-validates unclosed-span) ---------------------

def audit_traces(tracer):
    """Verify a :class:`~repro.trace.Tracer`'s spans at quiescence.

    * every span started was ended by simulation end (the dynamic face of
      the ``unclosed-span`` lint: a leak through an alias or a swallowed
      interrupt still shows up here),
    * every span's end is at or after its start,
    * every (closed) child's interval nests within its parent's,
    * every span is reachable from a root (no orphaned subtree), and
    * roots carrying an ``invocation`` attribute are unique per value —
      one invocation must yield exactly one connected tree.

    Known limitation: a defused RPC straggler can outlive its caller's
    span, but only under fault injection — traced rigs here are
    fail-free, so containment is checked unconditionally.
    """
    violations = []
    if tracer is None:
        return violations
    for span in tracer.open_spans():
        violations.append(
            "span %r started at %g was never ended" % (span.name, span.start))
    seen_invocations = {}
    reachable = set()
    stack = list(tracer.roots)
    while stack:
        span = stack.pop()
        reachable.add(id(span))
        stack.extend(span.children)
    for span in tracer.spans:
        if id(span) not in reachable:
            violations.append(
                "span %r at %g is unreachable from any root"
                % (span.name, span.start))
        if span.ended and span.end_time < span.start:
            violations.append(
                "span %r ends at %g before its start %g"
                % (span.name, span.end_time, span.start))
        parent = span.parent
        if parent is not None and span.ended and parent.ended:
            if span.start < parent.start or span.end_time > parent.end_time:
                violations.append(
                    "span %r [%g, %g] escapes its parent %r [%g, %g]"
                    % (span.name, span.start, span.end_time,
                       parent.name, parent.start, parent.end_time))
    for root in tracer.roots:
        invocation = root.attrs.get("invocation")
        if invocation is None:
            continue
        if invocation in seen_invocations:
            violations.append(
                "invocation %r has more than one root span (%r and %r)"
                % (invocation, seen_invocations[invocation].name, root.name))
        else:
            seen_invocations[invocation] = root
    return violations


def audit_lineage(lineage, services=()):
    """Verify a :class:`~repro.lineage.runtime.LineageRuntime` at quiescence.

    Four families of checks:

    * **WAL prefix invariants** — replaying the journal record by record,
      the generation of every lineage is non-decreasing (strictly rising
      on placements and elections), active leases never span more than
      one distinct generation, every replica's copy epoch stays at or
      below the primary epoch, and fence floors never move backwards.
    * **Replay equivalence** — :meth:`LineageRegistry.from_wal` over the
      live journal must reproduce the live registry's snapshot exactly
      (the crash-recovery contract).
    * **Settled replicas** — at quiescence a replica that published its
      descriptor must have fully caught up (copy epoch == primary epoch).
    * **Serve-after-fence** — joining each daemon's ``serve_log`` against
      its ``fence_log`` by timestamp: once a fence at floor G has been
      applied locally, that daemon must never again serve the lineage at
      a generation below G.  (Serves *before* the fence arrives are
      legal — fencing is knowledge-based, not clairvoyant.)
    """
    violations = []
    if lineage is None:
        return violations
    from ..lineage.registry import LineageRegistry

    registry = lineage.registry
    scratch = LineageRegistry()
    generations = {}
    for record in registry.wal:
        scratch._apply(record)
        name = record.payload.get("name")
        op = record.op
        if op in ("place_primary", "elect"):
            new = record.payload["generation"]
            if new <= generations.get(name, 0):
                violations.append(
                    "WAL seq %d: %s of %r does not raise the generation "
                    "(%d after %d)" % (record.seq, op, name, new,
                                       generations.get(name, 0)))
            generations[name] = new
        elif op == "retire":
            generations.pop(name, None)
        current = scratch.generation(name)
        if current < generations.get(name, 0):
            violations.append(
                "WAL seq %d: generation of %r moved backwards to %d"
                % (record.seq, name, current))
        holders = scratch.holder_generations(name)
        if len(holders) > 1:
            violations.append(
                "WAL seq %d: leases of %r span generations %s — "
                "split-brain window" % (record.seq, name, sorted(holders)))
        for invoker, replica in scratch.replicas(name).items():
            if replica["copy_epoch"] > scratch.primary_epoch(name):
                violations.append(
                    "WAL seq %d: replica of %r on invoker %d has copy "
                    "epoch %d above the primary epoch %d"
                    % (record.seq, name, invoker, replica["copy_epoch"],
                       scratch.primary_epoch(name)))
    fences = {}
    for record in registry.wal:
        if record.op != "fence":
            continue
        name = record.payload["name"]
        floor = record.payload["generation"]
        if floor < fences.get(name, 0):
            violations.append(
                "WAL seq %d: fence floor of %r lowered to %d from %d"
                % (record.seq, name, floor, fences[name]))
        fences[name] = floor

    replayed = LineageRegistry.from_wal(registry.wal).snapshot()
    live = registry.snapshot()
    if replayed["generations"] != live["generations"]:  # reprolint: baselined
        violations.append(
            "WAL replay diverges from the live registry on generations: "
            "%r vs %r" % (replayed["generations"], live["generations"]))
    elif replayed != live:
        diverging = sorted(k for k in live if replayed[k] != live[k])
        violations.append(
            "WAL replay diverges from the live registry on %s"
            % ", ".join(diverging))

    for name in registry.names():
        for invoker, replica in registry.replicas(name).items():
            if replica["handler_id"] is None:
                continue
            if replica["copy_epoch"] < registry.primary_epoch(name):
                violations.append(
                    "published replica of %r on invoker %d is short of the "
                    "primary epoch (%d < %d) at quiescence"
                    % (name, invoker, replica["copy_epoch"],
                       registry.primary_epoch(name)))

    for service in services:
        serve_log = getattr(service, "serve_log", None)
        fence_log = getattr(service, "fence_log", None)
        if not serve_log:
            continue
        fence_log = list(fence_log or ())
        floors = {}
        cursor = 0
        for at, name, generation, kind in serve_log:
            while cursor < len(fence_log) and fence_log[cursor][0] <= at:
                _fat, fname, floor = fence_log[cursor]
                if floor > floors.get(fname, 0):
                    floors[fname] = floor
                cursor += 1
            if generation is not None and generation < floors.get(name, 0):
                machine = getattr(getattr(service, "machine", None),
                                  "machine_id", "?")
                violations.append(
                    "daemon on machine %s served a %s of %r at t=%g at "
                    "generation %d below its applied fence floor %d"
                    % (machine, kind, name, at, generation, floors[name]))
    return violations


# --- Whole-rig sweep -----------------------------------------------------------

def audit_rig(rig, drain=True):
    """Run every auditor against an experiment rig.

    Duck-types both :class:`~repro.experiments.rigs.PrimitiveRig` and
    :class:`~repro.fn.framework.FnCluster`: anything with ``env``,
    ``cluster``, ``kernels`` and optionally ``deployment``/``dfs``.
    """
    violations = []
    if drain:
        violations.extend(audit_loop_drained(rig.env))
    machines = list(rig.cluster)
    kernels = list(getattr(rig, "kernels", ()))
    deployment = getattr(rig, "deployment", None)
    services = ([node.service for node in deployment.nodes()]
                if deployment is not None else [])
    tmpfs_stores = list(getattr(rig, "tmpfs_stores", ()))
    for invoker in getattr(rig, "invokers", ()):
        store = getattr(invoker, "tmpfs", None)
        if store is not None:
            tmpfs_stores.append(store)
    connplane = getattr(rig, "connplane", None)
    violations.extend(audit_frame_refcounts(kernels))
    violations.extend(audit_memory_conservation(
        machines, kernels=kernels, descriptor_services=services,
        tmpfs_stores=tmpfs_stores, dfs=getattr(rig, "dfs", None),
        connplane=connplane))
    breakers = []
    if deployment is not None:
        for node in deployment.nodes():
            resilience = getattr(node.pager, "resilience", None)
            if resilience is not None and resilience.breakers is not None:
                breakers.extend(resilience.breakers.values())
    violations.extend(audit_resilience(
        breakers=breakers, contexts=getattr(rig, "contexts", ()),
        now=rig.env.now))
    tracer = getattr(rig.env, "tracer", None)
    if tracer is not None:
        violations.extend(audit_traces(tracer))
    lineage = getattr(rig, "lineage", None)
    if lineage is not None:
        violations.extend(audit_lineage(lineage, services=services))
    net = getattr(getattr(rig, "fabric", None), "net", None)
    if net is not None:
        violations.extend(audit_fabric(net))
    if connplane is not None:
        violations.extend(audit_connplane(connplane))
    return violations


def _check(violations):
    if violations:
        raise SanitizerViolation(violations)


def check_frame_refcounts(kernels):
    """Raise :class:`SanitizerViolation` on any refcount audit failure."""
    _check(audit_frame_refcounts(kernels))


def check_memory_conservation(*args, **kwargs):
    """Raise :class:`SanitizerViolation` on any conservation failure."""
    _check(audit_memory_conservation(*args, **kwargs))


def check_loop_drained(env):
    """Raise :class:`SanitizerViolation` if the loop does not drain clean."""
    _check(audit_loop_drained(env))


def check_resilience(*args, **kwargs):
    """Raise :class:`SanitizerViolation` on any resilience audit failure."""
    _check(audit_resilience(*args, **kwargs))


def check_traces(tracer):
    """Raise :class:`SanitizerViolation` on any trace audit failure."""
    _check(audit_traces(tracer))


def check_lineage(lineage, services=()):
    """Raise :class:`SanitizerViolation` on any lineage audit failure."""
    _check(audit_lineage(lineage, services=services))


def check_rig(rig, drain=True):
    """Raise :class:`SanitizerViolation` on any audit failure in ``rig``."""
    _check(audit_rig(rig, drain=drain))


def check_races(auditor):
    """Raise :class:`SanitizerViolation` on any unclaimed runtime race."""
    _check(audit_races(auditor))


def check_fabric(net):
    """Raise :class:`SanitizerViolation` on any fabric conservation failure."""
    _check(audit_fabric(net))


def check_shard(run):
    """Raise :class:`SanitizerViolation` on any shard contract failure."""
    _check(audit_shard(run))


def check_connplane(plane):
    """Raise :class:`SanitizerViolation` on any connection-plane failure."""
    _check(audit_connplane(plane))


from .connplane import audit_connplane  # noqa: E402
from .fabric import audit_fabric  # noqa: E402
from .races import RaceAuditor, audit_races, watch_fn_cluster  # noqa: E402
from .shard import audit_shard  # noqa: E402
