"""Kernel-level error types."""


class KernelError(Exception):
    """Base class for simulated-kernel failures."""


class SegmentationFault(KernelError):
    """Access outside any VMA, or write to a read-only mapping."""

    def __init__(self, task, addr, message=""):
        super().__init__("segfault pid=%s addr=%#x %s" % (
            getattr(task, "pid", "?"), addr, message))
        self.task = task
        self.addr = addr


class BadDescriptorError(KernelError):
    """A container descriptor failed validation (bad id or key)."""


class OomKilled(KernelError):
    """A task exceeded its cgroup memory limit and was killed."""

    def __init__(self, task, limit):
        super().__init__("pid=%s exceeded cgroup memory limit %d bytes"
                         % (getattr(task, "pid", "?"), limit))
        self.task = task
        self.limit = limit
