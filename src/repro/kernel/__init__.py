"""Simulated kernel substrate: frames, page tables, VMAs, faults, fork.

This is the OS layer MITOSIS extends.  It exposes the two extension points
the paper adds to Linux: a pluggable *remote pager* consulted for
remote-bit PTEs, and *reclaim hooks* that fire before page reclaim so the
access-control layer can revoke RDMA permissions first.
"""

from .cgroups import Cgroup, CgroupPool, NamespaceSet
from .errors import BadDescriptorError, KernelError, OomKilled, SegmentationFault
from .frames import Frame, FrameAllocator
from .kernel import (
    FORK_LOCAL_BASE,
    SWAP_IN_LATENCY,
    SWAP_OUT_LATENCY,
    Kernel,
    SwapStore,
)
from .mm_daemons import KsmDaemon, PageMigrator, ThpDaemon
from .page_table import PageTable, Pte
from .process import FileDescriptor, Registers, Task
from .vma import AddressSpace, Vma, VmaKind

__all__ = [
    "AddressSpace",
    "BadDescriptorError",
    "Cgroup",
    "CgroupPool",
    "FORK_LOCAL_BASE",
    "FileDescriptor",
    "Frame",
    "FrameAllocator",
    "Kernel",
    "KernelError",
    "KsmDaemon",
    "NamespaceSet",
    "OomKilled",
    "PageMigrator",
    "PageTable",
    "Pte",
    "Registers",
    "SWAP_IN_LATENCY",
    "SWAP_OUT_LATENCY",
    "SegmentationFault",
    "SwapStore",
    "ThpDaemon",
    "Task",
    "Vma",
    "VmaKind",
]
