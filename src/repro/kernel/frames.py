"""Physical frames and the per-machine frame allocator.

Frames carry an opaque ``content`` token so tests can verify that a child
forked across machines observes exactly the bytes its parent had (identity,
not simulated payloads).  Refcounts implement copy-on-write sharing.
"""

from itertools import count

from .. import params
from .errors import KernelError


class Frame:  # reprolint: owner=machine
    """One 4 KB physical page frame."""

    __slots__ = ("pfn", "machine_id", "refcount", "content", "live")

    def __init__(self, pfn, machine_id, content=None):
        self.pfn = pfn
        self.machine_id = machine_id
        self.refcount = 1
        self.content = content
        self.live = True

    def __repr__(self):
        return "<Frame pfn=%d m%d rc=%d %s>" % (
            self.pfn, self.machine_id, self.refcount,
            "live" if self.live else "freed")


class FrameAllocator:  # reprolint: owner=machine
    """Allocates frames against the machine's DRAM account."""

    def __init__(self, env, machine):
        self.env = env
        self.machine = machine
        self._pfns = count(1)
        self.allocated = 0

    def alloc(self, content=None):
        """Allocate one frame (no simulated latency; callers charge it)."""
        self.machine.memory.alloc(params.PAGE_SIZE)
        self.allocated += 1
        return Frame(next(self._pfns), self.machine.machine_id, content)

    def ref(self, frame):
        """Add a sharer (COW or page-cache sharing)."""
        if not frame.live:
            raise KernelError("ref() on freed frame %r" % (frame,))
        frame.refcount += 1
        return frame

    def unref(self, frame):
        """Drop a sharer; frees the frame at refcount zero."""
        if not frame.live:
            raise KernelError("unref() on freed frame %r" % (frame,))
        if frame.refcount <= 0:
            raise KernelError("refcount underflow on %r" % (frame,))
        frame.refcount -= 1
        if frame.refcount == 0:
            frame.live = False
            self.machine.memory.free(params.PAGE_SIZE)
            self.allocated -= 1

    @property
    def bytes_allocated(self):
        """Bytes held by live frames."""
        return self.allocated * params.PAGE_SIZE
