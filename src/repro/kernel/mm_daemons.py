"""Memory-management daemons that change virtual->physical mappings.

The paper's §4.3 lists the kernel mechanisms that can move or reclaim a
physical page under a remote child's feet: swap (implemented in
:mod:`repro.kernel.kernel`), kernel samepage merging, transparent huge
pages, and page migration.  KSM and migration are implemented here; both
fire the machine's reclaim hooks *before* touching a frame, so MITOSIS's
passive access control revokes remote access first — exactly the ordering
the passive model requires.
"""

from .. import params
from .errors import KernelError

#: CPU cost to checksum-compare one candidate page in a KSM pass.
KSM_COMPARE_LATENCY = 0.1 * params.US
#: Cost to rewrite mappings and free the duplicate for one merged page.
KSM_MERGE_LATENCY = 1.0 * params.US
#: Cost to copy + remap one migrated page.
MIGRATE_PAGE_LATENCY = 1.5 * params.US


class KsmDaemon:  # reprolint: owner=machine
    """Kernel samepage merging: dedupe identical frames across tasks.

    Duplicate frames are merged onto one canonical frame, with every
    mapping downgraded to copy-on-write — the standard KSM contract.
    """

    def __init__(self, kernel):
        self.kernel = kernel
        self.env = kernel.env
        self.pages_merged = 0
        self.bytes_saved = 0

    def scan(self, tasks=None):
        """One merge pass over ``tasks`` (default: all tasks).  Generator
        returning the number of pages merged."""
        kernel = self.kernel
        tasks = list(tasks) if tasks is not None else list(
            kernel.tasks.values())
        by_content = {}
        candidates = 0
        for task in tasks:
            for vpn, pte in task.address_space.page_table.entries():
                if pte.present and pte.frame.live:
                    candidates += 1
                    by_content.setdefault(pte.frame.content, []).append(
                        (task, vpn, pte))
        yield self.env.timeout(candidates * KSM_COMPARE_LATENCY)

        merged = 0
        for content, mappings in by_content.items():
            frames = {id(pte.frame): pte.frame for _, _, pte in mappings}
            if len(frames) < 2:
                continue
            canonical = mappings[0][2].frame
            for task, vpn, pte in mappings:
                if pte.frame is canonical:
                    pte.share_cow()
                    continue
                vma = task.address_space.find_vma(vpn)
                for hook in kernel.reclaim_hooks:
                    hook(task, vma, vpn, pte)
                yield self.env.timeout(KSM_MERGE_LATENCY)
                old = pte.migrate_to(kernel.frames.ref(canonical))
                pte.share_cow()
                kernel.frames.unref(old)
                if not old.live:
                    self.bytes_saved += params.PAGE_SIZE
                merged += 1
        self.pages_merged += merged
        kernel.counters.incr("ksm_pages_merged", merged)
        return merged


#: Pages per transparent huge page (2 MB / 4 KB).
THP_SPAN = 512
#: Cost to collapse one huge-page-aligned run (copy + remap).
THP_COLLAPSE_LATENCY = 60.0 * params.US


class ThpDaemon:  # reprolint: owner=machine
    """Transparent huge pages: collapse aligned runs into huge mappings.

    Collapsing physically *moves* the 4 KB frames into one contiguous
    huge frame, so — like swap, KSM, and migration — it must revoke any
    remote child's access to the old frames first (§4.3's list of
    mapping-changing mechanisms).
    """

    def __init__(self, kernel, span=THP_SPAN):
        if span < 2:
            raise KernelError("huge-page span must cover several pages")
        self.kernel = kernel
        self.env = kernel.env
        self.span = span
        self.runs_collapsed = 0

    def _collapsible_runs(self, task, vma):
        """Aligned fully-present, private runs inside ``vma``."""
        table = task.address_space.page_table
        runs = []
        start = vma.start_vpn - (vma.start_vpn % self.span)
        if start < vma.start_vpn:
            start += self.span
        while start + self.span <= vma.end_vpn:
            ptes = [table.entry(vpn)
                    for vpn in range(start, start + self.span)]
            if all(p is not None and p.present and not p.huge
                   and p.frame.refcount == 1 for p in ptes):
                runs.append((start, ptes))
            start += self.span
        return runs

    def collapse(self, task, vma):
        """One khugepaged pass over ``vma``.  Generator returning the
        number of huge mappings created."""
        kernel = self.kernel
        collapsed = 0
        for start, ptes in self._collapsible_runs(task, vma):
            for offset, pte in enumerate(ptes):
                for hook in kernel.reclaim_hooks:
                    hook(task, vma, start + offset, pte)
            yield self.env.timeout(THP_COLLAPSE_LATENCY)
            for pte in ptes:
                old = pte.migrate_to(
                    kernel.frames.alloc(content=pte.frame.content), huge=True)
                kernel.frames.unref(old)
            collapsed += 1
        self.runs_collapsed += collapsed
        kernel.counters.incr("thp_runs_collapsed", collapsed)
        return collapsed


class PageMigrator:  # reprolint: owner=machine
    """Page migration: move a frame to a new physical location.

    Models NUMA balancing / compaction: content is preserved but the
    physical address changes, so any remote mapping of the old frame must
    be revoked first.
    """

    def __init__(self, kernel):
        self.kernel = kernel
        self.env = kernel.env
        self.pages_migrated = 0

    def migrate(self, task, vpns):
        """Migrate the given present pages.  Generator returning the count."""
        kernel = self.kernel
        moved = 0
        for vpn in vpns:
            pte = task.address_space.page_table.entry(vpn)
            if pte is None or not pte.present:
                continue
            if pte.frame.refcount > 1:
                # Shared (COW) frames are pinned from migration's point of
                # view here; real kernels walk the rmap — out of scope.
                continue
            vma = task.address_space.find_vma(vpn)
            for hook in kernel.reclaim_hooks:
                hook(task, vma, vpn, pte)
            yield self.env.timeout(MIGRATE_PAGE_LATENCY)
            old = pte.migrate_to(
                kernel.frames.alloc(content=pte.frame.content))
            kernel.frames.unref(old)
            moved += 1
        self.pages_migrated += moved
        kernel.counters.incr("pages_migrated", moved)
        return moved
