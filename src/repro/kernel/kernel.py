"""The per-machine kernel: faults, COW, swap, local fork, reclaim hooks.

The fault handler implements the dispatch table from the paper (§4.3,
Table 2): *remote-mapped with parent PA in the PTE* -> RDMA pager;
*mapped but no PA* (file-backed etc.) -> the VMA's pager (RPC for MITOSIS,
lazy image reads for C/R); *unmapped growth* -> vanilla local policy.
"""

from itertools import count

from .. import params
from ..metrics import CounterSet
from .cgroups import CgroupPool
from .errors import KernelError, OomKilled, SegmentationFault
from .frames import FrameAllocator
from .process import Task

#: Cost to pull one page back in from the (compressed, in-memory) swap store.
SWAP_IN_LATENCY = 10.0 * params.US
#: Cost to push one page out to swap.
SWAP_OUT_LATENCY = 5.0 * params.US
#: Base cost of a local fork (Table 1: fork-based warm start ~1 ms; the
#: remainder is proportional to page-table size).
FORK_LOCAL_BASE = 0.6 * params.MS
FORK_LOCAL_PER_PTE = 0.002 * params.US


class SwapStore:  # reprolint: owner=machine
    """In-memory swap: reclaimed page contents, addressed by slot."""

    def __init__(self):
        self._slots = {}
        self._ids = count(1)

    def put(self, content):
        """Store content; returns its slot id."""
        slot = next(self._ids)
        self._slots[slot] = content
        return slot

    def get(self, slot):
        """Read a slot without consuming it."""
        try:
            return self._slots[slot]
        except KeyError:
            raise KernelError("bad swap slot %r" % (slot,))

    def pop(self, slot):
        """Read and free a slot."""
        content = self.get(slot)
        del self._slots[slot]
        return content

    def __len__(self):
        return len(self._slots)


class Kernel:  # reprolint: owner=machine
    """One machine's OS kernel."""

    def __init__(self, env, machine):
        self.env = env
        self.machine = machine
        machine.kernel = self
        self.frames = FrameAllocator(env, machine)
        self.swap = SwapStore()
        self.cgroup_pool = CgroupPool(env)
        self.tasks = {}
        self.counters = CounterSet()
        #: MITOSIS plugs its RDMA pager here: object with
        #: ``fetch(task, vma, vpn, pte) -> content`` (a generator).
        self.remote_pager = None
        #: Called as hook(task, vma, vpn, pte) *before* a page is reclaimed;
        #: MITOSIS uses this to destroy the VMA's DC target (§4.3).
        self.reclaim_hooks = []
        #: Generator hooks awaited before reclaim: the traditional *active*
        #: control model synchronizes with every remote child here — the
        #: expensive alternative MITOSIS's passive model replaces (§3).
        self.async_reclaim_hooks = []

    # --- Task lifecycle -------------------------------------------------------
    def create_task(self, name="task"):
        """Create and register a fresh task."""
        task = Task(self, name=name)
        self.tasks[task.pid] = task
        return task

    def adopt_task(self, task):
        """Register a task constructed elsewhere (descriptor restore)."""
        self.tasks[task.pid] = task

    def release_task(self, task):
        """Free every resident frame and forget the task."""
        for vpn, pte in list(task.address_space.page_table.entries()):
            if pte.present and pte.frame is not None:
                self.frames.unref(pte.unmap())
        self.tasks.pop(task.pid, None)

    def warm(self, task, content_tag="init"):
        """Materialize frames for every VMA page (builds a warmed parent).

        Setup helper: charges no simulated time; experiment clocks start
        after parents are running.
        """
        space = task.address_space
        for vma in space.vmas:
            for vpn in vma.vpns():
                pte = space.page_table.ensure(vpn)
                if not pte.present:
                    pte.map_frame(
                        self.frames.alloc(content=self._content_token(
                            task, vpn, content_tag)),
                        writable=vma.writable)

    @staticmethod
    def _content_token(task, vpn, tag):
        return "m%d/pid%d/v%d/%s" % (
            task.machine.machine_id, task.pid, vpn, tag)

    # --- Memory access ---------------------------------------------------------
    def touch(self, task, vpn, write=False):
        """Access one page; faults and services as needed.

        Generator returning the page's content token.
        """
        pte = task.address_space.page_table.entry(vpn)
        if pte is not None and pte.present:
            if write:
                if pte.cow:
                    yield from self._break_cow(task, vpn, pte)
                elif not pte.writable:
                    raise SegmentationFault(task, vpn << params.PAGE_SHIFT,
                                            "write to read-only page")
            return pte.frame.content
        yield from self.handle_fault(task, vpn, write=write)
        return task.address_space.page_table.entry(vpn).frame.content

    def write_page(self, task, vpn, value):
        """Write ``value`` into a page (data-sharing experiments).

        Generator; faults the page in (as a write) first.
        """
        yield from self.touch(task, vpn, write=True)
        pte = task.address_space.page_table.entry(vpn)
        pte.frame.content = value
        return value

    def handle_fault(self, task, vpn, write=False):
        """The page-fault handler (Table 2 dispatch).  Generator."""
        yield self.env.timeout(params.PAGE_FAULT_OVERHEAD)
        space = task.address_space
        vma = space.find_vma(vpn)
        if vma is None:
            self.counters.incr("fault_segv")
            raise SegmentationFault(task, vpn << params.PAGE_SHIFT, "no VMA")
        if write and not vma.writable:
            self.counters.incr("fault_segv")
            raise SegmentationFault(task, vpn << params.PAGE_SHIFT,
                                    "write to read-only VMA")
        pte = space.page_table.ensure(vpn)

        if pte.present:
            if write and pte.cow:
                yield from self._break_cow(task, vpn, pte)
            return

        if pte.remote and pte.remote_pfn is not None:
            # VA mapped remotely and the parent PA is right in the PTE:
            # pull it with one-sided RDMA (or fallback) via the remote pager.
            if self.remote_pager is None:
                raise KernelError(
                    "remote-bit PTE but no remote pager installed on m%d"
                    % self.machine.machine_id)
            self.counters.incr("fault_remote")
            content = yield from self.remote_pager.fetch(task, vma, vpn, pte)
            if not pte.present:  # pagers may install (COW-shared frames)
                self._install(task, pte, vma, content)
            pte.clear_remote()
            if write and pte.cow:
                yield from self._break_cow(task, vpn, pte)
            return

        if pte.remote:
            # VA mapped remotely but no PA recorded (e.g. parent file page
            # never loaded): Table 2 says RPC.
            if self.remote_pager is None:
                raise KernelError("no remote pager installed")
            self.counters.incr("fault_remote_rpc")
            content = yield from self.remote_pager.fetch_fallback(
                task, vma, vpn, pte)
            self._install(task, pte, vma, content)
            pte.clear_remote()
            return

        if pte.swap_slot is not None:
            self.counters.incr("fault_swap_in")
            yield self.env.timeout(SWAP_IN_LATENCY)
            content = self.swap.pop(pte.swap_slot)
            self._install(task, pte, vma, content)  # map_frame clears the slot
            return

        if vma.pager is not None:
            self.counters.incr("fault_pager")
            content = yield from vma.pager.fetch(task, vma, vpn)
            self._install(task, pte, vma, content)
            return

        # Unmapped growth (stack/heap): vanilla demand-zero policy.
        self.counters.incr("fault_demand_zero")
        yield self.env.timeout(params.FRAME_ALLOC_LATENCY)
        self._install(task, pte, vma,
                      self._content_token(task, vpn, "zero"))

    def _install(self, task, pte, vma, content):
        self._charge_cgroup(task)
        pte.map_frame(self.frames.alloc(content=content),
                      writable=vma.writable)

    def _charge_cgroup(self, task):
        """Enforce the task's cgroup memory limit before growing its RSS."""
        limit = getattr(task.cgroup, "memory_limit", None)
        if limit is None:
            return
        rss = task.address_space.resident_bytes
        if rss + params.PAGE_SIZE > limit:
            self.counters.incr("oom_kills")
            task.state = "oom-killed"
            raise OomKilled(task, limit)

    def _break_cow(self, task, vpn, pte):
        """Copy-on-write break: private copy of a shared frame."""
        self.counters.incr("fault_cow")
        yield self.env.timeout(
            params.FRAME_ALLOC_LATENCY
            + params.transfer_time(params.PAGE_SIZE, params.DRAM_COPY_BANDWIDTH))
        old = pte.break_cow_to(self.frames.alloc(content=pte.frame.content))
        self.frames.unref(old)

    # --- Local fork -------------------------------------------------------------
    def fork_local(self, parent, name=None):
        """Classic COW fork on this machine.  Generator returning the child."""
        space = parent.address_space
        num_ptes = len(space.page_table)
        yield self.env.timeout(FORK_LOCAL_BASE + FORK_LOCAL_PER_PTE * num_ptes)
        child = Task(self, name=name or (parent.name + "-child"),
                     registers=parent.registers.clone(),
                     namespaces=parent.namespaces.clone())
        child.fd_table = {fd: d.clone() for fd, d in parent.fd_table.items()}
        child_space = child.address_space
        child_space.vmas = [vma.clone_for_child() for vma in space.vmas]
        for vpn, pte in space.page_table.entries():
            child_pte = child_space.page_table.ensure(vpn)
            child_pte.copy_mapping_from(pte)
            if pte.present:
                child_pte.map_frame(self.frames.ref(pte.frame),
                                    writable=pte.writable, cow=True)
                pte.share_cow()
        child.predecessors = list(parent.predecessors)
        self.tasks[child.pid] = child
        return child

    # --- Reclaim (the trigger for passive access control) ------------------------
    def reclaim(self, task, vpns):
        """Swap out the given present pages of ``task``.

        Runs the registered reclaim hooks first — in MITOSIS's passive model
        the parent revokes RDMA access (destroys DC targets) and *then*
        frees the frames, never synchronizing with remote children (§4.3).
        Generator.
        """
        space = task.address_space
        reclaimed = 0
        for vpn in vpns:
            pte = space.page_table.entry(vpn)
            if pte is None or not pte.present:
                continue
            vma = space.find_vma(vpn)
            for hook in self.reclaim_hooks:
                hook(task, vma, vpn, pte)
            for hook in self.async_reclaim_hooks:
                yield from hook(task, vma, vpn, pte)
            yield self.env.timeout(SWAP_OUT_LATENCY)
            self.frames.unref(
                pte.swap_out(self.swap.put(pte.frame.content)))
            reclaimed += 1
            self.counters.incr("pages_reclaimed")
        return reclaimed
