"""Page tables and PTEs, including MITOSIS's extended bits.

The PTE carries the vanilla present/writable/COW flags plus two extensions
from the paper (§4.3, §4.4):

* a **remote** bit marking pages whose backing frame lives on an elder
  machine and must be pulled with RDMA on first access, and
* a 4-bit **owner index** into the task's predecessor list, identifying
  *which* elder machine holds the frame for multi-hop forks (max 15 hops).
"""

from .. import params
from .errors import KernelError


class Pte:  # reprolint: owner=machine
    """One page-table entry."""

    __slots__ = ("present", "writable", "cow", "remote", "swap_slot",
                 "frame", "remote_pfn", "owner_index", "huge")

    def __init__(self):
        self.present = False
        self.writable = True
        self.cow = False
        self.remote = False
        self.swap_slot = None
        self.frame = None         # local Frame when present
        self.remote_pfn = None    # parent physical frame number when remote
        self.owner_index = 0      # index into the predecessor list (4 bits)
        self.huge = False         # part of a THP-collapsed huge mapping

    def set_owner_index(self, index):
        """Set the 4-bit owner index; raises beyond MAX_FORK_HOPS."""
        if not 0 <= index <= params.MAX_FORK_HOPS:
            raise KernelError(
                "owner index %d does not fit the 4 PTE bits (max %d)"
                % (index, params.MAX_FORK_HOPS))
        self.owner_index = index

    # --- Owning mutation API ---------------------------------------------------
    # Every PTE bit-field write in the tree goes through these methods; the
    # `no-raw-pte-mutation` reprolint rule enforces that statically and the
    # frame-refcount sanitizer cross-checks the resulting mappings at
    # runtime.  Frame refcounts stay with FrameAllocator.ref()/unref() —
    # these methods move frames between PTEs but never count references.

    def map_frame(self, frame, writable, cow=False):
        """Install ``frame`` as the resident mapping.

        Clears any swap slot (residency and a swap copy are exclusive) and
        returns the frame so install-and-register call sites stay one
        expression.  The caller owns the frame's reference.
        """
        self.frame = frame
        self.present = True
        self.writable = writable
        self.cow = cow
        self.swap_slot = None
        return frame

    def unmap(self):
        """Clear residency; returns the unmapped frame (caller drops the ref)."""
        frame, self.frame = self.frame, None
        self.present = False
        return frame

    def migrate_to(self, frame, huge=None):
        """Replace the backing frame in place (KSM/THP/migration).

        Permission and sharing bits are preserved; returns the old frame
        (caller drops its ref).  ``huge`` overrides the huge bit when not
        None (THP collapse).
        """
        old, self.frame = self.frame, frame
        if huge is not None:
            self.huge = huge
        return old

    def share_cow(self):
        """Downgrade the mapping to copy-on-write (fork / KSM sharing)."""
        self.cow = True

    def break_cow_to(self, frame):
        """Give this mapping a private writable copy; returns the shared
        frame (caller drops its ref)."""
        old, self.frame = self.frame, frame
        self.cow = False
        self.writable = True
        return old

    def mark_remote(self, remote_pfn, owner_hop=0):
        """Point the PTE at an elder machine's frame (fork_resume, §4.3).

        ``remote_pfn`` may be None for the "mapped but no PA" Table 2 row
        (the next access takes the RPC path).
        """
        self.present = False
        self.frame = None
        self.remote = True
        self.remote_pfn = remote_pfn
        self.set_owner_index(owner_hop)

    def clear_remote(self):
        """Drop the remote bit once the page is materialized locally."""
        self.remote = False

    def drop_remote_pa(self):
        """Forget the direct parent PA (active-model invalidation): the
        next access falls back to the RPC row of Table 2."""
        self.remote_pfn = None

    def swap_out(self, slot):
        """Move residency to swap ``slot``; returns the evicted frame
        (caller drops its ref)."""
        frame = self.unmap()
        self.swap_slot = slot
        return frame

    def copy_mapping_from(self, other):
        """Copy the non-resident mapping bits from ``other`` (fork).

        Residency (present/frame/cow) is left alone — the forking kernel
        decides sharing via :meth:`map_frame`; the huge bit is not
        inherited (a child's mappings start as 4 KB COW)."""
        self.writable = other.writable
        self.remote = other.remote
        self.remote_pfn = other.remote_pfn
        self.owner_index = other.owner_index
        self.swap_slot = other.swap_slot

    def __repr__(self):
        bits = "".join((
            "P" if self.present else "-",
            "W" if self.writable else "-",
            "C" if self.cow else "-",
            "R" if self.remote else "-",
        ))
        return "<Pte %s frame=%s remote_pfn=%s owner=%d>" % (
            bits, self.frame, self.remote_pfn, self.owner_index)


class PageTable:  # reprolint: owner=machine
    """Sparse vpn -> PTE map for one address space."""

    def __init__(self):
        self._entries = {}

    def __len__(self):
        return len(self._entries)

    def __contains__(self, vpn):
        return vpn in self._entries

    def entry(self, vpn):
        """The PTE for ``vpn``, or None when nothing is mapped there."""
        return self._entries.get(vpn)

    def ensure(self, vpn):
        """The PTE for ``vpn``, creating an empty one if needed."""
        pte = self._entries.get(vpn)
        if pte is None:
            pte = Pte()
            self._entries[vpn] = pte
        return pte

    def drop(self, vpn):
        """Remove the PTE for ``vpn`` if present."""
        self._entries.pop(vpn, None)

    def entries(self):
        """Iterate (vpn, pte) pairs."""
        return self._entries.items()

    def present_vpns(self):
        """All vpns with resident frames."""
        return [vpn for vpn, pte in self._entries.items() if pte.present]

    def remote_vpns(self):
        """All vpns with the remote bit set."""
        return [vpn for vpn, pte in self._entries.items() if pte.remote]

    @property
    def nbytes(self):
        """Serialized size of the table (descriptor accounting)."""
        return len(self._entries) * params.DESCRIPTOR_PER_PTE_BYTES
