"""Page tables and PTEs, including MITOSIS's extended bits.

The PTE carries the vanilla present/writable/COW flags plus two extensions
from the paper (§4.3, §4.4):

* a **remote** bit marking pages whose backing frame lives on an elder
  machine and must be pulled with RDMA on first access, and
* a 4-bit **owner index** into the task's predecessor list, identifying
  *which* elder machine holds the frame for multi-hop forks (max 15 hops).
"""

from .. import params
from .errors import KernelError


class Pte:
    """One page-table entry."""

    __slots__ = ("present", "writable", "cow", "remote", "swap_slot",
                 "frame", "remote_pfn", "owner_index", "huge")

    def __init__(self):
        self.present = False
        self.writable = True
        self.cow = False
        self.remote = False
        self.swap_slot = None
        self.frame = None         # local Frame when present
        self.remote_pfn = None    # parent physical frame number when remote
        self.owner_index = 0      # index into the predecessor list (4 bits)
        self.huge = False         # part of a THP-collapsed huge mapping

    def set_owner_index(self, index):
        """Set the 4-bit owner index; raises beyond MAX_FORK_HOPS."""
        if not 0 <= index <= params.MAX_FORK_HOPS:
            raise KernelError(
                "owner index %d does not fit the 4 PTE bits (max %d)"
                % (index, params.MAX_FORK_HOPS))
        self.owner_index = index

    def __repr__(self):
        bits = "".join((
            "P" if self.present else "-",
            "W" if self.writable else "-",
            "C" if self.cow else "-",
            "R" if self.remote else "-",
        ))
        return "<Pte %s frame=%s remote_pfn=%s owner=%d>" % (
            bits, self.frame, self.remote_pfn, self.owner_index)


class PageTable:
    """Sparse vpn -> PTE map for one address space."""

    def __init__(self):
        self._entries = {}

    def __len__(self):
        return len(self._entries)

    def __contains__(self, vpn):
        return vpn in self._entries

    def entry(self, vpn):
        """The PTE for ``vpn``, or None when nothing is mapped there."""
        return self._entries.get(vpn)

    def ensure(self, vpn):
        """The PTE for ``vpn``, creating an empty one if needed."""
        pte = self._entries.get(vpn)
        if pte is None:
            pte = Pte()
            self._entries[vpn] = pte
        return pte

    def drop(self, vpn):
        """Remove the PTE for ``vpn`` if present."""
        self._entries.pop(vpn, None)

    def entries(self):
        """Iterate (vpn, pte) pairs."""
        return self._entries.items()

    def present_vpns(self):
        """All vpns with resident frames."""
        return [vpn for vpn, pte in self._entries.items() if pte.present]

    def remote_vpns(self):
        """All vpns with the remote bit set."""
        return [vpn for vpn, pte in self._entries.items() if pte.remote]

    @property
    def nbytes(self):
        """Serialized size of the table (descriptor accounting)."""
        return len(self._entries) * params.DESCRIPTOR_PER_PTE_BYTES
