"""Cgroups and the SOCK-style pre-created pool.

Creating isolation structures from scratch dominates containerization
(§2.4 / §6: >190 ms); SOCK's lean containers pre-create them so taking one
is nearly free.  MITOSIS generalizes this to its distributed fork (§4.1).
"""

from itertools import count

from .. import params


class Cgroup:  # reprolint: owner=machine
    """One cgroup: resource limits for a container."""

    _ids = count(1)

    def __init__(self, memory_limit=None, cpu_shares=1024):
        self.cgroup_id = next(Cgroup._ids)
        self.memory_limit = memory_limit
        self.cpu_shares = cpu_shares
        self.in_use = False

    def assign(self, memory_limit=None, cpu_shares=1024):
        """Configure limits and mark the cgroup busy."""
        self.memory_limit = memory_limit
        self.cpu_shares = cpu_shares
        self.in_use = True

    def release(self):
        """Mark the cgroup free for reuse."""
        self.in_use = False

    def __repr__(self):
        return "<Cgroup %d %s>" % (
            self.cgroup_id, "busy" if self.in_use else "free")


class CgroupPool:  # reprolint: owner=machine
    """Pool of ready cgroups; refills asynchronously after each take."""

    def __init__(self, env, size=params.CGROUP_POOL_SIZE):
        self.env = env
        self.size = size
        self._free = [Cgroup() for _ in range(size)]
        self.takes = 0
        self.slow_creates = 0

    def take(self):
        """Get a cgroup: pooled (fast) or freshly created (slow path).

        Generator returning a :class:`Cgroup`.
        """
        self.takes += 1
        if self._free:
            cgroup = self._free.pop()
            self.env.process(self._refill_one())
            return cgroup
        self.slow_creates += 1
        yield self.env.timeout(params.CGROUP_POOL_REFILL_LATENCY)
        return Cgroup()

    def give_back(self, cgroup):
        """Return a cgroup to the pool."""
        cgroup.release()
        if len(self._free) < self.size:
            self._free.append(cgroup)

    def _refill_one(self):
        yield self.env.timeout(params.CGROUP_POOL_REFILL_LATENCY)
        if len(self._free) < self.size:
            self._free.append(Cgroup())

    @property
    def available(self):
        """Free cgroups currently pooled."""
        return len(self._free)


class NamespaceSet:  # reprolint: owner=machine
    """The namespace flags a container runs under."""

    FLAGS = ("pid", "net", "mnt", "uts", "ipc", "user")

    def __init__(self, **enabled):
        unknown = set(enabled) - set(self.FLAGS)
        if unknown:
            raise ValueError("unknown namespace flags: %s" % sorted(unknown))
        self.flags = {flag: bool(enabled.get(flag, True)) for flag in self.FLAGS}

    def clone(self):
        """An independent copy of the flags."""
        return NamespaceSet(**self.flags)

    def __eq__(self, other):
        return isinstance(other, NamespaceSet) and other.flags == self.flags

    def __repr__(self):
        on = [f for f, v in self.flags.items() if v]
        return "<NamespaceSet %s>" % ",".join(on)
