"""Tasks: registers, address space, file descriptors, isolation."""

from itertools import count

from .cgroups import Cgroup, NamespaceSet
from .vma import AddressSpace


class Registers:  # reprolint: owner=machine
    """CPU register file — tiny, copied wholesale on fork/descriptor."""

    __slots__ = ("pc", "sp", "gprs")

    def __init__(self, pc=0x400000, sp=0x7FFF0000, gprs=None):
        self.pc = pc
        self.sp = sp
        self.gprs = dict(gprs or {})

    def clone(self):
        """An independent copy of the register file."""
        return Registers(self.pc, self.sp, dict(self.gprs))

    def __eq__(self, other):
        return (isinstance(other, Registers) and other.pc == self.pc
                and other.sp == self.sp and other.gprs == self.gprs)


class FileDescriptor:  # reprolint: owner=machine
    """One open descriptor: regular file or network socket.

    Serverless functions are mostly stateless; sockets to external storage
    are the common case and are restored via TCP-repair-style logic (§4.1).
    """

    def __init__(self, fd, kind, path=None, offset=0):
        if kind not in ("file", "socket"):
            raise ValueError("unknown fd kind %r" % (kind,))
        self.fd = fd
        self.kind = kind
        self.path = path
        self.offset = offset

    def clone(self):
        """An independent copy of the descriptor."""
        return FileDescriptor(self.fd, self.kind, self.path, self.offset)

    def __repr__(self):
        return "<fd %d %s %s>" % (self.fd, self.kind, self.path)


class Task:  # reprolint: owner=machine
    """A process (the unit a container wraps)."""

    _pids = count(100)

    def __init__(self, kernel, name="task", address_space=None,
                 registers=None, cgroup=None, namespaces=None):
        self.kernel = kernel
        self.machine = kernel.machine
        self.pid = next(Task._pids)
        self.name = name
        self.address_space = address_space or AddressSpace()
        self.registers = registers or Registers()
        self.fd_table = {}
        self.cgroup = cgroup or Cgroup()
        self.namespaces = namespaces or NamespaceSet()
        self.state = "runnable"
        #: Multi-hop fork lineage: [(machine, descriptor)] of elder
        #: containers this task may still pull pages from (§4.4).  Index 0
        #: is "self/local"; PTE owner bits index this list.
        self.predecessors = []
        #: Pooled-QP leases the connection plane attached at fork time
        #: (None without REPRO_CONNPLANE); released by invoker.untrack —
        #: a known fork-path/teardown coupling, like _mitosis_rcqps.
        self._connplane_leases = None  # reprolint: disable=tie-order-hazard

    def open_fd(self, kind, path=None):
        """Open a new file/socket descriptor; returns it."""
        fd = max(self.fd_table, default=2) + 1
        self.fd_table[fd] = FileDescriptor(fd, kind, path)
        return self.fd_table[fd]

    def exit(self):
        """Terminate the task and free its resident memory."""
        self.state = "dead"
        self.kernel.release_task(self)

    def __repr__(self):
        return "<Task pid=%d %s on m%d>" % (
            self.pid, self.name, self.machine.machine_id)
