"""Virtual memory areas and address spaces.

Each VMA may carry a *pager*: the pluggable object consulted when a fault
hits a page with no local frame and no remote mapping.  This is how the
C/R lazy-restore paths (tmpfs / DFS) and vanilla demand-zero are all
expressed in one mechanism, mirroring Linux's ``vm_operations->fault``.
"""

from enum import Enum

from .. import params
from .errors import KernelError
from .page_table import PageTable


class VmaKind(Enum):
    CODE = "code"
    DATA = "data"
    HEAP = "heap"
    STACK = "stack"
    SHARED_LIB = "shared_lib"
    FILE = "file"
    ANON = "anon"


class Vma:  # reprolint: owner=machine
    """One contiguous virtual region: [start_vpn, end_vpn)."""

    def __init__(self, start_vpn, num_pages, kind, writable=True, pager=None):
        if num_pages <= 0:
            raise KernelError("VMA must span at least one page")
        self.start_vpn = start_vpn
        self.num_pages = num_pages
        self.kind = kind
        self.writable = writable
        self.pager = pager
        #: MITOSIS: the DC target (parent side) / key (child side) granting
        #: RDMA access to this VMA's frames (§4.3, one connection per VMA).
        self.dc_target = None
        self.dct_key = None
        self.dct_target_id = None
        self.dct_owner_machine = None

    @property
    def end_vpn(self):
        """One past the last vpn of the region."""
        return self.start_vpn + self.num_pages

    def covers(self, vpn):
        """True if ``vpn`` falls inside this VMA."""
        return self.start_vpn <= vpn < self.end_vpn

    def vpns(self):
        """All vpns of the region, in order."""
        return range(self.start_vpn, self.end_vpn)

    def clone_for_child(self):
        """Copy the VMA metadata for a forked child (frames excluded)."""
        twin = Vma(self.start_vpn, self.num_pages, self.kind,
                   writable=self.writable, pager=self.pager)
        twin.dct_key = self.dct_key
        twin.dct_target_id = self.dct_target_id
        twin.dct_owner_machine = self.dct_owner_machine
        return twin

    def __repr__(self):
        return "<Vma %s [%d, %d)>" % (self.kind.value, self.start_vpn, self.end_vpn)


class AddressSpace:  # reprolint: owner=machine
    """VMAs + page table for one task (mm_struct)."""

    def __init__(self):
        self.vmas = []
        self.page_table = PageTable()
        self._next_vpn = 0x1000

    def add_vma(self, num_pages, kind, writable=True, pager=None, start_vpn=None):
        """Map a fresh region; returns the new VMA."""
        if start_vpn is None:
            start_vpn = self._next_vpn
        for existing in self.vmas:
            if (start_vpn < existing.end_vpn
                    and existing.start_vpn < start_vpn + num_pages):
                raise KernelError(
                    "VMA [%d, %d) overlaps %r"
                    % (start_vpn, start_vpn + num_pages, existing))
        vma = Vma(start_vpn, num_pages, kind, writable=writable, pager=pager)
        self.vmas.append(vma)
        self._next_vpn = max(self._next_vpn, vma.end_vpn + 0x100)
        return vma

    def find_vma(self, vpn):
        """The VMA covering ``vpn``, or None."""
        for vma in self.vmas:
            if vma.covers(vpn):
                return vma
        return None

    def grow(self, vma, extra_pages):
        """Extend a VMA upward (stack/heap growth)."""
        new_end = vma.end_vpn + extra_pages
        for other in self.vmas:
            if (other is not vma and other.start_vpn < new_end
                    and other.end_vpn > vma.end_vpn):
                raise KernelError("growth collides with %r" % (other,))
        vma.num_pages += extra_pages
        self._next_vpn = max(self._next_vpn, vma.end_vpn + 0x100)

    @property
    def total_pages(self):
        """Pages spanned by every VMA."""
        return sum(v.num_pages for v in self.vmas)

    @property
    def resident_pages(self):
        """Pages currently backed by frames."""
        return len(self.page_table.present_vpns())

    @property
    def resident_bytes(self):
        """Bytes currently backed by frames."""
        return self.resident_pages * params.PAGE_SIZE

    def descriptor_nbytes(self):
        """Serialized size of the VM metadata (for descriptor sizing)."""
        return (len(self.vmas) * params.DESCRIPTOR_PER_VMA_BYTES
                + self.page_table.nbytes)
