"""Measurement utilities: latency recorders, time series, throughput, stats."""

from .recorders import (
    CounterSet,
    LatencyRecorder,
    RecoveryLog,
    ThroughputMeter,
    TimeSeries,
)
from .stats import cdf_points, geometric_mean, histogram, mean, percentile

__all__ = [
    "CounterSet",
    "LatencyRecorder",
    "RecoveryLog",
    "ThroughputMeter",
    "TimeSeries",
    "cdf_points",
    "geometric_mean",
    "histogram",
    "mean",
    "percentile",
]
