"""Small statistics helpers used by recorders and experiment reports."""

import math


def percentile(values, pct):
    """The ``pct``-th percentile (0-100) by linear interpolation.

    Matches numpy's default ("linear") method so reports are comparable.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= pct <= 100:
        raise ValueError("pct must be in [0, 100], got %r" % (pct,))
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    value = ordered[low] + (ordered[high] - ordered[low]) * frac
    # Clamp 1-ulp interpolation overshoot so the result always lies
    # within [ordered[low], ordered[high]].
    return min(max(value, ordered[low]), ordered[high])


def mean(values):
    """Arithmetic mean; raises on an empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def geometric_mean(values):
    """Geometric mean; all values must be positive."""
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def cdf_points(values, num_points=100):
    """(value, cumulative_fraction) pairs suitable for plotting a CDF."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    if n <= num_points:
        return [(v, (i + 1) / n) for i, v in enumerate(ordered)]
    points = []
    for i in range(num_points):
        idx = min(n - 1, int(round((i + 1) / num_points * n)) - 1)
        points.append((ordered[idx], (idx + 1) / n))
    return points


def histogram(values, bin_edges):
    """Counts of values per ``[edge[i], edge[i+1])`` bin."""
    counts = [0] * (len(bin_edges) - 1)
    for value in values:
        for i in range(len(counts)):
            if bin_edges[i] <= value < bin_edges[i + 1]:
                counts[i] += 1
                break
    return counts
