"""Measurement collectors attached to simulated components.

These are plain data sinks: components call ``record``/``sample``/``incr``
at simulation time, and experiment harnesses read summaries afterwards.
"""

from collections import defaultdict

from . import stats


class LatencyRecorder:
    """Collects individual latency observations (microseconds)."""

    def __init__(self, name=""):
        self.name = name
        self.values = []

    def record(self, value):
        """Add one observation."""
        self.values.append(value)

    def __len__(self):
        return len(self.values)

    @property
    def count(self):
        """Number of observations."""
        return len(self.values)

    def mean(self):
        """Arithmetic mean of the observations."""
        return stats.mean(self.values)

    def geometric_mean(self):
        """Geometric mean of the observations."""
        return stats.geometric_mean(self.values)

    def percentile(self, pct):
        """The pct-th percentile of the observations."""
        return stats.percentile(self.values, pct)

    def p50(self):
        """Median latency."""
        return self.percentile(50)

    def p99(self):
        """99th-percentile latency."""
        return self.percentile(99)

    def max(self):
        """Largest observation."""
        if not self.values:
            raise ValueError("max of empty sequence")
        return max(self.values)

    def min(self):
        """Smallest observation."""
        if not self.values:
            raise ValueError("min of empty sequence")
        return min(self.values)

    def cdf(self, num_points=100):
        """(value, fraction) CDF points over the observations."""
        return stats.cdf_points(self.values, num_points)

    def summary(self):
        """Dict of the headline statistics (empty recorder -> zeros)."""
        if not self.values:
            return {"name": self.name, "count": 0}
        return {
            "name": self.name,
            "count": self.count,
            "mean": self.mean(),
            "p50": self.p50(),
            "p99": self.p99(),
            "min": self.min(),
            "max": self.max(),
        }


class TimeSeries:
    """(time, value) samples, e.g. memory usage over a trace replay."""

    def __init__(self, name=""):
        self.name = name
        self.samples = []

    def sample(self, time, value):
        """Append one (time, value) sample."""
        self.samples.append((time, value))

    def __len__(self):
        return len(self.samples)

    def values(self):
        """Sample values, in time order."""
        return [v for _, v in self.samples]

    def times(self):
        """Sample times, in order."""
        return [t for t, _ in self.samples]

    def max(self):
        """Largest sampled value."""
        return max(self.values())

    def value_at(self, time):
        """Most recent sample at or before ``time`` (step interpolation)."""
        best = None
        for t, v in self.samples:
            if t <= time:
                best = v
            else:
                break
        if best is None:
            raise ValueError("no sample at or before %r" % (time,))
        return best


class ThroughputMeter:
    """Counts completion events and reports windowed or overall rates."""

    def __init__(self, name=""):
        self.name = name
        self.events = []

    def mark(self, time):
        """Record one completion at ``time``."""
        self.events.append(time)

    @property
    def count(self):
        """Number of completions recorded."""
        return len(self.events)

    def rate(self, start=None, end=None):
        """Events per microsecond over [start, end] (defaults to full span)."""
        if not self.events:
            return 0.0
        if start is None:
            start = min(self.events)
        if end is None:
            end = max(self.events)
        if end <= start:
            return 0.0
        inside = sum(1 for t in self.events if start <= t <= end)
        return inside / (end - start)

    def windowed(self, window):
        """List of (window_start, count) over the observed span."""
        if not self.events:
            return []
        start = min(self.events)
        end = max(self.events)
        bins = defaultdict(int)
        for t in self.events:
            bins[int((t - start) // window)] += 1
        num = int((end - start) // window) + 1
        return [(start + i * window, bins.get(i, 0)) for i in range(num)]


class CounterSet:
    """A named bag of monotonically increasing counters."""

    def __init__(self):
        self._counts = defaultdict(int)

    def incr(self, name, amount=1):
        """Increase a named counter."""
        self._counts[name] += amount

    def __getitem__(self, name):
        return self._counts[name]

    def as_dict(self):
        """A snapshot dict of all counters."""
        return dict(self._counts)

    def reset(self):
        """Zero every counter."""
        self._counts.clear()


class RecoveryLog:
    """Outage bookkeeping: down/up marks per component, MTTR, counters.

    Components are identified by opaque hashable keys (e.g.
    ``("machine", 3)`` or ``("invoker", 0)``).  The first ``mark_down``
    for a component opens an outage; the matching ``mark_up`` closes it
    and records the repair time.  Mean time to repair (MTTR) summarizes
    the closed outages.
    """

    def __init__(self, name=""):
        self.name = name
        self.counters = CounterSet()
        #: component -> time the open outage started.
        self._down_since = {}
        #: (component, down_at, up_at) for every closed outage.
        self.repairs = []

    def mark_down(self, component, time):
        """Open an outage for ``component`` (no-op if already open)."""
        if component not in self._down_since:
            self._down_since[component] = time
            self.counters.incr("outages")

    def mark_up(self, component, time):
        """Close ``component``'s outage; returns the repair time or None."""
        down_at = self._down_since.pop(component, None)
        if down_at is None:
            return None
        self.repairs.append((component, down_at, time))
        return time - down_at

    def open_outages(self):
        """Components currently marked down."""
        return list(self._down_since)

    def mttr(self):
        """Mean time to repair over closed outages (None if none closed)."""
        if not self.repairs:
            return None
        return sum(up - down for _, down, up in self.repairs) / len(self.repairs)

    def summary(self):
        """Headline recovery numbers as a dict."""
        return {
            "name": self.name,
            "outages": self.counters["outages"],
            "repaired": len(self.repairs),
            "still_down": len(self._down_since),
            "mttr": self.mttr(),
        }
