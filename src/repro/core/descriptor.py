"""Container descriptors: the condensed remote-fork metadata (§4.1).

A descriptor is the KB-scale stand-in for C/R's MB-scale image files.  It
captures exactly the four state groups the paper lists: (1) isolation
metadata (limits + namespace flags), (2) CPU registers, (3) the VMA list
and a page-table snapshot whose entries point at the *parent's physical
frames*, and (4) file descriptors.  Memory pages are deliberately absent —
children pull them over RDMA on demand.
"""

from itertools import count

from .. import params


class ForkMeta:  # reprolint: owner=message
    """The few-bytes handle a platform passes around to fork a container.

    (parent RDMA address, handler id, authentication key) — §4.1.  When
    the deployment runs with leases armed, the handle also carries the
    descriptor's lease expiry (rFaaS-style): a child holding a stale
    handle must renew with the parent before resuming from it.  With the
    lineage layer armed it additionally carries the descriptor's fencing
    **generation**, which every descriptor RPC presents so a superseded
    holder is rejected (``repro.lineage``).  Both stamps are advisory
    state, not identity — they are excluded from eq/hash.
    """

    __slots__ = ("machine_id", "handler_id", "auth_key", "lease_expires_at",
                 "generation")

    NBYTES = 24

    def __init__(self, machine_id, handler_id, auth_key,
                 lease_expires_at=None, generation=None):
        self.machine_id = machine_id
        self.handler_id = handler_id
        self.auth_key = auth_key
        self.lease_expires_at = lease_expires_at
        self.generation = generation

    def __repr__(self):
        return "<ForkMeta m%d h%d>" % (self.machine_id, self.handler_id)

    def __eq__(self, other):
        return (isinstance(other, ForkMeta)
                and other.machine_id == self.machine_id
                and other.handler_id == self.handler_id
                and other.auth_key == self.auth_key)

    def __hash__(self):
        return hash((self.machine_id, self.handler_id, self.auth_key))


class VmaDescriptor:  # reprolint: owner=message
    """One VMA's serialized form, including its DC-target credentials.

    The (target id, DCT key) pair is the *connection-based* access grant
    for this VMA's physical pages (§4.3): children present the key on every
    RDMA read; the parent revokes the whole VMA by destroying the target.
    """

    __slots__ = ("start_vpn", "num_pages", "kind", "writable",
                 "dct_target_id", "dct_key")

    def __init__(self, start_vpn, num_pages, kind, writable,
                 dct_target_id, dct_key):
        self.start_vpn = start_vpn
        self.num_pages = num_pages
        self.kind = kind
        self.writable = writable
        self.dct_target_id = dct_target_id
        self.dct_key = dct_key

    def covers(self, vpn):
        """True if ``vpn`` falls inside this VMA."""
        return self.start_vpn <= vpn < self.start_vpn + self.num_pages


class PteSnapshot:  # reprolint: owner=message
    """One page-table entry in the descriptor.

    ``owner_hop`` says where the frame lives: 0 = on the descriptor's own
    machine (its shadow container), k > 0 = on the k-th elder up the fork
    lineage (multi-hop, §4.4 — encoded in 4 redundant PTE bits, so at most
    :data:`repro.params.MAX_FORK_HOPS`).
    """

    __slots__ = ("remote_pfn", "owner_hop")

    def __init__(self, remote_pfn, owner_hop=0):
        self.remote_pfn = remote_pfn
        self.owner_hop = owner_hop


class ContainerDescriptor:  # reprolint: owner=message
    """The full condensed descriptor stored at the parent machine."""

    _ids = count(1)
    _keys = count(0xA000)

    def __init__(self, machine, container_image, registers, namespaces,
                 cgroup_limits, vma_descriptors, pte_snapshots, fd_specs,
                 predecessors):
        self.uid = next(ContainerDescriptor._ids)
        self.machine = machine
        self.container_image = container_image
        self.registers = registers
        self.namespaces = namespaces
        self.cgroup_limits = cgroup_limits
        self.vma_descriptors = vma_descriptors
        #: vpn -> PteSnapshot for every page recoverable via RDMA.
        self.pte_snapshots = pte_snapshots
        self.fd_specs = fd_specs
        #: Elder lineage *above* this descriptor's machine:
        #: [(machine, descriptor), ...], nearest first (§4.4).
        self.predecessors = predecessors
        self.handler_id = self.uid
        self.auth_key = next(ContainerDescriptor._keys)
        #: Lineage identity (function name) and fencing generation — None
        #: until the lineage layer stamps them via ``assign_lineage``.
        self.lineage = None
        self.generation = None

    def fork_meta(self, lease_expires_at=None):
        """The compact (machine, handler id, key) handle for this descriptor."""
        return ForkMeta(self.machine.machine_id, self.handler_id,
                        self.auth_key, lease_expires_at=lease_expires_at,
                        generation=self.generation)

    def find_vma(self, vpn):
        """The VMA descriptor covering ``vpn``, or None."""
        for vd in self.vma_descriptors:
            if vd.covers(vpn):
                return vd
        return None

    @property
    def nbytes(self):
        """Wire size of the descriptor (KB-scale; read with one-sided RDMA)."""
        return (params.DESCRIPTOR_BASE_BYTES
                + len(self.vma_descriptors) * params.DESCRIPTOR_PER_VMA_BYTES
                + len(self.pte_snapshots) * params.DESCRIPTOR_PER_PTE_BYTES)

    @property
    def advert_bytes(self):
        """Wire size of one advertisement of this descriptor.

        The record the connection plane pushes ahead of demand: a fixed
        header (fork meta + control-target handle + generation + lease
        expiry) plus one 12 B DCT key per VMA, *plus the descriptor body
        itself* — an advert is useful precisely because the receiver
        never has to fetch the body at fork time.  Doubles as the
        receiver-side cache charge, so the memory-conservation sanitizer
        sees adverts in the same currency they cost on the wire.
        """
        return (params.CONNPLANE_ADVERT_BYTES
                + len(self.vma_descriptors) * params.DCT_KEY_BYTES
                + self.nbytes)

    @property
    def depth(self):
        """Fork hops below the original ancestor (0 = first generation)."""
        return len(self.predecessors)

    def __repr__(self):
        return "<Descriptor uid=%d m%d %.1fKB depth=%d>" % (
            self.uid, self.machine.machine_id,
            self.nbytes / params.KB, self.depth)
