"""The MITOSIS fork orchestrator: fork_prepare / fork_resume (§4.1).

``fork_prepare`` runs at the parent: fork a *shadow container* (a local COW
child that never executes), assign one DC target per VMA from the pooled
targets, and condense the execution state into a KB-scale descriptor
published under a (handler id, auth key) pair.

``fork_resume`` runs at the child machine: query the descriptor's address
over connection-less RPC, read the descriptor body with one-sided RDMA,
lean-containerize, and rebuild the task with every recoverable page marked
*remote* in its PTE — execution then restores memory read-on-access via
:class:`~repro.core.paging.RemotePager`.
"""

from .. import params

from ..faults.errors import LeaseExpired, ParentUnreachable
from ..kernel import KernelError
from ..metrics import LatencyRecorder
from ..rdma import ConnectionError_, RemoteAccessError, RpcError
from ..rdma.rpc import RpcTimeout
from ..sim import Interrupt
from .daemon import DescriptorService, NetworkDaemon
from .descriptor import ContainerDescriptor, PteSnapshot, VmaDescriptor
from .paging import RemotePager


class ForkDepthExceeded(KernelError):
    """A fork would need an owner index beyond the 4 PTE bits (§4.4)."""


class Mitosis:  # reprolint: owner=machine
    """MITOSIS installed on one machine."""

    def __init__(self, env, deployment, runtime, enable_sharing=True,
                 transport="dct", access_control="passive",
                 prefetch_depth=0, batch_pages=None):
        if transport not in ("dct", "rc"):
            raise ValueError("transport must be 'dct' or 'rc'")
        if access_control not in ("passive", "active"):
            raise ValueError("access_control must be 'passive' or 'active'")
        self.env = env
        self.deployment = deployment
        self.runtime = runtime
        self.kernel = runtime.kernel
        self.machine = runtime.machine
        self.transport = transport
        self.access_control = access_control
        nic = self.machine.nic
        if nic is None:
            raise ValueError("MITOSIS requires an RNIC on %r" % (self.machine,))
        self.nic = nic
        self.net_daemon = NetworkDaemon(env, nic)
        self.service = DescriptorService(env, self.machine, deployment.rpc)
        self.pager = RemotePager(env, self.machine, self.net_daemon,
                                 deployment.rpc, deployment,
                                 enable_sharing=enable_sharing,
                                 prefetch_depth=prefetch_depth,
                                 batch_pages=batch_pages)
        self.kernel.remote_pager = self.pager
        if access_control == "passive":
            self.kernel.reclaim_hooks.append(self._on_reclaim)
        else:
            # Traditional active model (§3): synchronize with every remote
            # child before the kernel may touch the frame.
            self.kernel.async_reclaim_hooks.append(self._active_invalidate)
            deployment.rpc.endpoint(self.machine).register(
                "mitosis.invalidate_page", self._handle_invalidate)
        #: Control DC target used for one-sided descriptor fetches.
        self.control_target = nic._new_target(user_key=0xC0)
        # The network daemon fills the DC target pool at boot so steady-state
        # fork_prepare never pays target creation on the critical path (§4.3).
        nic.target_pool.prefill_at_boot()
        #: Per-call RPC deadline/retries; None (the default) keeps every
        #: control-plane call on the fail-free fast path.  Armed by
        #: :meth:`connect_faults`.
        self._rpc_deadline = None
        self._rpc_retries = None
        self._lease_proc = None
        #: Optional ``{phase: LatencyRecorder}`` armed by
        #: :meth:`enable_phase_recorders`; ``None`` (the default) keeps
        #: :meth:`fork_resume` free of recorder bookkeeping.
        self.phase_latencies = None
        #: Connection control plane (``repro.connplane``); ``None`` (the
        #: default) keeps every fork on the seed's per-fork query +
        #: connect path, byte-identical.
        self.connplane = None

    # --- fork_prepare -------------------------------------------------------------
    def fork_prepare(self, container):
        """Generate this container's descriptor.  Generator -> ForkMeta."""
        tracer = self.env.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.start_span("mitosis.fork_prepare",
                                     machine=self.machine.machine_id)
        try:
            return (yield from self._prepare_body(container, span))
        finally:
            if span is not None:
                span.end()

    def _prepare_body(self, container, span):
        """The fork_prepare body.  Generator -> ForkMeta."""
        task = container.task
        if len(task.predecessors) + 1 > params.MAX_FORK_HOPS:
            raise ForkDepthExceeded(
                "container at depth %d cannot be forked again"
                % len(task.predecessors))

        # A local COW fork that never runs: keeps a stable frame set for
        # remote children while the parent continues executing.
        shadow = yield from self.kernel.fork_local(
            task, name=task.name + "-shadow")
        shadow.state = "shadow"

        resident_mb = task.address_space.resident_bytes / params.MB
        if span is not None:
            span.set(resident_mb=resident_mb,
                     vmas=len(shadow.address_space.vmas))
        yield self.env.timeout(params.FORK_PREPARE_BASE
                               + params.FORK_PREPARE_PER_MB * resident_mb)

        vma_descriptors = []
        for vma in shadow.address_space.vmas:
            target = yield from self.nic.target_pool.take()
            vma.dc_target = target
            vma_descriptors.append(VmaDescriptor(
                vma.start_vpn, vma.num_pages, vma.kind, vma.writable,
                dct_target_id=target.target_id, dct_key=target.key))

        pte_snapshots = {}
        for vpn, pte in shadow.address_space.page_table.entries():
            if pte.present:
                pte_snapshots[vpn] = PteSnapshot(pte.frame.pfn, owner_hop=0)
            elif pte.remote and pte.remote_pfn is not None:
                pte_snapshots[vpn] = PteSnapshot(
                    pte.remote_pfn, owner_hop=pte.owner_index + 1)
            elif pte.remote or pte.swap_slot is not None:
                # Mapped, but no directly readable PA: Table 2's RPC row.
                pte_snapshots[vpn] = PteSnapshot(None, owner_hop=0)

        descriptor = ContainerDescriptor(
            machine=self.machine,
            container_image=container.image,
            registers=task.registers.clone(),
            namespaces=task.namespaces.clone(),
            cgroup_limits=task.cgroup.memory_limit,
            vma_descriptors=vma_descriptors,
            pte_snapshots=pte_snapshots,
            fd_specs=[fd.clone() for fd in task.fd_table.values()],
            predecessors=list(task.predecessors),
        )
        self.service.publish(descriptor, shadow)
        return descriptor.fork_meta(
            lease_expires_at=self.service.lease_expiry(descriptor.handler_id))

    # --- fork_resume ---------------------------------------------------------------
    def enable_phase_recorders(self, registry=None):
        """Arm hand-placed per-phase recorders on :meth:`fork_resume`.

        Each phase records the exact ``env.now`` interval its trace span
        covers, under the same ``fork.<phase>`` name — pass a
        :class:`repro.trace.MetricsRegistry` to share one namespace with
        a tracer, or omit it for standalone recorders.  Idempotent;
        returns the ``{phase: recorder}`` map.  ``experiments trace``
        cross-checks these against the critical-path analyzer.
        """
        if self.phase_latencies is None:
            make = (registry.histogram if registry is not None
                    else LatencyRecorder)
            self.phase_latencies = {
                name: make("fork." + name)
                for name in ("descriptor_query", "descriptor_read",
                             "containerize", "rebuild", "total")}
        return self.phase_latencies

    def _phase_begin(self, tracer, name):
        """Open one fork_resume phase -> (span or None, start time)."""
        span = None
        if tracer is not None:
            span = tracer.start_span("fork." + name)
        return span, self.env.now

    def _phase_end(self, rec, name, span, started):
        """Close one phase.  Span and recorder share the same boundary
        stamps — the trace-vs-recorder cross-check depends on it."""
        if rec is not None:
            rec[name].record(self.env.now - started)
        if span is not None:
            span.end()

    def fork_resume(self, fork_meta):
        """Fork a child of ``fork_meta``'s container onto this machine.

        Generator returning the running :class:`Container`.

        With a tracer installed the resume is bracketed by a
        ``mitosis.fork_resume`` span with one child span per phase
        (``fork.descriptor_query`` / ``fork.descriptor_read`` /
        ``fork.containerize`` / ``fork.rebuild``); recorders armed by
        :meth:`enable_phase_recorders` observe the same boundaries.
        """
        tracer = self.env.tracer
        if tracer is not None and not tracer.enabled:
            tracer = None
        span = None
        if tracer is not None:
            span = tracer.start_span(
                "mitosis.fork_resume", machine=self.machine.machine_id,
                parent_machine=fork_meta.machine_id,
                handler=fork_meta.handler_id)
        rec = self.phase_latencies
        started = self.env.now
        try:
            container = yield from self._resume_phases(fork_meta, tracer, rec)
        finally:
            if rec is not None:
                rec["total"].record(self.env.now - started)
            if span is not None:
                span.end()
        return container

    def _resume_phases(self, fork_meta, tracer, rec):
        """The fork_resume body, phase-bracketed.  Generator."""
        parent_machine = self.deployment.machine_by_id(fork_meta.machine_id)

        # Child-side lease handling: a stale handle must be renewed with
        # the parent before it may be resumed from (rFaaS-style expiry).
        if (fork_meta.lease_expires_at is not None
                and self.env.now > fork_meta.lease_expires_at):
            yield from self._renew_lease(fork_meta, parent_machine)

        # Advertisement fast path (repro.connplane): a fresh pushed advert
        # already holds the descriptor body + DCT keys, so both control
        # round trips below — the query RPC and the one-sided body read —
        # vanish, replaced by a local hash probe.
        advert = (self.connplane.lookup(self.machine, fork_meta)
                  if self.connplane is not None else None)
        if advert is not None:
            yield self.env.timeout(params.CONNPLANE_LOOKUP_LATENCY)
            if tracer is not None:
                tracer.annotate("connplane_advert_hit",
                                handler=fork_meta.handler_id)
            descriptor = advert.descriptor
        else:
            # Phase 1: locate the descriptor with connection-less RPC; the
            # reply piggybacks the DCT keys (§4.2), then read the descriptor
            # body zero-copy with one-sided RDMA (§4.1).
            pspan, pstart = self._phase_begin(tracer, "descriptor_query")
            query_args = {"handler_id": fork_meta.handler_id,
                          "auth_key": fork_meta.auth_key}
            if fork_meta.generation is not None:
                # Fencing token (repro.lineage): present the handle's
                # generation so a superseded seed rejects the query instead
                # of serving it.
                query_args["generation"] = fork_meta.generation
            try:
                reply = yield from self.deployment.rpc.call(
                    self.machine, parent_machine, "mitosis.query_descriptor",
                    query_args,
                    request_bytes=fork_meta.NBYTES,
                    deadline=self._rpc_deadline, retries=self._rpc_retries)
            except (RpcTimeout, ConnectionError_) as exc:
                raise ParentUnreachable(
                    "descriptor query for h%d on m%d failed: %s"
                    % (fork_meta.handler_id, parent_machine.machine_id, exc))
            finally:
                self._phase_end(rec, "descriptor_query", pspan, pstart)
            descriptor = reply["descriptor"]
            parent_node = self.deployment.node(parent_machine)
            if parent_machine.machine_id != self.machine.machine_id:
                dcqp = self.net_daemon.dcqp()
                pspan, pstart = self._phase_begin(tracer, "descriptor_read")
                try:
                    yield from dcqp.read(
                        parent_machine, parent_node.control_target.target_id,
                        parent_node.control_target.key, reply["nbytes"])
                except (RemoteAccessError, ConnectionError_) as exc:
                    # The control target only vanishes when the parent dies
                    # or reboots mid-resume — unlike a per-VMA NAK this is
                    # not a routine revocation.
                    raise ParentUnreachable(
                        "descriptor body read from m%d failed: %s"
                        % (parent_machine.machine_id, exc))
                finally:
                    self._phase_end(rec, "descriptor_read", pspan, pstart)

        # Phase 2: fast containerization with a generalized lean container.
        # Descriptor-driven state rebuild is sub-millisecond (§4.1) and is
        # charged inside the sandbox slot like every start path's CPU work.
        pspan, pstart = self._phase_begin(tracer, "containerize")
        try:
            container = yield from self.runtime.lean_start_empty(
                descriptor.container_image,
                extra_slot_time=params.DESCRIPTOR_RESTORE_BASE)
        finally:
            self._phase_end(rec, "containerize", pspan, pstart)
        task = container.task

        # Rebuild execution state from the descriptor.
        pspan, pstart = self._phase_begin(tracer, "rebuild")
        try:
            task.registers = descriptor.registers.clone()
            task.namespaces = descriptor.namespaces.clone()
            task.cgroup.assign(memory_limit=descriptor.cgroup_limits)
            for fd_spec in descriptor.fd_specs:
                task.fd_table[fd_spec.fd] = fd_spec.clone()
                if fd_spec.kind == "socket":
                    yield self.env.timeout(params.SOCKET_RESTORE_LATENCY)

            for vd in descriptor.vma_descriptors:
                vma = task.address_space.add_vma(
                    vd.num_pages, vd.kind, writable=vd.writable,
                    start_vpn=vd.start_vpn)
                vma.dct_target_id = vd.dct_target_id
                vma.dct_key = vd.dct_key
                vma.dct_owner_machine = parent_machine

            for vpn, snap in descriptor.pte_snapshots.items():
                pte = task.address_space.page_table.ensure(vpn)
                pte.mark_remote(snap.remote_pfn, owner_hop=snap.owner_hop)

            task.predecessors = (
                [(parent_machine, descriptor)] + list(descriptor.predecessors))

            if self.access_control == "active":
                # The parent must know its children to synchronize with them.
                yield from self.deployment.rpc.call(
                    self.machine, parent_machine, "mitosis.register_child",
                    {"handler_id": fork_meta.handler_id,
                     "auth_key": fork_meta.auth_key,
                     "machine_id": self.machine.machine_id,
                     "pid": task.pid}, request_bytes=48,
                    deadline=self._rpc_deadline, retries=self._rpc_retries)

            if self.transport == "rc":
                # Ablation (Fig. 15 b "base"): per-child RC connections to
                # every elder, created at start — paying handshake + the
                # 700/s cap.  With the connection plane armed the QPs come
                # from the warm pool instead: repeat forks to the same
                # elder hit a cached connection, co-located children share
                # one through refcounted leases, and misses batch-create.
                task._mitosis_rcqps = {}
                if self.connplane is not None:
                    # Same co-located fork-path coupling as _mitosis_rcqps
                    # (already baselined): the node builds the child task's
                    # connection state on its own machine.
                    task._connplane_leases = []  # reprolint: disable=cross-shard-mutation
                for elder_machine, _ in task.predecessors:
                    if elder_machine.machine_id == self.machine.machine_id:
                        continue
                    if self.connplane is not None:
                        lease = yield from self.connplane.pool(
                            self.machine).acquire(elder_machine)
                        task._connplane_leases.append(lease)  # reprolint: disable=cross-shard-mutation
                        task._mitosis_rcqps[elder_machine.machine_id] = lease.qp  # reprolint: disable=cross-shard-mutation
                    else:
                        qp = yield from self.nic.create_rc_qp(elder_machine)
                        task._mitosis_rcqps[elder_machine.machine_id] = qp
        finally:
            self._phase_end(rec, "rebuild", pspan, pstart)

        container.mark_running()
        return container

    def _renew_lease(self, fork_meta, parent_machine):
        """Renew a stale handle with the parent.  Generator.

        Raises :class:`LeaseExpired` when the parent authoritatively says
        the descriptor is gone (revoked — do not retry this handle), and
        :class:`ParentUnreachable` when the parent never answers (dead —
        the caller may re-elect a seed or degrade to C/R-from-DFS).
        """
        renew_args = {"handler_id": fork_meta.handler_id,
                      "auth_key": fork_meta.auth_key}
        if fork_meta.generation is not None:
            renew_args["generation"] = fork_meta.generation
        try:
            expiry = yield from self.deployment.rpc.call(
                self.machine, parent_machine, "mitosis.renew_lease",
                renew_args,
                request_bytes=fork_meta.NBYTES,
                deadline=self._rpc_deadline, retries=self._rpc_retries)
        except RpcError as exc:
            raise LeaseExpired(
                "lease on h%d not renewable: %s"
                % (fork_meta.handler_id, exc))
        except (RpcTimeout, ConnectionError_) as exc:
            raise ParentUnreachable(
                "lease renewal for h%d on m%d failed: %s"
                % (fork_meta.handler_id, parent_machine.machine_id, exc))
        fork_meta.lease_expires_at = expiry

    # --- Fault wiring ------------------------------------------------------------------
    def connect_faults(self, injector, leases=True, lease_daemon=False):
        """Arm this node against an installed :class:`FaultInjector`.

        Switches every control-plane RPC onto the deadline+retry path,
        optionally arms descriptor leases, and registers crash/restart
        hooks so a machine failure wipes (and a restart re-provisions)
        this node's RDMA-exposed state.
        """
        self._rpc_deadline = params.RPC_DEFAULT_DEADLINE
        self._rpc_retries = params.RPC_MAX_RETRIES
        self.pager._rpc_deadline = params.RPC_DEFAULT_DEADLINE
        self.pager._rpc_retries = params.RPC_MAX_RETRIES
        if leases:
            self.service.enable_leases()
        mid = self.machine.machine_id

        def on_crash(machine_id):
            if machine_id == mid:
                self._on_machine_crash()

        def on_restart(machine_id):
            if machine_id == mid:
                self._on_machine_restart()

        injector.on_crash(on_crash)
        injector.on_restart(on_restart)
        if lease_daemon:
            self.start_lease_daemon()

    def enable_resilience(self, breakers=True, hedging=True):
        """Arm this node's pager with breakers + hedged reads."""
        return self.pager.enable_resilience(breakers=breakers,
                                            hedging=hedging)

    def _on_machine_crash(self):
        """Fail-stop: all volatile MITOSIS state on this machine dies."""
        self.stop_lease_daemon()
        self.service.on_machine_crash()
        for target in list(self.nic.dc_targets.values()):
            self.nic.destroy_target(target)
        self.nic.target_pool._free.clear()
        if self.connplane is not None:
            # Local pool + advert cache die; warm QPs and adverts pointing
            # at this machine are invalidated cluster-wide.
            self.connplane.on_machine_crash(self.machine.machine_id)

    def _on_machine_restart(self):
        """Re-provision boot-time RDMA state after a restart."""
        self.control_target = self.nic._new_target(user_key=0xC0)
        self.nic.target_pool.prefill_at_boot()

    def start_lease_daemon(self, period=params.LEASE_RENEW_PERIOD):
        """Start the parent-side renewal loop: periodically re-stamp every
        live descriptor's lease and sweep the over-due ones."""
        if self._lease_proc is not None and self._lease_proc.is_alive:
            return self._lease_proc

        def loop():
            try:
                while True:
                    yield self.env.timeout(period)
                    for hid in list(self.service._table):
                        _, shadow = self.service._table[hid]
                        if shadow.state != "dead":
                            self.service.touch_lease(hid)
                    self.service.sweep_leases()
            except Interrupt:
                pass

        self._lease_proc = self.env.process(loop())
        return self._lease_proc

    def stop_lease_daemon(self):
        """Stop the renewal loop (no-op if it never started)."""
        if self._lease_proc is not None and self._lease_proc.is_alive:
            self._lease_proc.interrupt("stop")
        self._lease_proc = None

    # --- Passive access control (parent side) ----------------------------------------
    def _on_reclaim(self, task, vma, vpn, pte):
        """Reclaim hook: destroy the VMA's DC target *before* the kernel
        frees the frame, so in-flight and future RDMA reads are NAKed and
        children passively fall back to RPC (§4.3)."""
        if vma is not None and vma.dc_target is not None:
            if vma.dc_target.active:
                self.nic.destroy_target(vma.dc_target)

    # --- Active access control (the §3 alternative, for comparison) -----------------
    def _active_invalidate(self, task, vma, vpn, pte):
        """Synchronously invalidate the faulting page at *every* remote
        child before reclaim proceeds — one RPC round per child, which is
        what makes the active model unusable at fork fan-outs of
        thousands (§3).  Generator."""
        for handler_id in self.service.shadow_descriptors(task):
            for machine_id, pid in self.service.children_of(handler_id):
                child_machine = self.deployment.machine_by_id(machine_id)
                yield from self.deployment.rpc.call(
                    self.machine, child_machine, "mitosis.invalidate_page",
                    {"pid": pid, "vpn": vpn}, request_bytes=32,
                    deadline=self._rpc_deadline, retries=self._rpc_retries)

    def _handle_invalidate(self, args):
        """Child-side invalidation: drop the direct PA so the next access
        takes the RPC path (Table 2's 'no PA in PTE' row)."""
        yield self.env.timeout(2.0 * params.US)  # PTE update + TLB shootdown
        task = self.kernel.tasks.get(args["pid"])
        if task is not None:
            pte = task.address_space.page_table.entry(args["vpn"])
            if pte is not None and pte.remote:
                pte.drop_remote_pa()
        return True, 32

    # --- Housekeeping -------------------------------------------------------------------
    def retire_descriptor(self, fork_meta):
        """Drop a descriptor and its shadow container (GC after DAG runs, §5)."""
        entry = self.service.lookup(fork_meta.handler_id, fork_meta.auth_key)
        if entry is None:
            return False
        descriptor, shadow = entry
        self.service.retract(descriptor)
        for vma in shadow.address_space.vmas:
            if vma.dc_target is not None and vma.dc_target.active:
                self.nic.destroy_target(vma.dc_target)
        shadow.exit()
        return True


class MitosisDeployment:  # reprolint: owner=cluster
    """MITOSIS deployed on every RDMA machine of a cluster (Fig. 4)."""

    def __init__(self, env, cluster, fabric, rpc, runtimes,
                 enable_sharing=True, transport="dct",
                 access_control="passive", prefetch_depth=0,
                 batch_pages=None):
        self.env = env
        self.cluster = cluster
        self.fabric = fabric
        self.rpc = rpc
        self._nodes = {}
        for runtime in runtimes:
            node = Mitosis(env, self, runtime,
                           enable_sharing=enable_sharing, transport=transport,
                           access_control=access_control,
                           prefetch_depth=prefetch_depth,
                           batch_pages=batch_pages)
            self._nodes[runtime.machine.machine_id] = node

    def node(self, machine):
        """The Mitosis node installed on ``machine``."""
        try:
            return self._nodes[machine.machine_id]
        except KeyError:
            raise ValueError("MITOSIS not deployed on %r" % (machine,))

    def descriptor_service(self, machine):
        """The descriptor service on ``machine``."""
        return self.node(machine).service

    def machine_by_id(self, machine_id):
        """Resolve a machine id to its Machine."""
        return self.cluster.machine(machine_id)

    def nodes(self):
        """All deployed Mitosis nodes."""
        return list(self._nodes.values())

    def connect_faults(self, injector, leases=True, lease_daemons=False):
        """Arm every deployed node against ``injector`` (see
        :meth:`Mitosis.connect_faults`)."""
        for node in self._nodes.values():
            node.connect_faults(injector, leases=leases,
                                lease_daemon=lease_daemons)

    def enable_resilience(self, breakers=True, hedging=True):
        """Arm every deployed node's pager (see
        :meth:`Mitosis.enable_resilience`)."""
        for node in self._nodes.values():
            node.enable_resilience(breakers=breakers, hedging=hedging)

    def stop_fault_daemons(self):
        """Stop every node's lease-renewal daemon so the event loop can
        drain once an experiment's arrivals are done."""
        for node in self._nodes.values():
            node.stop_lease_daemon()
