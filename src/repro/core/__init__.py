"""MITOSIS: the RDMA-codesigned remote-fork primitive (the paper's core).

Public surface:

* :class:`MitosisDeployment` — install MITOSIS across a cluster.
* :class:`Mitosis` — one machine's orchestrator (fork_prepare/fork_resume).
* :class:`ForkMeta` / :class:`ContainerDescriptor` — the condensed state.
* :class:`RemotePager` / :class:`SharedPageCache` — read-on-access paging.
* :class:`NetworkDaemon` / :class:`DescriptorService` — per-machine daemons.
"""

from .daemon import DescriptorService, NetworkDaemon
from .descriptor import (
    ContainerDescriptor,
    ForkMeta,
    PteSnapshot,
    VmaDescriptor,
)
from .mitosis import ForkDepthExceeded, Mitosis, MitosisDeployment
from .paging import RemotePager, SharedPageCache

__all__ = [
    "ContainerDescriptor",
    "DescriptorService",
    "ForkDepthExceeded",
    "ForkMeta",
    "Mitosis",
    "MitosisDeployment",
    "NetworkDaemon",
    "PteSnapshot",
    "RemotePager",
    "SharedPageCache",
    "VmaDescriptor",
]
