"""The per-machine MITOSIS daemons (§3.2, Fig. 4).

* :class:`NetworkDaemon` — owns a small cache of DC queue pairs so the
  data path never creates connections at fork time (§4.2), plus the DC
  target pool.
* Fallback/descriptor RPC handlers — the two kernel threads serving
  descriptor-address queries and fallback page reads (§4.1, §4.3).
"""

from .. import params
from ..rdma import RpcError
from ..rdma.qp import DcQp


class NetworkDaemon:
    """Caches DCQPs and hands them out round-robin to faulting processes."""

    def __init__(self, env, nic, num_dcqps=8):
        self.env = env
        self.nic = nic
        self._dcqps = [DcQp(nic) for _ in range(num_dcqps)]
        self._next = 0

    def dcqp(self):
        """A cached DC queue pair — zero connection cost at fork time."""
        qp = self._dcqps[self._next]
        self._next = (self._next + 1) % len(self._dcqps)
        return qp

    @property
    def cached_qps(self):
        """Number of DC queue pairs kept warm."""
        return len(self._dcqps)


class DescriptorService:
    """Parent-side registry of descriptors + shadow containers, with the
    RPC handlers children call during fork_resume and fallback."""

    def __init__(self, env, machine, rpc):
        self.env = env
        self.machine = machine
        self.rpc = rpc
        #: handler_id -> (descriptor, shadow_task)
        self._table = {}
        #: handler_id -> [(child machine_id, child pid)] — only populated
        #: under the *active* control model, which must know every remote
        #: child so it can synchronize with them before reclaiming (§3).
        self._children = {}
        endpoint = rpc.endpoint(machine)
        endpoint.register("mitosis.query_descriptor", self._handle_query)
        endpoint.register("mitosis.fallback_page", self._handle_fallback)
        endpoint.register("mitosis.register_child", self._handle_register)

    # --- Registry ---------------------------------------------------------------
    def publish(self, descriptor, shadow_task):
        """Register a descriptor + shadow pair; charges descriptor memory."""
        self.machine.memory.alloc(descriptor.nbytes)
        self._table[descriptor.handler_id] = (descriptor, shadow_task)

    def retract(self, descriptor):
        """Unpublish a descriptor and free its memory."""
        entry = self._table.pop(descriptor.handler_id, None)
        if entry is not None:
            self.machine.memory.free(descriptor.nbytes)

    def lookup(self, handler_id, auth_key):
        """The (descriptor, shadow) for valid (handler id, key), else None."""
        entry = self._table.get(handler_id)
        if entry is None or entry[0].auth_key != auth_key:
            return None
        return entry

    def children_of(self, handler_id):
        """Registered remote children of a descriptor (active model)."""
        return list(self._children.get(handler_id, ()))

    def shadow_descriptors(self, task):
        """Handler ids whose shadow container is ``task``."""
        return [hid for hid, (_, shadow) in self._table.items()
                if shadow is task]

    def __len__(self):
        return len(self._table)

    # --- RPC handlers ------------------------------------------------------------
    def _handle_query(self, args):
        """Return the descriptor's address/size (and piggybacked DCT keys,
        §4.2) so the child can read it with one-sided RDMA."""
        yield self.env.timeout(1.0 * params.US)  # table lookup
        entry = self.lookup(args["handler_id"], args["auth_key"])
        if entry is None:
            raise RpcError("bad fork meta (handler %r)" % (args["handler_id"],))
        descriptor, _ = entry
        # Reply carries address+size+keys; the descriptor body itself goes
        # over one-sided RDMA, not in this reply (zero-copy fetch, §4.1).
        return {"descriptor": descriptor, "nbytes": descriptor.nbytes}, 256

    def _handle_fallback(self, args):
        """Serve one page through the fallback daemon (§4.3).

        Reads the shadow container's physical page for the faulting VA,
        loading it from swap/secondary storage if the parent reclaimed it.
        """
        entry = self.lookup(args["handler_id"], args["auth_key"])
        if entry is None:
            raise RpcError("bad fork meta in fallback")
        descriptor, shadow_task = entry
        vpn = args["vpn"]
        yield self.env.timeout(params.FALLBACK_RPC_PAGE_LATENCY)
        pte = shadow_task.address_space.page_table.entry(vpn)
        if pte is not None and pte.present:
            return pte.frame.content, params.PAGE_SIZE
        if pte is not None and pte.swap_slot is not None:
            yield self.env.timeout(params.FALLBACK_STORAGE_PAGE_LATENCY)
            return shadow_task.kernel.swap.get(pte.swap_slot), params.PAGE_SIZE
        if pte is not None and pte.remote:
            # Multi-hop shadow: the frame lives on an elder machine; the
            # child should retry against that elder directly.
            raise RpcError("page %d not owned by this hop" % vpn)
        # Never-loaded page (e.g. a file page the parent never touched):
        # load it from secondary storage.
        yield self.env.timeout(params.FALLBACK_STORAGE_PAGE_LATENCY)
        return "m%d/storage/v%d" % (self.machine.machine_id, vpn), params.PAGE_SIZE

    def _handle_register(self, args):
        """Record a remote child (active control model bookkeeping)."""
        yield self.env.timeout(1.0 * params.US)
        entry = self.lookup(args["handler_id"], args["auth_key"])
        if entry is None:
            raise RpcError("bad fork meta in register_child")
        self._children.setdefault(args["handler_id"], []).append(
            (args["machine_id"], args["pid"]))
        return True, 32
