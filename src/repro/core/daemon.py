"""The per-machine MITOSIS daemons (§3.2, Fig. 4).

* :class:`NetworkDaemon` — owns a small cache of DC queue pairs so the
  data path never creates connections at fork time (§4.2), plus the DC
  target pool.
* Fallback/descriptor RPC handlers — the two kernel threads serving
  descriptor-address queries and fallback page reads (§4.1, §4.3).
"""

from .. import params
from ..lineage.errors import StaleGeneration
from ..metrics import CounterSet
from ..rdma import RpcError
from ..rdma.qp import DcQp


class NetworkDaemon:  # reprolint: owner=machine
    """Caches DCQPs and hands them out round-robin to faulting processes."""

    def __init__(self, env, nic, num_dcqps=8):
        self.env = env
        self.nic = nic
        self._dcqps = [DcQp(nic) for _ in range(num_dcqps)]
        self._next = 0

    def dcqp(self):
        """A cached DC queue pair — zero connection cost at fork time."""
        qp = self._dcqps[self._next]
        self._next = (self._next + 1) % len(self._dcqps)
        return qp

    @property
    def cached_qps(self):
        """Number of DC queue pairs kept warm."""
        return len(self._dcqps)


class DescriptorService:  # reprolint: owner=machine
    """Parent-side registry of descriptors + shadow containers, with the
    RPC handlers children call during fork_resume and fallback."""

    def __init__(self, env, machine, rpc):
        self.env = env
        self.machine = machine
        self.rpc = rpc
        #: handler_id -> (descriptor, shadow_task)
        self._table = {}
        #: handler_id -> absolute lease expiry time (only when leases are
        #: armed).  Kept beside ``_table`` so the (descriptor, shadow)
        #: tuple shape every caller relies on is unchanged.
        self._leases = {}
        #: None = leases disabled (the seed behaviour); else the duration.
        self.lease_duration = None
        self.counters = CounterSet()
        #: handler_id -> [(child machine_id, child pid)] — only populated
        #: under the *active* control model, which must know every remote
        #: child so it can synchronize with them before reclaiming (§3).
        self._children = {}
        #: handler_id -> [lineage name, generation] for lineage-stamped
        #: descriptors (``repro.lineage``).  Entries survive :meth:`expire`
        #: as tombstones so a post-fence caller gets the precise
        #: :class:`~repro.lineage.errors.StaleGeneration` rejection.
        self._lineage = {}
        #: lineage name -> fence floor this daemon has learned; any
        #: handler or caller generation *below* the floor is rejected.
        self._fences = {}
        #: Audit trails for ``audit_lineage``: every page/descriptor serve
        #: from a lineage-stamped handler, and every fence applied here.
        #: Plain appends — no events, so fail-free runs are unchanged.
        self.serve_log = []
        self.fence_log = []
        #: Connection control plane (``repro.connplane``); None keeps
        #: fence application free of advert bookkeeping (the seed path).
        self.connplane = None
        endpoint = rpc.endpoint(machine)
        endpoint.register("mitosis.query_descriptor", self._handle_query)
        endpoint.register("mitosis.fallback_page", self._handle_fallback)
        endpoint.register("mitosis.register_child", self._handle_register)
        endpoint.register("mitosis.renew_lease", self._handle_renew)
        endpoint.register("mitosis.adopt_generation", self._handle_adopt)
        endpoint.register("mitosis.fence_lineage", self._handle_fence)

    # --- Leases (rFaaS-style expiry of RDMA-exposed state) ------------------------
    def enable_leases(self, duration=params.LEASE_DURATION):
        """Arm lease expiry: descriptors now die unless renewed."""
        self.lease_duration = duration

    @property
    def leases_enabled(self):
        """True once :meth:`enable_leases` has run."""
        return self.lease_duration is not None

    def lease_expiry(self, handler_id):
        """Absolute expiry time of a descriptor's lease, or None."""
        return self._leases.get(handler_id)

    def touch_lease(self, handler_id):
        """Renew a published descriptor's lease; returns the new expiry."""
        if not self.leases_enabled or handler_id not in self._table:
            return None
        expiry = self.env.now + self.lease_duration
        self._leases[handler_id] = expiry
        return expiry

    def _lease_expired(self, handler_id):
        expiry = self._leases.get(handler_id)
        return expiry is not None and self.env.now > expiry

    def expire(self, handler_id):
        """Reclaim one descriptor whose lease ran out: free the memory
        charge, revoke its shadow's DC targets, and exit the shadow."""
        entry = self._table.pop(handler_id, None)
        self._leases.pop(handler_id, None)
        if entry is None:
            return False
        descriptor, shadow = entry
        self.machine.memory.free(descriptor.nbytes)
        self._destroy_shadow(shadow)
        self.counters.incr("leases_expired")
        return True

    def sweep_leases(self):
        """Expire every over-due descriptor; returns how many died."""
        expired = [hid for hid in list(self._table)
                   if self._lease_expired(hid)]
        for hid in expired:
            self.expire(hid)
        return len(expired)

    def _destroy_shadow(self, shadow):
        nic = self.machine.nic
        for vma in shadow.address_space.vmas:
            target = getattr(vma, "dc_target", None)
            if target is not None and target.active and nic is not None:
                nic.destroy_target(target)
        if shadow.state != "dead":
            shadow.exit()

    # --- Registry ---------------------------------------------------------------
    def publish(self, descriptor, shadow_task):
        """Register a descriptor + shadow pair; charges descriptor memory."""
        self.machine.memory.alloc(descriptor.nbytes)
        self._table[descriptor.handler_id] = (descriptor, shadow_task)
        if self.leases_enabled:
            self._leases[descriptor.handler_id] = (
                self.env.now + self.lease_duration)

    def retract(self, descriptor):
        """Unpublish a descriptor and free its memory."""
        entry = self._table.pop(descriptor.handler_id, None)
        self._leases.pop(descriptor.handler_id, None)
        self._lineage.pop(descriptor.handler_id, None)
        if entry is not None:
            self.machine.memory.free(descriptor.nbytes)

    def lookup(self, handler_id, auth_key):
        """The (descriptor, shadow) for valid (handler id, key), else None.

        With leases armed, an over-due descriptor is expired lazily right
        here — the first access after its deadline reclaims it.
        """
        if self._lease_expired(handler_id):
            self.expire(handler_id)
            return None
        entry = self._table.get(handler_id)
        if entry is None or entry[0].auth_key != auth_key:
            return None
        return entry

    def on_machine_crash(self):
        """Fail-stop wipe: drop every descriptor, freeing all its charges.

        The memory accounting must balance on *every* exit path — crash
        included — so the machine restarts with a clean slate instead of
        leaking phantom descriptor bytes.
        """
        for handler_id, (descriptor, shadow) in list(self._table.items()):
            self.machine.memory.free(descriptor.nbytes)
            self._destroy_shadow(shadow)
            self.counters.incr("descriptors_lost")
        self._table.clear()
        self._leases.clear()
        self._children.clear()
        # Lineage stamps and learned fences are volatile too: a revived
        # machine knows nothing until fence delivery reaches it again
        # (the audit trails are instrumentation and survive).
        self._lineage.clear()
        self._fences.clear()

    # --- Lineage fencing (repro.lineage) -----------------------------------------
    def assign_lineage(self, handler_id, name, generation):
        """Stamp a published descriptor with its lineage identity."""
        entry = self._table.get(handler_id)
        if entry is None:
            raise KeyError("cannot stamp unpublished handler %r"
                           % (handler_id,))
        descriptor = entry[0]
        descriptor.lineage = name
        descriptor.generation = generation
        self._lineage[handler_id] = [name, generation]

    def lineage_of(self, handler_id):
        """(name, generation) of a stamped handler, else None."""
        info = self._lineage.get(handler_id)
        return None if info is None else tuple(info)

    def fence_floor(self, name):
        """The fence generation this daemon has learned for ``name``."""
        return self._fences.get(name, 0)

    def apply_fence(self, name, generation):
        """Raise the local fence floor for ``name`` (max-merge) and expire
        every handler of that lineage stamped below the new floor —
        a fenced daemon must stop serving its superseded descriptors."""
        current = self._fences.get(name, 0)
        if generation > current:
            self._fences[name] = generation
        floor = self._fences.get(name, generation)
        self.fence_log.append((self.env.now, name, floor))
        for handler_id, info in list(self._lineage.items()):
            if info[0] == name and info[1] < floor:
                if handler_id in self._table:
                    self.expire(handler_id)
                    self.counters.incr("descriptors_fenced")
        if self.connplane is not None:
            # Fences compose with advertisement: a superseded generation
            # must stop serving from advert caches too, everywhere.
            self.connplane.on_fence(name, floor)
        return floor

    def _fence_check(self, handler_id, caller_generation=None):
        """Reject fenced handlers/callers.  Raises
        :class:`~repro.lineage.errors.StaleGeneration`; returns the
        handler's lineage info (or None for unstamped handlers).

        Fencing tokens compare by *ordering only*: a holder is stale
        exactly when its generation sorts below the fence floor.
        """
        info = self._lineage.get(handler_id)
        if info is None:
            return None
        name, generation = info
        fence = self._fences.get(name)
        if fence is not None:
            if generation < fence:
                raise StaleGeneration(
                    "handler %r of lineage %r fenced: generation %d "
                    "superseded by fence %d"
                    % (handler_id, name, generation, fence))
            if caller_generation is not None and caller_generation < fence:
                raise StaleGeneration(
                    "caller of lineage %r fenced: presented generation %d "
                    "superseded by fence %d"
                    % (name, caller_generation, fence))
        return info

    def _record_serve(self, handler_id, kind):
        """Audit-trail one serve from a lineage-stamped handler."""
        info = self._lineage.get(handler_id)
        if info is not None:
            self.serve_log.append((self.env.now, info[0], info[1], kind))

    def children_of(self, handler_id):
        """Registered remote children of a descriptor (active model)."""
        return list(self._children.get(handler_id, ()))

    def shadow_descriptors(self, task):
        """Handler ids whose shadow container is ``task``."""
        return [hid for hid, (_, shadow) in self._table.items()
                if shadow is task]

    def __len__(self):
        return len(self._table)

    # --- RPC handlers ------------------------------------------------------------
    def _handle_query(self, args):
        """Return the descriptor's address/size (and piggybacked DCT keys,
        §4.2) so the child can read it with one-sided RDMA."""
        tracer = self.env.tracer
        span = None
        if tracer is not None and tracer.enabled:
            # Server-side span: parents under the caller's rpc.call span
            # (inline on the fail-free path, via spawn inheritance on the
            # deadline path), so the trace shows queueing vs service time.
            span = tracer.start_span("daemon.query_descriptor",
                                     machine=self.machine.machine_id,
                                     handler=args["handler_id"])
        try:
            yield self.env.timeout(1.0 * params.US)  # table lookup
            self._fence_check(args["handler_id"], args.get("generation"))
            entry = self.lookup(args["handler_id"], args["auth_key"])
            if entry is None:
                raise RpcError("bad fork meta (handler %r)"
                               % (args["handler_id"],))
            descriptor, _ = entry
            self._record_serve(args["handler_id"], "descriptor")
            # Reply carries address+size+keys; the descriptor body itself
            # goes over one-sided RDMA, not in this reply (zero-copy fetch,
            # §4.1).
            return {"descriptor": descriptor,
                    "nbytes": descriptor.nbytes}, 256
        finally:
            if span is not None:
                span.end()

    def _handle_fallback(self, args):
        """Serve one page through the fallback daemon (§4.3).

        Reads the shadow container's physical page for the faulting VA,
        loading it from swap/secondary storage if the parent reclaimed it.
        """
        tracer = self.env.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.start_span("daemon.fallback_page",
                                     machine=self.machine.machine_id,
                                     vpn=args["vpn"])
        try:
            self._fence_check(args["handler_id"], args.get("generation"))
            entry = self.lookup(args["handler_id"], args["auth_key"])
            if entry is None:
                raise RpcError("bad fork meta in fallback")
            descriptor, shadow_task = entry
            vpn = args["vpn"]
            yield self.env.timeout(params.FALLBACK_RPC_PAGE_LATENCY)
            self._record_serve(args["handler_id"], "page")
            pte = shadow_task.address_space.page_table.entry(vpn)
            if pte is not None and pte.present:
                if span is not None:
                    span.set(served_from="shadow")
                return pte.frame.content, params.PAGE_SIZE
            if pte is not None and pte.swap_slot is not None:
                yield self.env.timeout(params.FALLBACK_STORAGE_PAGE_LATENCY)
                if span is not None:
                    span.set(served_from="swap")
                return (shadow_task.kernel.swap.get(pte.swap_slot),
                        params.PAGE_SIZE)
            if pte is not None and pte.remote:
                # Multi-hop shadow: the frame lives on an elder machine; the
                # child should retry against that elder directly.
                raise RpcError("page %d not owned by this hop" % vpn)
            # Never-loaded page (e.g. a file page the parent never touched):
            # load it from secondary storage.
            yield self.env.timeout(params.FALLBACK_STORAGE_PAGE_LATENCY)
            if span is not None:
                span.set(served_from="storage")
            return ("m%d/storage/v%d" % (self.machine.machine_id, vpn),
                    params.PAGE_SIZE)
        finally:
            if span is not None:
                span.end()

    def _handle_register(self, args):
        """Record a remote child (active control model bookkeeping)."""
        yield self.env.timeout(1.0 * params.US)
        entry = self.lookup(args["handler_id"], args["auth_key"])
        if entry is None:
            raise RpcError("bad fork meta in register_child")
        self._children.setdefault(args["handler_id"], []).append(
            (args["machine_id"], args["pid"]))
        return True, 32

    def _handle_renew(self, args):
        """Child-side lease renewal: extend a live descriptor's lease.

        Rejects (RpcError) when the descriptor is gone — retracted,
        already expired, or wiped by a crash — so the child knows its
        handle is dead rather than merely slow.
        """
        yield self.env.timeout(1.0 * params.US)
        self._fence_check(args["handler_id"], args.get("generation"))
        entry = self.lookup(args["handler_id"], args["auth_key"])
        if entry is None:
            raise RpcError("lease renewal rejected: descriptor %r is gone"
                           % (args["handler_id"],))
        expiry = self.touch_lease(args["handler_id"])
        self.counters.incr("leases_renewed")
        return expiry, 32

    def _handle_adopt(self, args):
        """Lineage election confirmation: re-stamp one of this daemon's
        descriptors at the freshly elected generation.

        Only ever moves the stamp *forward* — adopting backwards would
        let a slow election resurrect a fenced generation.  Rejects
        (RpcError) when the handler is gone or unstamped so the election
        driver drops the member instead of trusting it.
        """
        yield self.env.timeout(1.0 * params.US)
        handler_id = args["handler_id"]
        info = self._lineage.get(handler_id)
        entry = self._table.get(handler_id)
        if info is None or entry is None:
            raise RpcError("adopt_generation: handler %r is not a live "
                           "member of a lineage here" % (handler_id,))
        if args["generation"] < info[1]:
            raise RpcError("adopt_generation: refusing to lower handler %r "
                           "from generation %d to %d"
                           % (handler_id, info[1], args["generation"]))
        info[1] = args["generation"]
        entry[0].generation = args["generation"]
        self.counters.incr("generations_adopted")
        return True, 32

    def _handle_fence(self, args):
        """Fence delivery: learn that ``args['name']`` re-elected past
        ``args['generation']`` and stop serving anything older."""
        yield self.env.timeout(1.0 * params.US)
        floor = self.apply_fence(args["name"], args["generation"])
        return floor, 32
