"""Read-on-access remote paging: MITOSIS's extended VM data path (§4.3).

On a remote-bit page fault the pager:

1. checks the machine-local **shared page cache** — children of the same
   parent on one machine reuse already-fetched pages copy-on-write,
   saving both network transfers and memory (the MITOSIS-shared variant);
2. otherwise issues a **one-sided RDMA READ** through a cached DC queue
   pair, presenting the DCT key of the VMA's DC target on the owning
   elder machine;
3. if the RNIC rejects the request (target destroyed — the parent
   reclaimed pages in that VMA), **passively detects** the revocation and
   falls back to an RPC served by the owner's fallback daemon.

With batching enabled (``batch_pages`` > 1, the paper's doorbell
optimization from §4.1) demand faults additionally *fault around*: the
pager sizes a contiguous run of eligible remote PTEs and pulls the whole
range with one doorbelled READ — one request packet plus per-page
payloads — installing every page of the run in bulk.  Prefetch windows
coalesce into the same range path.  Batching is purely a wire-level
optimization: sharing, coalescing, hedging, breakers, and every fallback
compose with ranges, and any wire-level failure degrades the range to
the exact page-at-a-time path the unbatched design takes.
"""

import os

from .. import params
from ..faults.errors import DeadlineExceeded, ParentUnreachable
from ..lineage.errors import StaleGeneration
from ..metrics import CounterSet
from ..rdma import ConnectionError_, RemoteAccessError
from ..rdma.rpc import RpcError, RpcTimeout
from ..resilience import CircuitBreaker, HedgeTracker
from ..sim import Interrupt


def default_batch_pages():
    """Resolve the batched-paging default: the ``REPRO_PAGER_BATCH``
    environment variable (pages per doorbelled range), else
    :data:`params.PAGER_BATCH_PAGES_DEFAULT` (0 = off, the seed's
    page-at-a-time behavior).  The env var lets CI flip batching on for a
    whole validation run without threading a flag through every rig."""
    value = os.environ.get("REPRO_PAGER_BATCH")
    if value is None:
        return params.PAGER_BATCH_PAGES_DEFAULT
    return max(0, int(value))


class PagerResilience:  # reprolint: owner=machine
    """Per-pager gray-failure defenses: fallback breakers + read hedging."""

    def __init__(self, breakers=True, hedging=True):
        #: owner machine_id -> CircuitBreaker guarding the RPC fallback
        #: path to that peer (None when breakers are disabled).
        self.breakers = {} if breakers else None
        #: Latency window driving the hedge delay (None disables hedging).
        self.hedge = HedgeTracker() if hedging else None

    def breaker_for(self, machine_id):
        """The (lazily created) breaker for one owner machine, or None."""
        if self.breakers is None:
            return None
        breaker = self.breakers.get(machine_id)
        if breaker is None:
            breaker = CircuitBreaker("pager-fallback-m%d" % machine_id)
            self.breakers[machine_id] = breaker
        return breaker


class SharedPageCache:  # reprolint: owner=machine
    """Per-machine cache of fetched remote pages, keyed by (descriptor, vpn)."""

    def __init__(self):
        self._frames = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, descriptor_uid, vpn):
        """The cached live frame for (descriptor, vpn), or None; counts hit/miss."""
        frame = self._frames.get((descriptor_uid, vpn))
        if frame is not None and not frame.live:
            del self._frames[(descriptor_uid, vpn)]
            frame = None
        if frame is None:
            self.misses += 1
        else:
            self.hits += 1
        return frame

    def peek(self, descriptor_uid, vpn):
        """Like :meth:`lookup` but without hit/miss accounting.

        The batched pager uses it to size a range: probing candidate
        pages must not skew the cache statistics of pages never fetched.
        """
        key = (descriptor_uid, vpn)
        frame = self._frames.get(key)
        if frame is not None and not frame.live:
            del self._frames[key]
            return None
        return frame

    def insert(self, descriptor_uid, vpn, frame):
        """Cache a fetched frame under (descriptor, vpn)."""
        self._frames[(descriptor_uid, vpn)] = frame

    def __len__(self):
        return len(self._frames)


class RemotePager:  # reprolint: owner=machine
    """Installed as ``kernel.remote_pager`` on every MITOSIS machine."""

    def __init__(self, env, machine, net_daemon, rpc, deployment,
                 enable_sharing=True, prefetch_depth=0, batch_pages=None):
        self.env = env
        self.machine = machine
        self.net_daemon = net_daemon
        self.rpc = rpc
        #: The cluster deployment — used to resolve the owning shadow's
        #: frame content once the simulated wire transfer has completed.
        self.deployment = deployment
        self.enable_sharing = enable_sharing
        #: EXTENSION (beyond the paper, in the spirit of Leap [49]):
        #: on each demand fault, asynchronously pull up to this many
        #: subsequent pages of the same VMA, pipelining the RDMA latency
        #: behind execution.  0 disables (the paper's behaviour).
        self.prefetch_depth = prefetch_depth
        #: Doorbell batching (§4.1): maximum pages per contiguous range
        #: fetch.  <=1 disables — page-at-a-time, bit-identical to the
        #: pre-batching event sequence.  None picks up REPRO_PAGER_BATCH.
        self.batch_pages = (default_batch_pages()
                            if batch_pages is None else batch_pages)
        self.cache = SharedPageCache()
        self.counters = CounterSet()
        #: Per-call RPC deadline/retries for fallback calls; None (the
        #: default) keeps the fail-free fast path.  Armed alongside
        #: :meth:`Mitosis.connect_faults`.
        self._rpc_deadline = None
        self._rpc_retries = None
        #: None until :meth:`enable_resilience`: per-peer circuit breakers
        #: on the fallback path + hedged one-sided reads.
        self.resilience = None
        #: None until the cluster arms ``repro.lineage``: the runtime whose
        #: :meth:`~repro.lineage.runtime.LineageRuntime.failover` rescues
        #: orphaned faults by re-routing the owner slot to a replica.
        self.lineage = None
        #: None until the cluster arms ``repro.connplane``: dead peers the
        #: pager observes get their pooled QPs invalidated early.
        self.connplane = None
        #: (descriptor uid, vpn) -> Event: fault coalescing.  Concurrent
        #: children of one parent fault the same pages nearly in lockstep;
        #: the kernel serializes same-page faults so only one RDMA read
        #: flies and the rest reuse the arriving frame.
        self._inflight = {}

    def enable_resilience(self, breakers=True, hedging=True):
        """Arm the gray-failure defenses on this pager; returns them."""
        if self.resilience is None:
            self.resilience = PagerResilience(breakers=breakers,
                                              hedging=hedging)
        return self.resilience

    # --- Fault entry points ------------------------------------------------------
    def fetch(self, task, vma, vpn, pte, _demand=True):
        """Service a remote-bit fault.  Generator returning the content.

        Installs the PTE itself (so cache hits can share frames COW).

        With the lineage layer armed, an unreachable / fenced / vanished
        owner is one more recoverable condition: the fault *fails over*
        to a surviving lineage member (re-routing the owner slot for all
        future faults too) and retries, bounded by
        :data:`~repro.params.LINEAGE_RESCUE_MAX_FAILOVERS`.  Without a
        lineage the error propagates exactly as before.
        """
        tracer = self.env.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.start_span(
                "page.fault" if _demand else "page.fetch",
                vpn=vpn, machine=self.machine.machine_id)
        try:
            rescues = 0
            while True:
                try:
                    return (yield from self._fetch_body(
                        task, vma, vpn, pte, _demand, span))
                except (ParentUnreachable, StaleGeneration, RpcError):
                    if (self.lineage is None
                            or rescues >= params.LINEAGE_RESCUE_MAX_FAILOVERS
                            or not self.lineage.failover(task, pte, vpn)):
                        raise
                    rescues += 1
                    self.counters.incr("orphan_rescues")
                    if span is not None:
                        span.event("orphan_rescue", attempt=rescues)
                    # The re-routed retry is not a fresh demand fault:
                    # don't spawn a second prefetch window.
                    _demand = False
        finally:
            if span is not None:
                span.end()

    def _fetch_body(self, task, vma, vpn, pte, _demand, span):
        """One fetch attempt against the current owner slot.  Generator."""
        owner_machine, owner_desc = self._owner_of(task, pte)
        if _demand and self.prefetch_depth > 0:
            self.env.process(self._prefetch_window(task, vma, vpn))
        kernel = task.kernel
        key = (owner_desc.uid, vpn)

        if self.enable_sharing:
            while True:
                frame = self.cache.lookup(owner_desc.uid, vpn)
                if frame is not None:
                    # Local reuse: COW-map the already-fetched frame
                    # (§4.3).  Take the reference before yielding so a
                    # concurrent child teardown cannot free the frame
                    # under us.
                    kernel._charge_cgroup(task)
                    shared = kernel.frames.ref(frame)
                    yield self.env.timeout(
                        params.SHARED_PAGE_COPY_LATENCY)
                    if pte.present or task.state == "dead":
                        # Lost a race with a concurrent install of the
                        # same page (overlapping prefetch windows) or
                        # with task exit: drop the extra reference
                        # instead of (re-)mapping the PTE.
                        kernel.frames.unref(shared)
                    else:
                        pte.map_frame(shared, writable=vma.writable,
                                      cow=True)
                    self.counters.incr("shared_hits")
                    if span is not None:
                        span.set(served_from="shared_cache")
                    return frame.content
                in_flight = self._inflight.get(key)
                if in_flight is None:
                    break
                self.counters.incr("coalesced_faults")
                if span is not None:
                    span.event("coalesced_wait")
                yield in_flight

        if self.batch_pages > 1:
            # Fault-around (§4.1 doorbell batching): size a contiguous
            # run of eligible remote pages and pull them in one
            # doorbelled READ.  Congestion-aware backpressure: when the
            # owner's NIC is marked hot by the shared-fabric model, a
            # doorbelled range only deepens the incast — serve just the
            # faulting page and let the window retry once it cools.
            if self._fabric_hot(owner_machine):
                self.counters.incr("fabric_deferred_ranges")
            else:
                n = self._range_len(task, vma, vpn, pte, owner_desc)
                if n > 1:
                    return (yield from self.fetch_range(
                        task, vma, vpn, n, _demand=_demand))

        fetch_done = None
        if self.enable_sharing:
            fetch_done = self.env.event()
            self._inflight[key] = fetch_done
        try:
            content = yield from self._fetch_remote(
                task, vma, vpn, pte, owner_machine, owner_desc)
        finally:
            if fetch_done is not None:
                self._inflight.pop(key, None)
                fetch_done.succeed()
        return content

    def _fetch_remote(self, task, vma, vpn, pte, owner_machine, owner_desc):
        """The actual wire fetch: one-sided RDMA, else the RPC fallback."""
        kernel = task.kernel

        vd = owner_desc.find_vma(vpn)
        if vd is None or vd.dct_target_id is None:
            content = yield from self.fetch_fallback(task, vma, vpn, pte)
            self._install(task, kernel, pte, vma, content, owner_desc.uid, vpn)
            return content

        rcqp = self._rc_override(task, owner_machine)
        try:
            if rcqp is not None:
                # Ablation mode: RC transport without connection-based
                # access control (the "base" design of Fig. 15 b).
                yield from rcqp.read(params.PAGE_SIZE)
            elif (self.resilience is not None
                    and self.resilience.hedge is not None):
                winner = yield from self._hedged_read(
                    owner_machine, vd, owner_desc=owner_desc, vpn=vpn)
                if winner is not None:
                    # A rack-local replica leg won the hedge: resolve
                    # the page against the host that actually served it.
                    owner_machine, owner_desc = winner
            else:
                dcqp = self.net_daemon.dcqp()
                yield from dcqp.read(owner_machine, vd.dct_target_id,
                                     vd.dct_key, params.PAGE_SIZE)
        except RemoteAccessError:
            # Passive detection: the parent revoked this VMA's target.
            self.counters.incr("revocation_fallbacks")
            tracer = self.env.tracer
            if tracer is not None and tracer.enabled:
                tracer.annotate("revocation_fallback", vpn=vpn)
            content = yield from self.fetch_fallback(task, vma, vpn, pte)
            self._install(task, kernel, pte, vma, content, owner_desc.uid, vpn)
            return content
        except ConnectionError_:
            # Unlike a NAK, a transport timeout means the owner may be
            # *dead*, not revoking — still try the fallback daemon (the
            # owner may come back, or an elder may answer), but count it
            # separately so recovery metrics can tell the two apart.
            self.counters.incr("dead_parent_fallbacks")
            if self.connplane is not None:
                # A transport timeout is the plane's earliest dead-peer
                # signal: junk every pooled QP toward the owner now rather
                # than letting later acquires rediscover it one by one.
                self.connplane.on_peer_dead(self.machine,
                                            owner_machine.machine_id)
            tracer = self.env.tracer
            if tracer is not None and tracer.enabled:
                tracer.annotate("dead_parent_fallback", vpn=vpn)
            content = yield from self.fetch_fallback(task, vma, vpn, pte)
            self._install(task, kernel, pte, vma, content, owner_desc.uid, vpn)
            return content

        content = self._resolve_content(owner_machine, owner_desc, vpn)
        if content is None:
            # The frame vanished mid-transfer (reclaim raced the read):
            # treat exactly like a NAK and take the fallback path.
            self.counters.incr("race_fallbacks")
            tracer = self.env.tracer
            if tracer is not None and tracer.enabled:
                tracer.annotate("race_fallback", vpn=vpn)
            content = yield from self.fetch_fallback(task, vma, vpn, pte)
        else:
            self.counters.incr("rdma_reads")
        self._install(task, kernel, pte, vma, content, owner_desc.uid, vpn)
        return content

    # reprolint: hot-path
    def fetch_range(self, task, vma, vpn, n, _demand=True):
        """Service ``n`` contiguous remote pages with ONE doorbelled READ.

        Generator returning the content of the first page (the faulting
        one for demand entry).  The whole run is marked in-flight so
        concurrent faulters of *any* page in it coalesce onto this fetch,
        every page is installed (and its remote bit cleared) in bulk, and
        counters are charged per page.  The caller must have screened the
        run with :meth:`_range_len` in the same step (no yields between).
        """
        if n <= 1:
            pte = task.address_space.page_table.entry(vpn)
            return (yield from self.fetch(task, vma, vpn, pte,
                                          _demand=False))
        tracer = self.env.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.start_span("page.range", vpn=vpn, n=n,
                                     machine=self.machine.machine_id)
        try:
            table = task.address_space.page_table
            first_pte = table.entry(vpn)
            owner_machine, owner_desc = self._owner_of(task, first_pte)
            ptes = [table.entry(vpn + i) for i in range(n)]
            keys = [(owner_desc.uid, vpn + i) for i in range(n)]
            fetch_done = None
            if self.enable_sharing:
                fetch_done = self.env.event()
                for key in keys:
                    self._inflight[key] = fetch_done
            try:
                contents = yield from self._range_remote(
                    task, vma, vpn, n, ptes, owner_machine, owner_desc)
            finally:
                if fetch_done is not None:
                    for key in keys:
                        self._inflight.pop(key, None)
                    fetch_done.succeed()
            if _demand:
                self.counters.incr("fault_around_pages", n - 1)
            return contents[0]
        finally:
            if span is not None:
                span.end()

    def _range_len(self, task, vma, vpn, pte, owner_desc, limit=None):
        """Size of the contiguous batched run starting at ``vpn`` (>= 1).

        A run extends while the next PTE is an eligible remote page with a
        direct parent PA from the *same* owner hop, nobody is already
        fetching it, and the shared cache doesn't hold it; it is capped by
        ``batch_pages``, the VMA end, the caller's ``limit``, and — so
        fault-around can never OOM a task the demand fault alone would
        not have — the cgroup's remaining page headroom.
        """
        run_cap = min(self.batch_pages, vma.end_vpn - vpn)
        if limit is not None:
            run_cap = min(run_cap, limit)
        mem_limit = getattr(task.cgroup, "memory_limit", None)
        if mem_limit is not None:
            headroom = (mem_limit - task.address_space.resident_bytes
                        ) // params.PAGE_SIZE
            run_cap = min(run_cap, max(1, int(headroom)))
        if run_cap <= 1:
            return 1
        table = task.address_space.page_table
        uid = owner_desc.uid
        n = 1
        while n < run_cap:
            nxt = table.entry(vpn + n)
            if (nxt is None or nxt.present or not nxt.remote
                    or nxt.remote_pfn is None
                    or nxt.owner_index != pte.owner_index
                    or (uid, vpn + n) in self._inflight
                    or (self.enable_sharing
                        and self.cache.peek(uid, vpn + n) is not None)):
                break
            n += 1
        return n

    # reprolint: hot-path
    def _range_remote(self, task, vma, vpn, n, ptes, owner_machine,
                      owner_desc):
        """The wire fetch for a range: one doorbelled QP op, bulk install.

        Any wire-level failure (batch NAK, transport timeout, no direct
        target) degrades the WHOLE range to the page-at-a-time path,
        which re-detects the precise per-page condition and takes exactly
        the fallback the unbatched design would.
        """
        kernel = task.kernel
        vd = owner_desc.find_vma(vpn)
        if vd is None or vd.dct_target_id is None:
            return (yield from self._range_per_page(
                task, vma, vpn, ptes, owner_machine, owner_desc))
        rcqp = self._rc_override(task, owner_machine)
        try:
            if rcqp is not None:
                yield from rcqp.read_batch(n, params.PAGE_SIZE)
            elif (self.resilience is not None
                    and self.resilience.hedge is not None):
                yield from self._hedged_read(owner_machine, vd, npages=n)
            else:
                dcqp = self.net_daemon.dcqp()
                yield from dcqp.read_batch(owner_machine, vd.dct_target_id,
                                           vd.dct_key, n, params.PAGE_SIZE)
        except (RemoteAccessError, ConnectionError_):
            # One NAK (or transport timeout) answers for the whole batch —
            # same target covers every page behind it.  Degrade to the
            # unbatched path; it re-raises per page and counts the precise
            # revocation/dead-parent fallback reason, as the seed would.
            self.counters.incr("batch_fallbacks")
            return (yield from self._range_per_page(
                task, vma, vpn, ptes, owner_machine, owner_desc))
        self.counters.incr("batched_reads")
        self.counters.incr("batched_read_pages", n)
        contents = []
        for i, pte in enumerate(ptes):
            content = self._resolve_content(owner_machine, owner_desc,
                                            vpn + i)
            if content is None:
                # This one frame vanished mid-transfer: partial failure,
                # repair just this page over RPC.
                self.counters.incr("race_fallbacks")
                content = yield from self.fetch_fallback(task, vma, vpn + i,
                                                         pte)
            else:
                self.counters.incr("rdma_reads")
            self._install(task, kernel, pte, vma, content, owner_desc.uid,
                          vpn + i)
            if pte.present:
                pte.clear_remote()
            contents.append(content)
        return contents

    def _range_per_page(self, task, vma, vpn, ptes, owner_machine,
                        owner_desc):
        """Page-at-a-time completion of a range whose batched read failed:
        each page pays the exact unbatched wire path with its own precise
        fallback handling.  Generator returning the contents list."""
        contents = []
        for i, pte in enumerate(ptes):
            if pte.present:
                contents.append(pte.frame.content)
                continue
            content = yield from self._fetch_remote(
                task, vma, vpn + i, pte, owner_machine, owner_desc)
            if pte.present:
                pte.clear_remote()
            contents.append(content)
        return contents

    def _hedged_read(self, owner_machine, vd, npages=1, owner_desc=None,
                     vpn=None):
        """One-sided READ with request cloning.  Generator.

        Start the primary DCT read; once it has straggled past the
        tracker's tail-derived delay, clone the request onto a second DC
        path.  First completion wins, the straggler is cancelled, and
        exactly one caller resumes with the result — so the single
        ``_install`` downstream can never double-commit the page.

        With ``npages`` > 1 each leg is one doorbelled range READ; the
        tracker records per-page latency and the hedge delay scales by
        the batch size, so batched and unbatched reads share one
        straggler model.

        Topology-aware hedging: when the shared-fabric layer and seed
        lineage are both armed and the primary owner sits across the
        spine, a single-page hedge leg prefers a *rack-local* replica
        over cloning onto the same congested cross-rack path.  Returns
        the ``(machine, descriptor)`` the winning alternate served from
        — the caller must resolve content against it — or None when the
        primary owner answered (including every pre-fabric behaviour).
        """
        res = self.resilience
        started = self.env.now
        alternate = None
        if npages == 1 and owner_desc is not None and vpn is not None:
            alternate = self._rack_local_alternate(owner_machine,
                                                   owner_desc, vpn)

        def _leg(machine, leg_vd):
            dcqp = self.net_daemon.dcqp()
            try:
                if npages > 1:
                    result = yield from dcqp.read_batch(
                        machine, leg_vd.dct_target_id, leg_vd.dct_key,
                        npages, params.PAGE_SIZE)
                else:
                    result = yield from dcqp.read(
                        machine, leg_vd.dct_target_id, leg_vd.dct_key,
                        params.PAGE_SIZE)
            except Interrupt:
                return None  # cancelled straggler
            return result

        primary = self.env.process(_leg(owner_machine, vd))
        timer = self.env.timeout(res.hedge.delay() * npages)
        yield self.env.any_of([primary, timer])
        if primary.triggered:
            res.hedge.record((self.env.now - started) / npages)
            return None
        self.counters.incr("hedges_issued")
        tracer = self.env.tracer
        if tracer is not None and tracer.enabled:
            tracer.annotate("hedge_issued",
                            peer=owner_machine.machine_id, npages=npages)
        if alternate is not None:
            alt_machine, alt_desc, alt_vd = alternate
            self.counters.incr("hedges_rack_local")
            if tracer is not None and tracer.enabled:
                tracer.annotate("hedge_rack_local",
                                peer=alt_machine.machine_id)
            hedge = self.env.process(_leg(alt_machine, alt_vd))
        else:
            hedge = self.env.process(_leg(owner_machine, vd))
        try:
            yield self.env.any_of([primary, hedge])
        except (RemoteAccessError, ConnectionError_):
            # A NAK or transport failure on either leg is authoritative:
            # both legs read the same lineage page, and the caller's
            # fallback (or the lineage rescue loop) re-detects the
            # precise per-owner condition.
            self._cancel_leg(primary)
            self._cancel_leg(hedge)
            raise
        if primary.triggered:
            self.counters.incr("hedges_wasted")  # the clone was needless
            if tracer is not None and tracer.enabled:
                tracer.annotate("hedge_wasted")
            self._cancel_leg(hedge)
            winner = None
        else:
            self.counters.incr("hedges_won")
            if tracer is not None and tracer.enabled:
                tracer.annotate("hedge_won")
            self._cancel_leg(primary)
            winner = ((alt_machine, alt_desc) if alternate is not None
                      else None)
        res.hedge.record((self.env.now - started) / npages)
        return winner

    def _rack_local_alternate(self, owner_machine, owner_desc, vpn):
        """A rack-local replica leg for topology-aware hedging, or None.

        Only meaningful when the shared fabric is armed (congestion is
        what makes locality matter) and the owner's lineage has a live
        member in this pager's rack whose published descriptor covers
        the page; a rack-local *primary* needs no alternate.
        """
        if self.lineage is None or self.deployment.fabric.net is None:
            return None
        if owner_machine.rack == self.machine.rack:
            return None
        name = getattr(owner_desc, "lineage", None)
        member = self.lineage.rack_local_member(name, self.machine.rack,
                                                vpn)
        if member is None:
            return None
        alt_machine, alt_desc = member
        if alt_machine.machine_id == owner_machine.machine_id:
            return None
        alt_vd = alt_desc.find_vma(vpn)
        if alt_vd is None or alt_vd.dct_target_id is None:
            return None
        return alt_machine, alt_desc, alt_vd

    def _fabric_hot(self, owner_machine):
        """True when congestion-aware backpressure is armed AND the
        owner's access links sit past the hot threshold.  Deferral is a
        *resilience* behaviour (it trades range/prefetch throughput for
        incast headroom), so it needs both the shared-fabric layer and
        ``enable_resilience()`` — one ``is None`` test each with the
        layers off, the repo-wide zero-cost gating contract."""
        if self.resilience is None:
            return False
        net = self.deployment.fabric.net
        if net is None:
            return False
        return net.nic_hot(owner_machine.machine_id)

    @staticmethod
    def _cancel_leg(proc):
        """Cancel a losing hedge leg: interrupt if alive, defuse either way."""
        if proc.is_alive:
            proc.interrupt("hedge loser cancelled")
        proc.defuse()

    def _prefetch_window(self, task, vma, vpn):
        """Asynchronously fetch the next pages of the VMA (extension)."""
        tracer = self.env.tracer
        span = None
        if tracer is not None and tracer.enabled:
            # Prefetch runs asynchronously and outlives the demand fault
            # that spawned it, so it anchors its own root rather than
            # escaping the (already closed) fault span's interval.
            span = tracer.start_span("page.prefetch_window", root=True,
                                     vpn=vpn,
                                     machine=self.machine.machine_id)
        try:
            yield from self._prefetch_body(task, vma, vpn)
        finally:
            if span is not None:
                span.end()

    def _prefetch_body(self, task, vma, vpn):
        if self.batch_pages > 1:
            yield from self._prefetch_window_ranges(task, vma, vpn)
            return
        table = task.address_space.page_table
        for next_vpn in range(vpn + 1,
                              min(vpn + 1 + self.prefetch_depth,
                                  vma.end_vpn)):
            pte = table.entry(next_vpn)
            if (pte is None or pte.present or not pte.remote
                    or pte.remote_pfn is None):
                continue
            if self.deployment.fabric.net is not None:
                owner_machine, _desc = self._owner_of(task, pte)
                if self._fabric_hot(owner_machine):
                    # Shed the rest of the window: prefetch is the first
                    # load an incast-congested seed NIC can do without.
                    self.counters.incr("fabric_deferred_prefetch")
                    return
            try:
                yield from self.fetch(task, vma, next_vpn, pte,
                                      _demand=False)
            except Exception:
                return  # prefetch is best-effort; demand faults recover
            if pte.present:
                pte.clear_remote()
                self.counters.incr("prefetched_pages")

    # reprolint: hot-path
    def _prefetch_window_ranges(self, task, vma, vpn):
        """Range-coalesced prefetch window (batched mode).

        Instead of one full RDMA round trip per window page, the window is
        carved into contiguous eligible runs and each run rides one
        doorbelled range READ.  Pages another fetch already has in flight
        are simply skipped — prefetch is best-effort, so waiting on a
        coalesced fault would only serialize the window behind it.
        """
        table = task.address_space.page_table
        end = min(vpn + 1 + self.prefetch_depth, vma.end_vpn)
        next_vpn = vpn + 1
        while next_vpn < end:
            pte = table.entry(next_vpn)
            if (pte is None or pte.present or not pte.remote
                    or pte.remote_pfn is None):
                next_vpn += 1
                continue
            owner_machine, owner_desc = self._owner_of(task, pte)
            if (owner_desc.uid, next_vpn) in self._inflight:
                next_vpn += 1
                continue
            if self._fabric_hot(owner_machine):
                self.counters.incr("fabric_deferred_prefetch")
                return
            run = self._range_len(task, vma, next_vpn, pte, owner_desc,
                                  limit=end - next_vpn)
            try:
                if run > 1:
                    yield from self.fetch_range(task, vma, next_vpn, run,
                                                _demand=False)
                else:
                    yield from self.fetch(task, vma, next_vpn, pte,
                                          _demand=False)
            except Exception:
                return  # prefetch is best-effort; demand faults recover
            for i in range(run):
                fetched = table.entry(next_vpn + i)
                if fetched is not None and fetched.present:
                    if fetched.remote:
                        fetched.clear_remote()
                    self.counters.incr("prefetched_pages")
            next_vpn += run

    def fetch_fallback(self, task, vma, vpn, pte):
        """RPC to the owner's fallback daemon (§4.3).  Generator.

        An :class:`RpcError` from the daemon (bad meta, multi-hop "not
        owned by this hop") propagates unchanged — that protocol predates
        fault injection.  A timeout or dead connection becomes
        :class:`ParentUnreachable` so the invoker layer can recover.

        With resilience armed the call is additionally guarded by the
        owner's circuit breaker (an open circuit fails fast instead of
        hammering a gray peer), its deadline is clamped to the
        invocation's remaining budget, and every resend is charged to the
        invocation's shared retry budget.
        """
        owner_machine, owner_desc = self._owner_of(task, pte)
        tracer = self.env.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.start_span("page.fallback", vpn=vpn,
                                     machine=self.machine.machine_id,
                                     peer=owner_machine.machine_id)
        try:
            breaker = (self.resilience.breaker_for(owner_machine.machine_id)
                       if self.resilience is not None else None)
            if breaker is not None and not breaker.allow(self.env.now):
                self.counters.incr("breaker_fast_fails")
                if span is not None:
                    span.event("breaker_fast_fail")
                raise ParentUnreachable(
                    "fallback page %d: circuit to m%d is open"
                    % (vpn, owner_machine.machine_id))
            deadline = self._rpc_deadline
            budget = None
            ctx = getattr(task, "resilience_ctx", None)
            if ctx is not None:
                budget = ctx.retry_budget
                remaining = ctx.remaining(self.env.now)
                if remaining <= 0.0:
                    raise DeadlineExceeded(
                        "page %d fallback: invocation deadline passed" % vpn)
                if remaining != float("inf"):
                    deadline = min(params.RPC_DEFAULT_DEADLINE
                                   if deadline is None else deadline,
                                   remaining)
            self.counters.incr("fallback_rpcs")
            args = {"handler_id": owner_desc.handler_id,
                    "auth_key": owner_desc.auth_key,
                    "vpn": vpn}
            if owner_desc.generation is not None:
                # Fencing token (repro.lineage): a superseded owner rejects
                # the page RPC with StaleGeneration instead of serving it.
                args["generation"] = owner_desc.generation
            try:
                content = yield from self.rpc.call(
                    self.machine, owner_machine, "mitosis.fallback_page",
                    args,
                    request_bytes=64,
                    deadline=deadline, retries=self._rpc_retries,
                    budget=budget)
            except (RpcTimeout, ConnectionError_) as exc:
                if breaker is not None:
                    breaker.record_failure(self.env.now)
                raise ParentUnreachable(
                    "fallback page %d from m%d failed: %s"
                    % (vpn, owner_machine.machine_id, exc))
            except RpcError:
                # An authoritative rejection came from a *live* daemon: the
                # peer is healthy, so the breaker must not open on it.
                if breaker is not None:
                    breaker.record_success(self.env.now)
                raise
            if breaker is not None:
                breaker.record_success(self.env.now)
            return content
        finally:
            if span is not None:
                span.end()

    # --- Internals -----------------------------------------------------------------
    def _owner_of(self, task, pte):
        """Map the PTE's 4-bit owner index to (machine, descriptor) (§4.4)."""
        index = pte.owner_index
        if not task.predecessors:
            raise LookupError("task %r has no fork lineage" % (task,))
        if index >= len(task.predecessors):
            raise LookupError(
                "owner index %d beyond lineage depth %d"
                % (index, len(task.predecessors)))
        return task.predecessors[index]

    def _rc_override(self, task, owner_machine):
        rcqps = getattr(task, "_mitosis_rcqps", None)
        if rcqps is None:
            return None
        return rcqps.get(owner_machine.machine_id)

    def _resolve_content(self, owner_machine, owner_desc, vpn):
        """What the RDMA read actually returned.

        The wire cost was already simulated; here we look up the owning
        shadow's live frame.  Returns None when the frame is gone (the
        caller treats that as a failed read).
        """
        service = self.deployment.descriptor_service(owner_machine)
        entry = service.lookup(owner_desc.handler_id, owner_desc.auth_key)
        if entry is None:
            return None
        _, shadow_task = entry
        shadow_pte = shadow_task.address_space.page_table.entry(vpn)
        if shadow_pte is None or not shadow_pte.present:
            return None
        if not shadow_pte.frame.live:
            return None
        return shadow_pte.frame.content

    def _install(self, task, kernel, pte, vma, content, descriptor_uid, vpn):
        # A fetch that lost a race with task exit (an async prefetch, or
        # a demand fetch stalled behind a congested fabric) must not map
        # fresh frames into the dead page table — teardown already swept
        # it, so anything installed now would leak.
        if pte.present or task.state == "dead":
            return
        kernel._charge_cgroup(task)
        frame = pte.map_frame(kernel.frames.alloc(content=content),
                              writable=vma.writable)
        if self.enable_sharing:
            self.cache.insert(descriptor_uid, vpn, frame)
