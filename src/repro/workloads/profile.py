"""Function profiles and the execution engine.

A profile describes how one invocation behaves on a warmed container:
which fraction of each memory region it touches (in order), how many
pages it writes, how many fresh heap pages it allocates, and how much
pure compute time it burns.  Executing a profile drives the kernel's
fault path page by page — so on-demand restore (CRIU-lazy, DFS, MITOSIS)
automatically pays its per-page costs exactly where the paper says it
does: during *execution*.
"""

from .. import params
from ..kernel import VmaKind


class FunctionProfile:  # reprolint: owner=message
    """The dynamic behaviour of one serverless function."""

    def __init__(self, name, image, compute_us, touch_fractions,
                 write_fraction=0.2, new_heap_pages=0):
        """
        ``touch_fractions`` maps :class:`VmaKind` to the fraction of that
        region's pages the function touches per invocation (0.0-1.0).
        """
        self.name = name
        self.image = image
        self.compute_us = compute_us
        self.touch_fractions = dict(touch_fractions)
        self.write_fraction = write_fraction
        self.new_heap_pages = new_heap_pages
        for kind, fraction in self.touch_fractions.items():
            if not 0.0 <= fraction <= 1.0:
                raise ValueError("bad fraction %r for %s" % (fraction, kind))

    def planned_touches(self, address_space):
        """Deterministic (vpn, write) access plan over a container's VMAs."""
        plan = []
        for vma in address_space.vmas:
            fraction = self.touch_fractions.get(vma.kind, 0.0)
            touched = int(round(vma.num_pages * fraction))
            writable_region = vma.kind in (VmaKind.HEAP, VmaKind.DATA,
                                           VmaKind.STACK)
            written = (int(round(touched * self.write_fraction))
                       if writable_region else 0)
            for i in range(touched):
                plan.append((vma.start_vpn + i, i < written))
        return plan

    def touched_pages(self, address_space):
        """Number of pages one invocation touches in ``address_space``."""
        return len(self.planned_touches(address_space))

    def __repr__(self):
        return "<FunctionProfile %s %.1fms>" % (
            self.name, self.compute_us / params.MS)


class ExecutionResult:  # reprolint: owner=message
    """Measurements from one function execution."""

    __slots__ = ("latency", "pages_touched", "faults_taken", "started_at",
                 "finished_at")

    def __init__(self, latency, pages_touched, faults_taken, started_at,
                 finished_at):
        self.latency = latency
        self.pages_touched = pages_touched
        self.faults_taken = faults_taken
        self.started_at = started_at
        self.finished_at = finished_at


def execute(env, container, profile, extra_touch_vpns=None):
    """Run one invocation of ``profile`` inside ``container``.

    Generator returning an :class:`ExecutionResult`.  ``extra_touch_vpns``
    lets callers model payload reads (data-sharing experiments).
    """
    kernel = container.kernel
    task = container.task
    space = task.address_space
    started_at = env.now

    plan = profile.planned_touches(space)
    if extra_touch_vpns:
        plan.extend((vpn, False) for vpn in extra_touch_vpns)

    faults_before = _fault_count(kernel)
    page_table = space.page_table
    for vpn, write in plan:
        # Fast path: a present, directly writable page costs no simulated
        # time (TLB hit); skip the generator machinery entirely.
        pte = page_table.entry(vpn)
        if (pte is not None and pte.present
                and not (write and (pte.cow or not pte.writable))):
            continue
        yield from kernel.touch(task, vpn, write=write)

    # Fresh allocations (results, scratch buffers): demand-zero locally on
    # the first run; a warm container's allocator then reuses the same
    # scratch region on subsequent invocations.
    if profile.new_heap_pages:
        heap = _heap_vma(space)
        base = getattr(task, "_scratch_base", None)
        if base is None:
            base = heap.end_vpn
            space.grow(heap, profile.new_heap_pages)
            task._scratch_base = base
        for i in range(profile.new_heap_pages):
            yield from kernel.touch(task, base + i, write=True)

    # Pure compute, charged once (touch ordering above carries the
    # restore-path costs; interleaving compute does not change totals).
    yield env.timeout(profile.compute_us)

    finished_at = env.now
    return ExecutionResult(
        latency=finished_at - started_at,
        pages_touched=len(plan),
        faults_taken=_fault_count(kernel) - faults_before,
        started_at=started_at,
        finished_at=finished_at,
    )


def _heap_vma(space):
    for vma in space.vmas:
        if vma.kind == VmaKind.HEAP:
            return vma
    raise ValueError("address space has no heap VMA")


def _fault_count(kernel):
    counts = kernel.counters.as_dict()
    return sum(v for k, v in counts.items() if k.startswith("fault_"))
