"""FunctionBench application suite (Fig. 15 a).

Working-set sizes follow the paper's discussion: chameleon (HTML-template
rendering) touches by far the most pages — 2,303 remote reads — and is the
worst case for MITOSIS-remote (1.2x CRIU-tmpfs); the rest touch little and
stay within 1.01-1.05x.
"""

from .. import params
from ..containers import ContainerImage, MemoryLayout
from ..kernel import VmaKind
from .profile import FunctionProfile


def _image(name, lib_pages, heap_pages, image_mb, cold_ms):
    layout = MemoryLayout(code_pages=80, lib_pages=lib_pages,
                          data_pages=128, heap_pages=heap_pages,
                          stack_pages=16)
    return ContainerImage(name, layout,
                          image_file_bytes=int(image_mb * params.MB),
                          cold_start_latency=cold_ms * params.MS)


def _profile(name, image, compute_ms, target_touches, write_fraction=0.25):
    """Build a profile whose planned touches ~= ``target_touches`` pages."""
    layout = image.layout
    fixed = int(0.8 * layout.code_pages) + int(0.5 * layout.data_pages) + 8
    remaining = max(0, target_touches - fixed)
    lib_touch = min(0.95, (remaining * 0.55) / layout.lib_pages)
    heap_touch = min(0.95, (remaining * 0.45) / layout.heap_pages)
    return FunctionProfile(
        name=name,
        image=image,
        compute_us=compute_ms * params.MS,
        touch_fractions={
            VmaKind.CODE: 0.8,
            VmaKind.SHARED_LIB: lib_touch,
            VmaKind.DATA: 0.5,
            VmaKind.HEAP: heap_touch,
            VmaKind.STACK: 0.5,
        },
        write_fraction=write_fraction,
        new_heap_pages=16,
    )


def chameleon():
    """HTML page rendering: 2,303 pages read from remote (§6.4)."""
    image = _image("chameleon", lib_pages=2200, heap_pages=1800,
                   image_mb=24, cold_ms=1100)
    return _profile("chameleon", image, compute_ms=20, target_touches=2303)


def float_operation():
    """Floating-point math microkernel: tiny working set."""
    image = _image("float_operation", lib_pages=900, heap_pages=500,
                   image_mb=12, cold_ms=800)
    return _profile("float_operation", image, compute_ms=8,
                    target_touches=150)


def linpack():
    """Linear-algebra solve: moderate working set, long compute."""
    image = _image("linpack", lib_pages=1200, heap_pages=900,
                   image_mb=16, cold_ms=900)
    return _profile("linpack", image, compute_ms=60, target_touches=400)


def matmul():
    """Matrix multiply: moderate working set."""
    image = _image("matmul", lib_pages=1200, heap_pages=1200,
                   image_mb=16, cold_ms=900)
    return _profile("matmul", image, compute_ms=45, target_touches=600)


def pyaes():
    """Pure-Python AES: small working set."""
    image = _image("pyaes", lib_pages=800, heap_pages=400,
                   image_mb=11, cold_ms=800)
    return _profile("pyaes", image, compute_ms=25, target_touches=250)


def json_dumps():
    """JSON serialization: small-moderate working set."""
    image = _image("json_dumps", lib_pages=900, heap_pages=600,
                   image_mb=12, cold_ms=800)
    return _profile("json_dumps", image, compute_ms=12, target_touches=350)


def image_processing():
    """Image filter pipeline: large working set and writes."""
    image = _image("image_processing", lib_pages=2000, heap_pages=2400,
                   image_mb=30, cold_ms=1200)
    return _profile("image_processing", image, compute_ms=80,
                    target_touches=1200, write_fraction=0.4)


def suite():
    """All FunctionBench profiles used in Fig. 15 (a)."""
    return [
        chameleon(),
        float_operation(),
        linpack(),
        matmul(),
        pyaes(),
        json_dumps(),
        image_processing(),
    ]
