"""Workloads: function profiles, benchmarks suites, and spike traces."""

from . import functionbench
from .azure import SpikeTrace, func_660323, func_9a3e4e
from .profile import ExecutionResult, FunctionProfile, execute
from .serverlessbench import TC0_WARM_START, tc0_profile, tc1_profile

__all__ = [
    "ExecutionResult",
    "FunctionProfile",
    "SpikeTrace",
    "TC0_WARM_START",
    "execute",
    "func_660323",
    "func_9a3e4e",
    "functionbench",
    "tc0_profile",
    "tc1_profile",
]
