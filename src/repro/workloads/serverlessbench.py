"""ServerlessBench functions TC0 and TC1 (the paper's two test cases).

* **TC0** — Python hello-world: tiny working set, ~1 ms compute, 10.2 MB
  image.  Its cold start (783 ms) is 1,566x its warm start (§6.2).
* **TC1** — image resize: larger working set, heavier compute, 38 MB image.
"""

from .. import params
from ..containers import hello_world_image, image_resize_image
from ..kernel import VmaKind
from .profile import FunctionProfile


def tc0_profile():
    """TC0: touches a sliver of the runtime, ~1 ms of compute."""
    return FunctionProfile(
        name="TC0",
        image=hello_world_image(),
        compute_us=1.0 * params.MS,
        touch_fractions={
            VmaKind.CODE: 0.6,
            VmaKind.SHARED_LIB: 0.06,
            VmaKind.DATA: 0.3,
            VmaKind.HEAP: 0.1,
            VmaKind.STACK: 0.5,
        },
        write_fraction=0.3,
        new_heap_pages=4,
    )


def tc1_profile():
    """TC1: image resize — reads many more pages through the restore path."""
    return FunctionProfile(
        name="TC1",
        image=image_resize_image(),
        compute_us=60.0 * params.MS,
        touch_fractions={
            VmaKind.CODE: 0.8,
            VmaKind.SHARED_LIB: 0.35,
            VmaKind.DATA: 0.6,
            VmaKind.HEAP: 0.5,
            VmaKind.STACK: 0.6,
        },
        write_fraction=0.4,
        new_heap_pages=256,
    )


#: TC0 warm-start time implied by the paper's 1,566x cold/warm ratio.
TC0_WARM_START = params.DOCKER_COLD_START / 1566.0
