"""Trace I/O: persist spike traces and ingest the Azure Functions dataset.

The paper drives its §6.2 evaluation from the Azure Functions 2019
trace [57].  That dataset is not redistributable here, but users who have
it can load any function's invocation series directly
(:func:`load_azure_csv`) and replay it through
:func:`repro.experiments.spikes.replay_spike`; everyone else uses the
regenerated traces in :mod:`repro.workloads.azure`.
"""

import csv

from .. import params
from .azure import SpikeTrace


def save_trace(trace, path):
    """Write a trace as CSV: one header row, then minute,count rows."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["name", trace.name])
        writer.writerow(["exec_time_us", repr(trace.exec_time_us)])
        writer.writerow(["minute", "count"])
        for minute, count in enumerate(trace.minute_counts):
            writer.writerow([minute, count])


def load_trace(path):
    """Read a trace written by :func:`save_trace`."""
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    if len(rows) < 4 or rows[0][0] != "name" or rows[1][0] != "exec_time_us":
        raise ValueError("%s is not a saved trace" % (path,))
    name = rows[0][1]
    exec_time_us = float(rows[1][1])
    counts = [int(count) for _, count in rows[3:]]
    return SpikeTrace(name, counts, exec_time_us)


def load_azure_csv(path, function_hash, exec_time_us=0.45 * params.SEC,
                   max_minutes=None):
    """Load one function's series from an Azure invocations-per-minute CSV.

    The dataset's ``invocations_per_function_md.anon.dX.csv`` files carry
    columns ``HashOwner,HashApp,HashFunction,Trigger,1,2,...,1440``.
    ``function_hash`` may match either the full hash or any unique prefix.
    """
    with open(path, newline="") as f:
        reader = csv.reader(f)
        header = next(reader)
        try:
            hash_col = header.index("HashFunction")
        except ValueError:
            raise ValueError("%s lacks a HashFunction column" % (path,))
        first_minute_col = len(header) - sum(
            1 for c in header if c.strip().isdigit())
        matches = []
        for row in reader:
            if row[hash_col].startswith(function_hash):
                matches.append(row)
        if not matches:
            raise KeyError("no function matching %r in %s"
                           % (function_hash, path))
        if len(matches) > 1:
            raise KeyError("%d functions match %r; use a longer prefix"
                           % (len(matches), function_hash))
    row = matches[0]
    counts = [int(v or 0) for v in row[first_minute_col:]]
    if max_minutes is not None:
        counts = counts[:max_minutes]
    return SpikeTrace(row[hash_col][:6], counts, exec_time_us)


def trim_to_spike(trace, context_minutes=5):
    """Cut a long trace down to the window around its biggest minute."""
    peak_minute = max(range(trace.minutes),
                      key=lambda i: trace.minute_counts[i])
    lo = max(0, peak_minute - context_minutes)
    hi = min(trace.minutes, peak_minute + context_minutes + 1)
    return SpikeTrace(trace.name + "-spike", trace.minute_counts[lo:hi],
                      trace.exec_time_us)


def summarize(trace):
    """Headline statistics for a trace (what Fig. 1 reports)."""
    return {
        "name": trace.name,
        "minutes": trace.minutes,
        "total_invocations": trace.total_invocations,
        "peak_per_minute": max(trace.minute_counts),
        "peak_ratio": trace.peak_ratio(),
        "max_machines_required": max(trace.machines_required()),
    }
