"""Synthetic Azure-Functions spike traces (Fig. 1).

The paper analyzes two production functions from the Azure Functions
trace [57] whose invocation frequency fluctuates up to 33,000x within a
minute: Func 660323 (needs up to 31 machines) and Func 9a3e4e (up to 10).
The raw trace is not shipped here, so we regenerate per-minute invocation
series matching the published shape: long quiet baseline, a near-vertical
spike, then decay.
"""

import math

from .. import params


class SpikeTrace:
    """Per-minute invocation counts for one serverless function."""

    def __init__(self, name, minute_counts, exec_time_us):
        if not minute_counts:
            raise ValueError("trace needs at least one minute")
        self.name = name
        self.minute_counts = list(minute_counts)
        #: The function's typical execution time, used for the
        #: machines-required estimate (Fig. 1 bottom).
        self.exec_time_us = exec_time_us

    @property
    def minutes(self):
        """Trace length in minutes."""
        return len(self.minute_counts)

    @property
    def total_invocations(self):
        """Sum of all per-minute counts."""
        return sum(self.minute_counts)

    def peak_ratio(self):
        """Max over min of adjacent-minute frequency (the 33,000x claim)."""
        positive = [c for c in self.minute_counts if c > 0]
        if not positive:
            return 0.0
        return max(positive) / min(positive)

    def machines_required(self, cores=params.CORES_PER_MACHINE):
        """Per-minute least machines to run the load without stalling.

        Estimated as the paper does (§2.2): offered concurrency =
        arrival rate x execution time, divided by cores per machine.
        """
        required = []
        exec_seconds = self.exec_time_us / params.SEC
        for count in self.minute_counts:
            rate_per_sec = count / 60.0
            concurrency = rate_per_sec * exec_seconds
            required.append(max(1, math.ceil(concurrency / cores)))
        return required

    def arrival_times(self, streams, scale=1.0, stream_name=None,
                      burst_size=1):
        """Invocation timestamps (us) drawn from the per-minute counts.

        ``scale`` uniformly thins the trace so benchmarks can replay the
        same *shape* at laptop-friendly volume.  The trace's published
        granularity is one minute; within a minute, production arrivals
        are heavily clumped, so ``burst_size`` groups invocations into
        simultaneous bursts at uniform instants (burst_size=1 reproduces
        a uniform spread).  Burstiness is what defeats keep-alive caching
        and produces the paper's queueing effect (§6.2).
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        if burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        stream = stream_name or ("azure-%s" % self.name)
        arrivals = []
        for minute, count in enumerate(self.minute_counts):
            n = int(round(count * scale))
            base = minute * params.MINUTE
            while n > 0:
                burst = min(burst_size, n)
                at = base + streams.uniform(stream, 0.0, params.MINUTE)
                arrivals.extend([at] * burst)
                n -= burst
        arrivals.sort()
        return arrivals


def func_660323():
    """The paper's heavier spike function: 33,000x, up to 31 machines."""
    counts = [3, 3, 3, 4, 3, 99000, 24000, 6000, 1500, 400, 90, 20, 5, 3, 3]
    # Execution time chosen so the peak minute needs 31 machines at
    # 24 cores/machine: (99000/60) * t / 24 = 31  =>  t ~= 0.45 s.
    return SpikeTrace("660323", counts, exec_time_us=0.448 * params.SEC)


def func_9a3e4e():
    """The paper's second spike function: up to 10 machines."""
    counts = [5, 6, 4, 5, 31000, 9000, 2400, 700, 150, 40, 10, 6, 5]
    # Peak minute needs 10 machines: (31000/60) * t / 24 = 10 => t ~= 0.46 s.
    return SpikeTrace("9a3e4e", counts, exec_time_us=0.46 * params.SEC)
