"""Declarative fault schedules: what breaks, when, and for how long.

A :class:`FaultSchedule` is a validated list of fault events whose ``at``
offsets are relative to the moment the schedule is armed
(:meth:`~repro.faults.injector.FaultInjector.apply`), so the same schedule
can be replayed against any experiment timeline.  A schedule where every
event carries a finite ``down_for`` has *eventual recovery*: after
:attr:`FaultSchedule.horizon` the cluster is fully healed.
"""


class FaultEvent:  # reprolint: owner=message
    """Base class: one scheduled fault, ``at`` microseconds after arming."""

    def __init__(self, at):
        if at < 0:
            raise ValueError("fault time must be >= 0, got %r" % (at,))
        self.at = float(at)

    @property
    def ends_at(self):
        """When the fault is fully healed (relative to arming)."""
        down_for = getattr(self, "down_for", None)
        if down_for is None:
            return float("inf")
        return self.at + down_for

    @staticmethod
    def _check_duration(down_for):
        if down_for is not None and down_for <= 0:
            raise ValueError("down_for must be > 0 or None, got %r"
                             % (down_for,))
        return None if down_for is None else float(down_for)


class MachineCrash(FaultEvent):
    """Fail-stop crash of one machine; restarts after ``down_for`` if set.

    A crash kills every process hosted on the machine, wipes its volatile
    state (descriptor tables, tmpfs images, live containers), and makes
    its NIC unreachable.  ``down_for=None`` means the machine never comes
    back.
    """

    def __init__(self, at, machine_id, down_for=None):
        super().__init__(at)
        self.machine_id = machine_id
        self.down_for = self._check_duration(down_for)

    def __repr__(self):
        return "<MachineCrash m%d at=%g down_for=%r>" % (
            self.machine_id, self.at, self.down_for)


class NicFlap(FaultEvent):
    """RNIC port down/up on one machine; the host itself keeps running."""

    def __init__(self, at, machine_id, down_for):
        super().__init__(at)
        self.machine_id = machine_id
        self.down_for = self._check_duration(down_for)
        if self.down_for is None:
            raise ValueError("a NIC flap needs a finite down_for")

    def __repr__(self):
        return "<NicFlap m%d at=%g down_for=%g>" % (
            self.machine_id, self.at, self.down_for)


class LinkCut(FaultEvent):
    """Bidirectional loss of the path between two machines (partition)."""

    def __init__(self, at, machine_a, machine_b, down_for):
        super().__init__(at)
        if machine_a == machine_b:
            raise ValueError("cannot cut a machine's link to itself")
        self.machine_a = machine_a
        self.machine_b = machine_b
        self.down_for = self._check_duration(down_for)
        if self.down_for is None:
            raise ValueError("a link cut needs a finite down_for")

    def __repr__(self):
        return "<LinkCut m%d-m%d at=%g down_for=%g>" % (
            self.machine_a, self.machine_b, self.at, self.down_for)


class UdDropStorm(FaultEvent):
    """Cluster-wide unreliable-datagram loss at ``rate`` for a while."""

    def __init__(self, at, rate, down_for):
        super().__init__(at)
        if not 0.0 <= rate <= 1.0:
            raise ValueError("drop rate must be in [0, 1], got %r" % (rate,))
        self.rate = float(rate)
        self.down_for = self._check_duration(down_for)
        if self.down_for is None:
            raise ValueError("a UD drop storm needs a finite down_for")

    def __repr__(self):
        return "<UdDropStorm rate=%.2f at=%g down_for=%g>" % (
            self.rate, self.at, self.down_for)


class SlowNic(FaultEvent):
    """Degraded (gray) mode: one RNIC processes at ``factor`` x latency.

    The NIC stays *up* — heartbeats answer, reads complete — but every
    latency-bound operation through it is multiplied by ``factor``.  This
    is the gray failure binary health checks cannot see: the paper's
    fallback paths assume fail-stop, while a slow-but-alive RNIC stalls
    every remote page fault without tripping any liveness test.
    """

    def __init__(self, at, machine_id, factor, down_for):
        super().__init__(at)
        self.machine_id = machine_id
        if factor <= 1.0:
            raise ValueError("a slow NIC needs factor > 1, got %r" % (factor,))
        self.factor = float(factor)
        self.down_for = self._check_duration(down_for)
        if self.down_for is None:
            raise ValueError("a slow NIC needs a finite down_for")

    def __repr__(self):
        return "<SlowNic m%d x%g at=%g down_for=%g>" % (
            self.machine_id, self.factor, self.at, self.down_for)


class LossyLink(FaultEvent):
    """Degraded link: probabilistic loss + elevated latency, not a cut.

    Datagrams (UD) are dropped at ``drop_rate``; reliable transports
    (RC/DC) instead pay retransmissions — each packet re-draws at
    ``drop_rate`` and adds a retransmit penalty until it gets through.
    ``extra_latency`` is added to every traversal in both directions.
    """

    def __init__(self, at, machine_a, machine_b, drop_rate,
                 extra_latency=0.0, down_for=None):
        super().__init__(at)
        if machine_a == machine_b:
            raise ValueError("cannot degrade a machine's link to itself")
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError("lossy drop rate must be in [0, 1), got %r"
                             % (drop_rate,))
        if extra_latency < 0.0:
            raise ValueError("extra latency must be >= 0, got %r"
                             % (extra_latency,))
        self.machine_a = machine_a
        self.machine_b = machine_b
        self.drop_rate = float(drop_rate)
        self.extra_latency = float(extra_latency)
        self.down_for = self._check_duration(down_for)
        if self.down_for is None:
            raise ValueError("a lossy link needs a finite down_for")

    def __repr__(self):
        return "<LossyLink m%d-m%d p=%.2f +%gus at=%g down_for=%g>" % (
            self.machine_a, self.machine_b, self.drop_rate,
            self.extra_latency, self.at, self.down_for)


class CpuSteal(FaultEvent):
    """Degraded execution: one machine's cores run ``factor`` x slower.

    Models a noisy neighbour / throttled host stealing cycles from the
    invoker's execution slots; starts complete, just late.
    """

    def __init__(self, at, machine_id, factor, down_for):
        super().__init__(at)
        self.machine_id = machine_id
        if factor <= 1.0:
            raise ValueError("cpu steal needs factor > 1, got %r" % (factor,))
        self.factor = float(factor)
        self.down_for = self._check_duration(down_for)
        if self.down_for is None:
            raise ValueError("cpu steal needs a finite down_for")

    def __repr__(self):
        return "<CpuSteal m%d x%g at=%g down_for=%g>" % (
            self.machine_id, self.factor, self.at, self.down_for)


def _check_fabric_scope(scope):
    """Validate a fabric scope tuple: ``("host", machine_id)`` degrades
    one machine's access links, ``("tor", rack)`` the rack's spine
    uplink/downlink pair."""
    if (not isinstance(scope, tuple) or len(scope) != 2
            or scope[0] not in ("host", "tor")):
        raise ValueError(
            "fabric scope must be ('host', machine_id) or ('tor', rack), "
            "got %r" % (scope,))
    return (scope[0], int(scope[1]))


class FabricDegrade(FaultEvent):
    """Fabric brownout: the links in ``scope`` run at ``1/factor`` of
    their capacity for a window — queueing delay and ECN marking rise
    without any component going *down*.  Requires the fabric layer to
    be armed (``FnCluster.enable_fabric``); injecting it against a
    point-to-point fabric is a configuration error, reported loudly.
    """

    def __init__(self, at, scope, factor, down_for):
        super().__init__(at)
        self.scope = _check_fabric_scope(scope)
        if factor <= 1.0:
            raise ValueError("fabric degrade needs factor > 1, got %r"
                             % (factor,))
        self.factor = float(factor)
        self.down_for = self._check_duration(down_for)
        if self.down_for is None:
            raise ValueError("a fabric degrade needs a finite down_for")

    def __repr__(self):
        return "<FabricDegrade %s:%d x%g at=%g down_for=%g>" % (
            self.scope[0], self.scope[1], self.factor, self.at,
            self.down_for)


class FabricCut(FaultEvent):
    """Hard loss of the links in ``scope`` (ToR uplink cut isolates the
    rack from the spine; host cut isolates one machine).  Transfers
    crossing a cut link pay bounded retransmit penalties, then fail
    with ``ConnectionError_`` — the fail-stop half of the fabric fault
    taxonomy."""

    def __init__(self, at, scope, down_for):
        super().__init__(at)
        self.scope = _check_fabric_scope(scope)
        self.down_for = self._check_duration(down_for)
        if self.down_for is None:
            raise ValueError("a fabric cut needs a finite down_for")

    def __repr__(self):
        return "<FabricCut %s:%d at=%g down_for=%g>" % (
            self.scope[0], self.scope[1], self.at, self.down_for)


class NicSaturation(FaultEvent):
    """Seed-NIC saturation storm: background traffic slams one host's
    access links — an immediate ``backlog_bytes`` burst plus a
    ``factor`` capacity cut for the window.  The incast analogue of a
    gray failure: the NIC answers, it is just drowning."""

    def __init__(self, at, machine_id, backlog_bytes, factor, down_for):
        super().__init__(at)
        self.machine_id = machine_id
        if backlog_bytes < 0:
            raise ValueError("saturation backlog must be >= 0, got %r"
                             % (backlog_bytes,))
        if factor <= 1.0:
            raise ValueError("saturation needs factor > 1, got %r"
                             % (factor,))
        self.backlog_bytes = int(backlog_bytes)
        self.factor = float(factor)
        self.down_for = self._check_duration(down_for)
        if self.down_for is None:
            raise ValueError("a NIC saturation storm needs a finite down_for")

    def __repr__(self):
        return "<NicSaturation m%d +%dB x%g at=%g down_for=%g>" % (
            self.machine_id, self.backlog_bytes, self.factor, self.at,
            self.down_for)


class FaultSchedule:  # reprolint: owner=cluster
    """An immutable, validated collection of fault events."""

    def __init__(self, events):
        events = list(events)
        for event in events:
            if not isinstance(event, FaultEvent):
                raise TypeError("not a FaultEvent: %r" % (event,))
        self.events = tuple(sorted(events, key=lambda e: e.at))

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon(self):
        """Relative time after which every fault has healed (inf if never)."""
        return max((e.ends_at for e in self.events), default=0.0)

    @property
    def eventually_recovers(self):
        """True if every fault heals (finite horizon)."""
        return self.horizon != float("inf")

    def __repr__(self):
        return "<FaultSchedule %d events horizon=%g>" % (
            len(self.events), self.horizon)
