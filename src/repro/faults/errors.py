"""Typed errors surfaced by the failure-recovery paths.

The taxonomy keeps the crucial §4.3 distinction sharp: a *revoked* DC
target (expected, passive access control) raises
:class:`~repro.rdma.errors.RemoteAccessError`, while a *dead* peer
surfaces as one of the types below — the recovery paths treat them very
differently.
"""


class FaultError(Exception):
    """Base class for failures caused by injected cluster faults."""


class MachineCrashed(FaultError):
    """An operation was aborted because its host machine crashed."""


class ParentUnreachable(FaultError):
    """The parent of a remote fork is dead or partitioned (not revoked)."""


class LeaseExpired(FaultError):
    """A descriptor's lease ran out and the parent refused to renew it."""


class SeedUnavailable(FaultError):
    """No surviving invoker can host a seed for the function."""


class InvocationLost(FaultError):
    """An invocation exhausted its re-admission attempts."""


class DeadlineExceeded(FaultError):
    """The invocation's end-to-end deadline passed; shed, not run late."""


class AdmissionShed(FaultError):
    """A queued request was shed from a suspect invoker for re-routing."""
