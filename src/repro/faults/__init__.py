"""Deterministic cluster fault injection and the recovery-error taxonomy.

The subsystem that turns the simulator from fail-free into
crash-consistent: schedules machine crashes/restarts, RNIC port flaps,
link cuts, unreliable-datagram drop storms, *gray* degraded modes
(slow NICs, lossy links, CPU steal), and — when the fabricnet layer is
armed — fabric faults (ToR/host brownouts and cuts, seed-NIC
saturation storms) as discrete events
(:mod:`~repro.faults.schedule`), drives them through one cluster-wide
:class:`FaultInjector`, and defines the typed errors
(:mod:`~repro.faults.errors`) the recovery paths in ``rdma``, ``core``,
and ``fn`` raise.  With no injector installed every fault check is a
single ``is None`` test — the fail-free path stays zero-cost.
"""

from .errors import (
    AdmissionShed,
    DeadlineExceeded,
    FaultError,
    InvocationLost,
    LeaseExpired,
    MachineCrashed,
    ParentUnreachable,
    SeedUnavailable,
)
from .injector import FaultInjector, MachineCrashCause
from .schedule import (
    CpuSteal,
    FabricCut,
    FabricDegrade,
    FaultEvent,
    FaultSchedule,
    LinkCut,
    LossyLink,
    MachineCrash,
    NicFlap,
    NicSaturation,
    SlowNic,
    UdDropStorm,
)

__all__ = [
    "AdmissionShed",
    "CpuSteal",
    "DeadlineExceeded",
    "FabricCut",
    "FabricDegrade",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "InvocationLost",
    "LeaseExpired",
    "LinkCut",
    "LossyLink",
    "MachineCrash",
    "MachineCrashCause",
    "NicFlap",
    "NicSaturation",
    "ParentUnreachable",
    "SeedUnavailable",
    "SlowNic",
    "UdDropStorm",
]
