"""The fault injector: deterministic cluster failures as discrete events.

One :class:`FaultInjector` owns the cluster's failure state (which
machines, NICs, and links are down, and the current datagram-loss rate)
and drives :class:`~repro.faults.schedule.FaultSchedule` events.  Every
layer above consults it through cheap, zero-event queries:

* the RDMA fabric checks :meth:`path_up` / :meth:`nic_up` before moving
  bytes, and :meth:`ud_delivered` to decide a datagram's fate;
* daemons and invokers register crash/restart hooks to wipe or rebuild
  volatile per-machine state;
* long-running simulated processes register via :meth:`host_process` so a
  crash interrupts them fail-stop.

All randomness (UD drops) comes from named :class:`~repro.sim.SeededStreams`
draws, so a schedule replays bit-identically under one seed.
"""

from ..metrics import CounterSet, RecoveryLog
from ..sim import Interrupt, SeededStreams
from .schedule import (
    CpuSteal,
    FabricCut,
    FabricDegrade,
    FaultSchedule,
    LinkCut,
    LossyLink,
    MachineCrash,
    NicFlap,
    NicSaturation,
    SlowNic,
    UdDropStorm,
)


class FaultInjector:  # reprolint: owner=cluster
    """Cluster-wide failure state + the schedule driver."""

    def __init__(self, env, cluster, streams=None):
        self.env = env
        self.cluster = cluster
        self.streams = streams or SeededStreams(0)
        self.counters = CounterSet()
        self.recovery = RecoveryLog("cluster-faults")
        self._down_machines = set()
        #: machine_id -> number of active port-down conditions.
        self._down_nics = {}
        #: frozenset({a, b}) -> number of active cuts.
        self._cut_links = {}
        #: Active storm drop rates (a list: storms may overlap).
        self._storm_rates = []
        #: machine_id -> list of active NIC latency multipliers (> 1).
        self._slow_nics = {}
        #: frozenset({a, b}) -> list of active (drop_rate, extra_latency).
        self._lossy_links = {}
        #: machine_id -> list of active CPU slowdown factors (> 1).
        self._cpu_steal = {}
        #: machine_id -> set of hosted processes (interrupted on crash).
        self._hosted = {}
        self._crash_hooks = []
        self._restart_hooks = []
        self._drivers = []
        self._fabric = None

    # --- Wiring ---------------------------------------------------------------
    def install(self, fabric):
        """Attach this injector to an RDMA fabric (and return self)."""
        fabric.faults = self
        #: The fabric this injector is installed on; fabric fault events
        #: act on its (optionally armed) shared-link model.
        self._fabric = fabric
        return self

    def _fabric_net(self):
        """The armed fabricnet model, or a loud error: scheduling fabric
        faults against the point-to-point model silently does nothing,
        which is exactly the kind of quiet misconfiguration this layer
        exists to catch."""
        net = getattr(self._fabric, "net", None) if self._fabric else None
        if net is None:
            raise RuntimeError(
                "fabric fault events need the fabricnet layer armed "
                "(FnCluster.enable_fabric() or REPRO_FABRIC=flat|dcqcn)")
        return net

    def on_crash(self, hook):
        """Register ``hook(machine_id)`` to run when a machine crashes."""
        self._crash_hooks.append(hook)

    def on_restart(self, hook):
        """Register ``hook(machine_id)`` to run when a machine restarts."""
        self._restart_hooks.append(hook)

    def host_process(self, machine_id, process):
        """Tie ``process`` to a machine: a crash interrupts it fail-stop."""
        bucket = self._hosted.setdefault(machine_id, set())
        bucket.add(process)
        if process.processed:
            bucket.discard(process)
        else:
            process.callbacks.append(lambda _ev: bucket.discard(process))
        return process

    # --- State queries (zero simulated cost) -----------------------------------
    def machine_up(self, machine_id):
        """True while the machine is running."""
        return machine_id not in self._down_machines

    def nic_up(self, machine_id):
        """True while the machine's RNIC port is usable."""
        return (machine_id not in self._down_machines
                and self._down_nics.get(machine_id, 0) == 0)

    def link_up(self, machine_a, machine_b):
        """True while the path between two machines is not cut."""
        if machine_a == machine_b:
            return True
        return self._cut_links.get(frozenset((machine_a, machine_b)), 0) == 0

    def path_up(self, src_machine_id, dst_machine_id):
        """True when both endpoints' NICs are up and the link is intact."""
        return (self.nic_up(src_machine_id) and self.nic_up(dst_machine_id)
                and self.link_up(src_machine_id, dst_machine_id))

    @property
    def ud_drop_rate(self):
        """The current unreliable-datagram loss probability."""
        return max(self._storm_rates, default=0.0)

    def ud_delivered(self, src_machine_id, dst_machine_id):
        """Deterministic draw: does this datagram survive the wire?"""
        rate = self.ud_drop_rate
        lossy = self.link_drop_rate(src_machine_id, dst_machine_id)
        if lossy > 0.0:
            rate = 1.0 - (1.0 - rate) * (1.0 - lossy)
        if rate <= 0.0:
            return True
        survives = self.streams.random("ud-drop") >= rate
        if not survives:
            self.counters.incr("ud_dropped")
        return survives

    # --- Degraded-mode queries (gray failures, zero simulated cost) -------------
    def nic_slowdown(self, machine_id):
        """Latency multiplier for one machine's RNIC (1.0 when healthy)."""
        factors = self._slow_nics.get(machine_id)
        if not factors:
            return 1.0
        product = 1.0
        for factor in factors:
            product *= factor
        return product

    def path_slowdown(self, src_machine_id, dst_machine_id):
        """Latency multiplier for a path: the slower endpoint dominates."""
        if not self._slow_nics:
            return 1.0
        return max(self.nic_slowdown(src_machine_id),
                   self.nic_slowdown(dst_machine_id))

    def link_drop_rate(self, machine_a, machine_b):
        """Combined loss probability of active lossy conditions on a link."""
        if not self._lossy_links or machine_a == machine_b:
            return 0.0
        conditions = self._lossy_links.get(frozenset((machine_a, machine_b)))
        if not conditions:
            return 0.0
        deliver = 1.0
        for drop_rate, _extra in conditions:
            deliver *= 1.0 - drop_rate
        return 1.0 - deliver

    def link_extra_latency(self, machine_a, machine_b):
        """Added per-traversal latency from lossy conditions on a link."""
        if not self._lossy_links or machine_a == machine_b:
            return 0.0
        conditions = self._lossy_links.get(frozenset((machine_a, machine_b)))
        if not conditions:
            return 0.0
        return sum(extra for _rate, extra in conditions)

    def cpu_slowdown(self, machine_id):
        """Execution-slot slowdown factor for one machine (1.0 healthy)."""
        factors = self._cpu_steal.get(machine_id)
        if not factors:
            return 1.0
        product = 1.0
        for factor in factors:
            product *= factor
        return product

    @property
    def any_degraded(self):
        """True while any gray (degraded, non-fail-stop) condition holds."""
        return bool(self._slow_nics or self._lossy_links or self._cpu_steal)

    # --- Mutators ---------------------------------------------------------------
    def _mark(self, name, **attrs):
        """Drop a global timeline instant on the tracer (when tracing)."""
        tracer = self.env.tracer
        if tracer is not None and tracer.enabled:
            tracer.mark(name, **attrs)

    def crash_machine(self, machine_id):
        """Fail-stop crash: interrupt hosted processes, run crash hooks."""
        if machine_id in self._down_machines:
            return False
        self._down_machines.add(machine_id)
        self._mark("fault.machine_crash", machine=machine_id)
        self.counters.incr("machine_crashes")
        self.recovery.mark_down(("machine", machine_id), self.env.now)
        for process in list(self._hosted.get(machine_id, ())):
            if process.is_alive and process is not self.env.active_process:
                process.interrupt(MachineCrashCause(machine_id))
        for hook in self._crash_hooks:
            hook(machine_id)
        return True

    def restart_machine(self, machine_id):
        """Bring a crashed machine back (volatile state already wiped)."""
        if machine_id not in self._down_machines:
            return False
        self._down_machines.discard(machine_id)
        self._mark("fault.machine_restart", machine=machine_id)
        self.counters.incr("machine_restarts")
        for hook in self._restart_hooks:
            hook(machine_id)
        self.recovery.mark_up(("machine", machine_id), self.env.now)
        return True

    def nic_down(self, machine_id):
        """Take one machine's RNIC port down (flaps may nest)."""
        self._down_nics[machine_id] = self._down_nics.get(machine_id, 0) + 1
        self._mark("fault.nic_down", machine=machine_id)
        self.counters.incr("nic_flaps")
        self.recovery.mark_down(("nic", machine_id), self.env.now)

    def nic_restore(self, machine_id):
        """Undo one :meth:`nic_down`."""
        self._mark("fault.nic_restore", machine=machine_id)
        count = self._down_nics.get(machine_id, 0)
        if count <= 1:
            self._down_nics.pop(machine_id, None)
            self.recovery.mark_up(("nic", machine_id), self.env.now)
        else:
            self._down_nics[machine_id] = count - 1

    def cut_link(self, machine_a, machine_b):
        """Cut the path between two machines (cuts may nest)."""
        key = frozenset((machine_a, machine_b))
        self._cut_links[key] = self._cut_links.get(key, 0) + 1
        self._mark("fault.link_cut", a=machine_a, b=machine_b)
        self.counters.incr("link_cuts")

    def restore_link(self, machine_a, machine_b):
        """Undo one :meth:`cut_link`."""
        self._mark("fault.link_restore", a=machine_a, b=machine_b)
        key = frozenset((machine_a, machine_b))
        count = self._cut_links.get(key, 0)
        if count <= 1:
            self._cut_links.pop(key, None)
        else:
            self._cut_links[key] = count - 1

    def slow_nic(self, machine_id, factor):
        """Degrade one machine's RNIC by ``factor`` (conditions may nest)."""
        self._slow_nics.setdefault(machine_id, []).append(float(factor))
        self._mark("fault.slow_nic", machine=machine_id, factor=factor)
        self.counters.incr("slow_nics")
        self.recovery.mark_down(("slow-nic", machine_id), self.env.now)

    def restore_nic_speed(self, machine_id, factor):
        """Undo one :meth:`slow_nic` with the same factor."""
        factors = self._slow_nics.get(machine_id)
        if not factors:
            return
        try:
            factors.remove(float(factor))
        except ValueError:
            return
        if not factors:
            self._slow_nics.pop(machine_id, None)
            self._mark("fault.nic_speed_restored", machine=machine_id)
            self.recovery.mark_up(("slow-nic", machine_id), self.env.now)

    def make_link_lossy(self, machine_a, machine_b, drop_rate,
                        extra_latency=0.0):
        """Degrade a link; returns an opaque handle for the restore."""
        key = frozenset((machine_a, machine_b))
        condition = (float(drop_rate), float(extra_latency))
        self._lossy_links.setdefault(key, []).append(condition)
        self._mark("fault.lossy_link", a=machine_a, b=machine_b,
                   drop_rate=drop_rate)
        self.counters.incr("lossy_links")
        return (key, condition)

    def restore_link_quality(self, handle):
        """Undo one :meth:`make_link_lossy` via its handle."""
        key, condition = handle
        conditions = self._lossy_links.get(key)
        if not conditions:
            return
        try:
            conditions.remove(condition)
        except ValueError:
            return
        if not conditions:
            self._lossy_links.pop(key, None)
            self._mark("fault.link_quality_restored",
                       machines=sorted(key))

    def steal_cpu(self, machine_id, factor):
        """Slow one machine's execution slots by ``factor``."""
        self._cpu_steal.setdefault(machine_id, []).append(float(factor))
        self._mark("fault.cpu_steal", machine=machine_id, factor=factor)
        self.counters.incr("cpu_steals")

    def restore_cpu(self, machine_id, factor):
        """Undo one :meth:`steal_cpu` with the same factor."""
        factors = self._cpu_steal.get(machine_id)
        if not factors:
            return
        try:
            factors.remove(float(factor))
        except ValueError:
            return
        if not factors:
            self._cpu_steal.pop(machine_id, None)
            self._mark("fault.cpu_restored", machine=machine_id)

    def degrade_fabric(self, scope, factor):
        """Brown out the links in ``scope`` by ``factor``."""
        self._fabric_net().degrade_scope(scope, factor)
        self._mark("fault.fabric_degrade", scope="%s:%d" % scope,
                   factor=factor)
        self.counters.incr("fabric_degrades")
        self.recovery.mark_down(("fabric",) + scope, self.env.now)

    def restore_fabric(self, scope, factor):
        """Undo one :meth:`degrade_fabric` with the same factor."""
        self._fabric_net().restore_scope(scope, factor)
        self._mark("fault.fabric_restore", scope="%s:%d" % scope)
        self.recovery.mark_up(("fabric",) + scope, self.env.now)

    def cut_fabric(self, scope):
        """Cut the links in ``scope`` (cuts may nest)."""
        self._fabric_net().cut_scope(scope)
        self._mark("fault.fabric_cut", scope="%s:%d" % scope)
        self.counters.incr("fabric_cuts")
        self.recovery.mark_down(("fabric-cut",) + scope, self.env.now)

    def uncut_fabric(self, scope):
        """Undo one :meth:`cut_fabric`."""
        self._fabric_net().uncut_scope(scope)
        self._mark("fault.fabric_uncut", scope="%s:%d" % scope)
        self.recovery.mark_up(("fabric-cut",) + scope, self.env.now)

    def saturate_nic(self, machine_id, backlog_bytes, factor):
        """Start a saturation storm on one host's access links."""
        self._fabric_net().saturate(machine_id, backlog_bytes, factor)
        self._mark("fault.nic_saturation", machine=machine_id,
                   backlog=backlog_bytes, factor=factor)
        self.counters.incr("nic_saturations")
        self.recovery.mark_down(("nic-saturation", machine_id),
                                self.env.now)

    def unsaturate_nic(self, machine_id, factor):
        """End one :meth:`saturate_nic` storm (the burst drains on its
        own; only the capacity cut is undone)."""
        self._fabric_net().unsaturate(machine_id, factor)
        self._mark("fault.nic_saturation_end", machine=machine_id)
        self.recovery.mark_up(("nic-saturation", machine_id), self.env.now)

    def start_storm(self, rate):
        """Begin a UD drop storm at ``rate``; returns an opaque handle."""
        self._storm_rates.append(rate)
        self._mark("fault.ud_storm_start", rate=rate)
        self.counters.incr("ud_storms")
        return rate

    def end_storm(self, handle):
        """End one storm previously returned by :meth:`start_storm`."""
        try:
            self._storm_rates.remove(handle)
        except ValueError:
            pass
        else:
            self._mark("fault.ud_storm_end", rate=handle)

    # --- Schedule driving ----------------------------------------------------------
    def apply(self, schedule):
        """Arm a :class:`FaultSchedule` now; returns the driver processes."""
        if not isinstance(schedule, FaultSchedule):
            schedule = FaultSchedule(schedule)
        procs = [self.env.process(self._drive(event)) for event in schedule]
        self._drivers.extend(procs)
        return procs

    def stop_drivers(self):
        """Interrupt any still-pending schedule drivers."""
        for proc in self._drivers:
            if proc.is_alive and proc is not self.env.active_process:
                proc.interrupt("fault drivers stopped")
        self._drivers = []

    def _drive(self, event):
        """One schedule entry: wait, inject, (optionally) heal."""
        try:
            if event.at > 0:
                yield self.env.timeout(event.at)
            if isinstance(event, MachineCrash):
                self.crash_machine(event.machine_id)
                if event.down_for is not None:
                    yield self.env.timeout(event.down_for)
                    self.restart_machine(event.machine_id)
            elif isinstance(event, NicFlap):
                self.nic_down(event.machine_id)
                yield self.env.timeout(event.down_for)
                self.nic_restore(event.machine_id)
            elif isinstance(event, LinkCut):
                self.cut_link(event.machine_a, event.machine_b)
                yield self.env.timeout(event.down_for)
                self.restore_link(event.machine_a, event.machine_b)
            elif isinstance(event, UdDropStorm):
                handle = self.start_storm(event.rate)
                yield self.env.timeout(event.down_for)
                self.end_storm(handle)
            elif isinstance(event, SlowNic):
                self.slow_nic(event.machine_id, event.factor)
                yield self.env.timeout(event.down_for)
                self.restore_nic_speed(event.machine_id, event.factor)
            elif isinstance(event, LossyLink):
                handle = self.make_link_lossy(
                    event.machine_a, event.machine_b,
                    event.drop_rate, event.extra_latency)
                yield self.env.timeout(event.down_for)
                self.restore_link_quality(handle)
            elif isinstance(event, CpuSteal):
                self.steal_cpu(event.machine_id, event.factor)
                yield self.env.timeout(event.down_for)
                self.restore_cpu(event.machine_id, event.factor)
            elif isinstance(event, FabricDegrade):
                self.degrade_fabric(event.scope, event.factor)
                yield self.env.timeout(event.down_for)
                self.restore_fabric(event.scope, event.factor)
            elif isinstance(event, FabricCut):
                self.cut_fabric(event.scope)
                yield self.env.timeout(event.down_for)
                self.uncut_fabric(event.scope)
            elif isinstance(event, NicSaturation):
                self.saturate_nic(event.machine_id, event.backlog_bytes,
                                  event.factor)
                yield self.env.timeout(event.down_for)
                self.unsaturate_nic(event.machine_id, event.factor)
            else:  # pragma: no cover - schedule validation rejects these
                raise TypeError("unknown fault event %r" % (event,))
        except Interrupt:
            return


class MachineCrashCause:
    """The ``Interrupt.cause`` delivered to processes killed by a crash."""

    def __init__(self, machine_id):
        self.machine_id = machine_id

    def __repr__(self):
        return "<MachineCrashCause m%d>" % self.machine_id
