"""The fault injector: deterministic cluster failures as discrete events.

One :class:`FaultInjector` owns the cluster's failure state (which
machines, NICs, and links are down, and the current datagram-loss rate)
and drives :class:`~repro.faults.schedule.FaultSchedule` events.  Every
layer above consults it through cheap, zero-event queries:

* the RDMA fabric checks :meth:`path_up` / :meth:`nic_up` before moving
  bytes, and :meth:`ud_delivered` to decide a datagram's fate;
* daemons and invokers register crash/restart hooks to wipe or rebuild
  volatile per-machine state;
* long-running simulated processes register via :meth:`host_process` so a
  crash interrupts them fail-stop.

All randomness (UD drops) comes from named :class:`~repro.sim.SeededStreams`
draws, so a schedule replays bit-identically under one seed.
"""

from ..metrics import CounterSet, RecoveryLog
from ..sim import Interrupt, SeededStreams
from .schedule import (
    FaultSchedule,
    LinkCut,
    MachineCrash,
    NicFlap,
    UdDropStorm,
)


class FaultInjector:
    """Cluster-wide failure state + the schedule driver."""

    def __init__(self, env, cluster, streams=None):
        self.env = env
        self.cluster = cluster
        self.streams = streams or SeededStreams(0)
        self.counters = CounterSet()
        self.recovery = RecoveryLog("cluster-faults")
        self._down_machines = set()
        #: machine_id -> number of active port-down conditions.
        self._down_nics = {}
        #: frozenset({a, b}) -> number of active cuts.
        self._cut_links = {}
        #: Active storm drop rates (a list: storms may overlap).
        self._storm_rates = []
        #: machine_id -> set of hosted processes (interrupted on crash).
        self._hosted = {}
        self._crash_hooks = []
        self._restart_hooks = []
        self._drivers = []

    # --- Wiring ---------------------------------------------------------------
    def install(self, fabric):
        """Attach this injector to an RDMA fabric (and return self)."""
        fabric.faults = self
        return self

    def on_crash(self, hook):
        """Register ``hook(machine_id)`` to run when a machine crashes."""
        self._crash_hooks.append(hook)

    def on_restart(self, hook):
        """Register ``hook(machine_id)`` to run when a machine restarts."""
        self._restart_hooks.append(hook)

    def host_process(self, machine_id, process):
        """Tie ``process`` to a machine: a crash interrupts it fail-stop."""
        bucket = self._hosted.setdefault(machine_id, set())
        bucket.add(process)
        if process.processed:
            bucket.discard(process)
        else:
            process.callbacks.append(lambda _ev: bucket.discard(process))
        return process

    # --- State queries (zero simulated cost) -----------------------------------
    def machine_up(self, machine_id):
        """True while the machine is running."""
        return machine_id not in self._down_machines

    def nic_up(self, machine_id):
        """True while the machine's RNIC port is usable."""
        return (machine_id not in self._down_machines
                and self._down_nics.get(machine_id, 0) == 0)

    def link_up(self, machine_a, machine_b):
        """True while the path between two machines is not cut."""
        if machine_a == machine_b:
            return True
        return self._cut_links.get(frozenset((machine_a, machine_b)), 0) == 0

    def path_up(self, src_machine_id, dst_machine_id):
        """True when both endpoints' NICs are up and the link is intact."""
        return (self.nic_up(src_machine_id) and self.nic_up(dst_machine_id)
                and self.link_up(src_machine_id, dst_machine_id))

    @property
    def ud_drop_rate(self):
        """The current unreliable-datagram loss probability."""
        return max(self._storm_rates, default=0.0)

    def ud_delivered(self, src_machine_id, dst_machine_id):
        """Deterministic draw: does this datagram survive the wire?"""
        rate = self.ud_drop_rate
        if rate <= 0.0:
            return True
        survives = self.streams.random("ud-drop") >= rate
        if not survives:
            self.counters.incr("ud_dropped")
        return survives

    # --- Mutators ---------------------------------------------------------------
    def crash_machine(self, machine_id):
        """Fail-stop crash: interrupt hosted processes, run crash hooks."""
        if machine_id in self._down_machines:
            return False
        self._down_machines.add(machine_id)
        self.counters.incr("machine_crashes")
        self.recovery.mark_down(("machine", machine_id), self.env.now)
        for process in list(self._hosted.get(machine_id, ())):
            if process.is_alive and process is not self.env.active_process:
                process.interrupt(MachineCrashCause(machine_id))
        for hook in self._crash_hooks:
            hook(machine_id)
        return True

    def restart_machine(self, machine_id):
        """Bring a crashed machine back (volatile state already wiped)."""
        if machine_id not in self._down_machines:
            return False
        self._down_machines.discard(machine_id)
        self.counters.incr("machine_restarts")
        for hook in self._restart_hooks:
            hook(machine_id)
        self.recovery.mark_up(("machine", machine_id), self.env.now)
        return True

    def nic_down(self, machine_id):
        """Take one machine's RNIC port down (flaps may nest)."""
        self._down_nics[machine_id] = self._down_nics.get(machine_id, 0) + 1
        self.counters.incr("nic_flaps")
        self.recovery.mark_down(("nic", machine_id), self.env.now)

    def nic_restore(self, machine_id):
        """Undo one :meth:`nic_down`."""
        count = self._down_nics.get(machine_id, 0)
        if count <= 1:
            self._down_nics.pop(machine_id, None)
            self.recovery.mark_up(("nic", machine_id), self.env.now)
        else:
            self._down_nics[machine_id] = count - 1

    def cut_link(self, machine_a, machine_b):
        """Cut the path between two machines (cuts may nest)."""
        key = frozenset((machine_a, machine_b))
        self._cut_links[key] = self._cut_links.get(key, 0) + 1
        self.counters.incr("link_cuts")

    def restore_link(self, machine_a, machine_b):
        """Undo one :meth:`cut_link`."""
        key = frozenset((machine_a, machine_b))
        count = self._cut_links.get(key, 0)
        if count <= 1:
            self._cut_links.pop(key, None)
        else:
            self._cut_links[key] = count - 1

    def start_storm(self, rate):
        """Begin a UD drop storm at ``rate``; returns an opaque handle."""
        self._storm_rates.append(rate)
        self.counters.incr("ud_storms")
        return rate

    def end_storm(self, handle):
        """End one storm previously returned by :meth:`start_storm`."""
        try:
            self._storm_rates.remove(handle)
        except ValueError:
            pass

    # --- Schedule driving ----------------------------------------------------------
    def apply(self, schedule):
        """Arm a :class:`FaultSchedule` now; returns the driver processes."""
        if not isinstance(schedule, FaultSchedule):
            schedule = FaultSchedule(schedule)
        procs = [self.env.process(self._drive(event)) for event in schedule]
        self._drivers.extend(procs)
        return procs

    def stop_drivers(self):
        """Interrupt any still-pending schedule drivers."""
        for proc in self._drivers:
            if proc.is_alive and proc is not self.env.active_process:
                proc.interrupt("fault drivers stopped")
        self._drivers = []

    def _drive(self, event):
        """One schedule entry: wait, inject, (optionally) heal."""
        try:
            if event.at > 0:
                yield self.env.timeout(event.at)
            if isinstance(event, MachineCrash):
                self.crash_machine(event.machine_id)
                if event.down_for is not None:
                    yield self.env.timeout(event.down_for)
                    self.restart_machine(event.machine_id)
            elif isinstance(event, NicFlap):
                self.nic_down(event.machine_id)
                yield self.env.timeout(event.down_for)
                self.nic_restore(event.machine_id)
            elif isinstance(event, LinkCut):
                self.cut_link(event.machine_a, event.machine_b)
                yield self.env.timeout(event.down_for)
                self.restore_link(event.machine_a, event.machine_b)
            elif isinstance(event, UdDropStorm):
                handle = self.start_storm(event.rate)
                yield self.env.timeout(event.down_for)
                self.end_storm(handle)
            else:  # pragma: no cover - schedule validation rejects these
                raise TypeError("unknown fault event %r" % (event,))
        except Interrupt:
            return


class MachineCrashCause:
    """The ``Interrupt.cause`` delivered to processes killed by a crash."""

    def __init__(self, machine_id):
        self.machine_id = machine_id

    def __repr__(self):
        return "<MachineCrashCause m%d>" % self.machine_id
