"""OpenWhisk invokers: stem-cell prewarm pools and worker loops."""

from collections import deque

from .. import params
from ..sim import Store
from .actions import STEMCELL_START_LATENCY, WARM_KEEPALIVE


class StemCellPool:  # reprolint: owner=machine
    """Prewarmed *generic* runtime containers (OpenWhisk's "prewarm").

    Unlike Fn's per-function cache, a stem cell fits any action of its
    runtime kind — but must still pay ``/init`` to become that action.
    """

    def __init__(self, env, runtime, image, size=2):
        self.env = env
        self.runtime = runtime
        self.image = image
        self.size = size
        self._free = []
        self.refills = 0

    def prefill_at_boot(self):
        """Materialize the initial pool before the experiment clock runs."""
        while len(self._free) < self.size:
            container = self.runtime._materialize(self.image)
            container.mark_running()
            self._free.append(container)

    def take(self):
        """A generic container: pooled, else a cold generic start.

        Generator returning (container, was_prewarmed).
        """
        if self._free:
            container = self._free.pop()
            self.env.process(self._refill_one())
            return container, True
        yield self.env.timeout(STEMCELL_START_LATENCY)
        container = self.runtime._materialize(self.image)
        container.mark_running()
        return container, False

    def _refill_one(self):
        yield self.env.timeout(STEMCELL_START_LATENCY)
        if len(self._free) < self.size:
            container = self.runtime._materialize(self.image)
            container.mark_running()
            self._free.append(container)
            self.refills += 1

    @property
    def available(self):
        """Prewarmed generic containers currently pooled."""
        return len(self._free)


class OwInvoker:  # reprolint: owner=machine
    """One OpenWhisk invoker: activation queue + bounded worker loop."""

    def __init__(self, env, runtime, index, generic_image,
                 concurrency=params.FN_INVOKER_CONCURRENCY,
                 stemcells=2):
        self.env = env
        self.runtime = runtime
        self.kernel = runtime.kernel
        self.machine = runtime.machine
        self.index = index
        self.concurrency = concurrency
        #: The per-invoker activation topic the controller publishes to.
        self.queue = Store(env)
        self.stemcells = StemCellPool(env, runtime, generic_image,
                                      size=stemcells)
        self.stemcells.prefill_at_boot()
        #: action name -> deque of (warm specialized container, cached_at).
        self.warm = {}
        self.live_containers = set()
        self.outstanding = 0

    def warm_take(self, action_name):
        """Pop a non-expired warm container for the action, or None."""
        bucket = self.warm.get(action_name)
        while bucket:
            container, cached_at = bucket.popleft()
            if self.env.now - cached_at <= WARM_KEEPALIVE:
                return container
            self._destroy(container)
        return None

    def warm_put(self, action_name, container):
        """Cache a specialized container as warm for the action."""
        self.warm.setdefault(action_name, deque()).append(
            (container, self.env.now))

    def _destroy(self, container):
        self.live_containers.discard(container)
        self.runtime.destroy(container)

    def memory_bytes(self):
        """Function-related memory on this invoker."""
        overhead = sum(
            c.image.runtime_overhead_bytes + c.extra_overhead_bytes
            for c in self.live_containers)
        return self.machine.memory.used + overhead
