"""An OpenWhisk-style serverless framework, MITOSIS-accelerated.

Demonstrates the paper's §5 claim that MITOSIS generalizes beyond Fn to
other container-based frameworks: OpenWhisk's activation path (controller
-> message bus -> invoker worker loops) and its prewarm model (generic
stem cells specialized by ``/init``) are architecturally different from
Fn's, yet remote fork slots in as the miss path the same way — and skips
the ``/init`` step entirely, because a forked child inherits the
specialized runtime state.
"""

from .actions import Action, Activation
from .controller import OpenWhiskCluster
from .invoker import OwInvoker, StemCellPool

__all__ = [
    "Action",
    "Activation",
    "OpenWhiskCluster",
    "OwInvoker",
    "StemCellPool",
]
