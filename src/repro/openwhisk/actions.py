"""OpenWhisk actions and activations.

OpenWhisk's execution model differs from Fn's in ways that matter for
startup: a *generic* runtime container is specialized to an action by an
explicit ``/init`` call (injecting user code into the language runtime),
and activations travel through a message bus to per-invoker worker loops.
"""

from itertools import count

from .. import params

#: Controller-side processing per activation (auth, routing, bookkeeping).
CONTROLLER_OVERHEAD = 0.5 * params.MS
#: Publishing an activation to the per-invoker topic (Kafka-style bus).
BUS_PUBLISH_LATENCY = 1.0 * params.MS
#: Default /init cost: load + compile the user code inside the runtime.
DEFAULT_INIT_LATENCY = 55.0 * params.MS
#: Starting a *generic* (not yet specialized) runtime container.
STEMCELL_START_LATENCY = 120.0 * params.MS
#: OpenWhisk keeps specialized containers warm for minutes; we scale it
#: the same way Fn's keepalive is scaled in miniature replays.
WARM_KEEPALIVE = 60.0 * params.SEC


class Action:  # reprolint: owner=message
    """One registered OpenWhisk action."""

    def __init__(self, profile, init_latency=DEFAULT_INIT_LATENCY):
        self.profile = profile
        self.name = profile.name
        self.image = profile.image
        self.init_latency = init_latency

    def __repr__(self):
        return "<Action %s>" % self.name


class Activation:  # reprolint: owner=message
    """One activation record (OpenWhisk's invocation unit)."""

    _ids = count(1)

    def __init__(self, action_name, submitted_at):
        self.activation_id = next(Activation._ids)
        self.action_name = action_name
        self.submitted_at = submitted_at
        self.started_at = None
        self.finished_at = None
        #: 'warm' | 'prewarm-init' | 'cold-init' | 'mitosis'
        self.start_kind = None
        self.invoker_index = None

    @property
    def latency(self):
        """End-to-end activation latency."""
        return self.finished_at - self.submitted_at

    @property
    def wait_time(self):
        """Queueing in the bus + invoker loop before the run began."""
        return self.started_at - self.submitted_at
