"""The OpenWhisk controller and cluster assembly.

Activation path (vanilla): controller -> per-invoker topic -> the
invoker's worker loop -> warm container, else stem cell + ``/init``, else
fully cold.  With MITOSIS, the miss path becomes a remote fork from the
action's seed — skipping both container creation *and* ``/init``, since
the forked memory image is already specialized.
"""

from .. import params
from ..cluster import Cluster
from ..containers import ContainerRuntime, hello_world_image
from ..core import MitosisDeployment
from ..kernel import Kernel
from ..rdma import RdmaFabric, RpcRuntime
from ..sim import Environment, SeededStreams
from ..workloads import execute
from .actions import (
    Activation,
    Action,
    BUS_PUBLISH_LATENCY,
    CONTROLLER_OVERHEAD,
)
from .invoker import OwInvoker


class OpenWhiskCluster:  # reprolint: owner=cluster
    """An OpenWhisk-style deployment, optionally MITOSIS-accelerated."""

    def __init__(self, mode="vanilla", num_invokers=3, num_machines=6,
                 seed=0, invoker_concurrency=params.FN_INVOKER_CONCURRENCY,
                 stemcells=2, generic_image=None, env=None):
        if mode not in ("vanilla", "mitosis"):
            raise ValueError("mode must be 'vanilla' or 'mitosis'")
        self.mode = mode
        self.env = env or Environment()
        self.streams = SeededStreams(seed)
        self.cluster = Cluster(self.env, num_machines=num_machines)
        self.fabric = RdmaFabric(self.env, self.cluster)
        self.rpc = RpcRuntime(self.env, self.fabric)
        self.kernels = [Kernel(self.env, m) for m in self.cluster]
        self.runtimes = [ContainerRuntime(self.env, k) for k in self.kernels]
        generic_image = generic_image or hello_world_image()

        invoker_machines, _ = self.cluster.split_roles(num_invokers)
        self.invokers = [
            OwInvoker(self.env, self.runtimes[m.machine_id], index,
                      generic_image, concurrency=invoker_concurrency,
                      stemcells=stemcells)
            for index, m in enumerate(invoker_machines)
        ]
        self.deployment = MitosisDeployment(
            self.env, self.cluster, self.fabric, self.rpc,
            [inv.runtime for inv in self.invokers])

        self.actions = {}
        #: action name -> (seed invoker, seed container, fork meta).
        self.seeds = {}
        self.activations = []
        for invoker in self.invokers:
            for _ in range(invoker.concurrency):
                self.env.process(self._worker_loop(invoker))

    # --- Registration ---------------------------------------------------------
    def register(self, profile, init_latency=None):
        """Register an action; in MITOSIS mode also plant its seed.

        Generator returning the :class:`Action`.
        """
        kwargs = {}
        if init_latency is not None:
            kwargs["init_latency"] = init_latency
        action = Action(profile, **kwargs)
        if action.name in self.actions:
            raise ValueError("action %r already registered" % action.name)
        self.actions[action.name] = action
        if self.mode == "mitosis":
            invoker = min(self.invokers,
                          key=lambda i: i.machine.memory.used)
            seed = yield from invoker.runtime.cold_start(action.image)
            yield self.env.timeout(action.init_latency)  # specialize seed
            invoker.live_containers.add(seed)
            node = self.deployment.node(invoker.machine)
            meta = yield from node.fork_prepare(seed)
            self.seeds[action.name] = (invoker, seed, meta)
        else:
            yield self.env.timeout(0)
        return action

    # --- Activation path -----------------------------------------------------
    def invoke(self, name):
        """One activation end to end.  Generator -> Activation."""
        if name not in self.actions:
            raise KeyError("unknown action %r" % (name,))
        activation = Activation(name, self.env.now)
        yield self.env.timeout(CONTROLLER_OVERHEAD)
        invoker = self._home_invoker(name)
        activation.invoker_index = invoker.index
        yield self.env.timeout(BUS_PUBLISH_LATENCY)
        done = self.env.event()
        invoker.queue.put((activation, done))
        yield done
        self.activations.append(activation)
        return activation

    def submit(self, name):
        """Fire-and-forget activation; returns the Process event."""
        return self.env.process(self.invoke(name))

    def _home_invoker(self, action_name):
        """OpenWhisk hashes actions to a home invoker, overflowing to the
        least-loaded one when the home queue is deep."""
        home = self.invokers[hash(action_name) % len(self.invokers)]
        if home.outstanding < 2 * home.concurrency:
            return home
        return min(self.invokers, key=lambda i: i.outstanding)

    # --- Invoker worker loop -----------------------------------------------------
    def _worker_loop(self, invoker):
        while True:
            activation, done = yield invoker.queue.get()
            invoker.outstanding += 1
            try:
                yield from self._run_activation(invoker, activation)
                done.succeed(activation)
            except BaseException as exc:  # surface, don't hang the caller
                done.fail(exc)
            finally:
                invoker.outstanding -= 1

    def _run_activation(self, invoker, activation):
        action = self.actions[activation.action_name]
        container = invoker.warm_take(action.name)
        if container is not None:
            activation.start_kind = "warm"
        elif self.mode == "mitosis":
            _, _, meta = self.seeds[action.name]
            node = self.deployment.node(invoker.machine)
            container = yield from node.fork_resume(meta)
            invoker.live_containers.add(container)
            activation.start_kind = "mitosis"
        else:
            generic, prewarmed = yield from invoker.stemcells.take()
            invoker.live_containers.add(generic)
            yield self.env.timeout(action.init_latency)  # /init
            container = generic
            activation.start_kind = ("prewarm-init" if prewarmed
                                     else "cold-init")
        activation.started_at = self.env.now
        yield from execute(self.env, container, action.profile)
        activation.finished_at = self.env.now
        invoker.warm_put(action.name, container)
