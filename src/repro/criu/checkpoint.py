"""Checkpointing: serialize a running container into an image file set.

Cost is dominated by dumping memory pages (Fig. 2c) and grows with the
container's resident set — which is why dynamic checkpointing is too slow
to serve as a remote-fork primitive (§2.4 Issue#4).
"""

from .. import params
from ..kernel import KernelError
from .images import CheckpointImage, VmaSpec


class TmpfsStore:
    """Per-machine in-DRAM image store (the paper's tmpfs)."""

    def __init__(self, machine):
        self.machine = machine
        self._images = {}

    def put(self, image):
        """Store an image, charging the machine's DRAM."""
        if image.name in self._images:
            raise KernelError("image %r already stored" % (image.name,))
        self.machine.memory.alloc(image.total_bytes)
        self._images[image.name] = image

    def get(self, name):
        """The stored image by name; raises if absent."""
        try:
            return self._images[name]
        except KeyError:
            raise KernelError("no image %r on m%d"
                              % (name, self.machine.machine_id))

    def exists(self, name):
        """True if an image of that name is stored."""
        return name in self._images

    def delete(self, name):
        """Drop an image and free its DRAM."""
        image = self.get(name)
        self.machine.memory.free(image.total_bytes)
        del self._images[name]

    def clear(self):
        """Drop every image (a tmpfs does not survive a machine crash)."""
        for name in list(self._images):
            self.delete(name)

    @property
    def stored_bytes(self):
        """Total bytes of stored images."""
        return sum(i.total_bytes for i in self._images.values())


def checkpoint(env, container, name):
    """Checkpoint ``container`` into a :class:`CheckpointImage`.

    Generator returning the image (the caller stores it in a
    :class:`TmpfsStore` or pushes it to the DFS).  The container keeps
    running afterwards (CRIU's --leave-running, as serverless needs).
    """
    task = container.task
    space = task.address_space
    pages = {}
    for vpn, pte in space.page_table.entries():
        if pte.present:
            pages[vpn] = pte.frame.content
    resident_bytes = len(pages) * params.PAGE_SIZE
    dump_time = (params.CRIU_CHECKPOINT_BASE
                 + params.transfer_time(resident_bytes,
                                        params.CRIU_DUMP_BANDWIDTH))
    yield env.timeout(dump_time)
    declared = container.image.image_file_bytes
    layout_bytes = container.image.layout.total_bytes
    file_extra = max(0, declared - layout_bytes)
    return CheckpointImage(
        name=name,
        container_image=container.image,
        vma_specs=[VmaSpec.of(v) for v in space.vmas],
        registers=task.registers.clone(),
        fd_specs=[fd.clone() for fd in task.fd_table.values()],
        namespaces=task.namespaces.clone(),
        pages=pages,
        file_extra_bytes=file_extra,
    )
