"""Restore: rebuild a container from a checkpoint image.

Two variants, matching the paper's optimized CRIU (§6 comparing targets):

* **vanilla** — load every memory page at restore time;
* **on-demand** (lazy, from Replayable Execution [68]) — restore only
  metadata, clear present bits, and page in on first touch through the
  source's pager.

Both run on SOCK-style lean containerization by default (the paper applies
that optimization to CRIU too, cutting isolation restore from >190 ms to
~10 ms).
"""

from .. import params



def restore(env, runtime, source, name, lazy=True, lean=True):
    """Restore image ``name`` on ``runtime``'s machine via ``source``.

    Generator returning the running :class:`Container`.
    """
    image_meta = yield from source.fetch_metadata(name)
    container_image = image_meta.container_image

    # Process-rebuild CPU cost (parse + restore syscalls) is charged while
    # holding the sandbox slot: it bounds per-invoker restore throughput.
    rebuild_cpu = params.CRIU_RESTORE_BASE + params.CRIU_RESTORE_INTERACT
    if lean:
        container = yield from runtime.lean_start_empty(
            container_image, extra_slot_time=rebuild_cpu)
    else:
        yield runtime.machine.sandbox_slots.acquire()
        try:
            yield env.timeout(params.CGROUP_CONTAINERIZATION)
        finally:
            runtime.machine.sandbox_slots.release()
        container = yield from runtime.lean_start_empty(
            container_image, extra_slot_time=rebuild_cpu)

    task = container.task

    # Rebuild the address space from the serialized VMA list.
    pager = source.make_pager(image_meta) if lazy else None
    for spec in image_meta.vma_specs:
        task.address_space.add_vma(
            spec.num_pages, spec.kind, writable=spec.writable,
            pager=pager, start_vpn=spec.start_vpn)

    # Execution state: registers, namespaces, file descriptors.
    task.registers = image_meta.registers.clone()
    task.namespaces = image_meta.namespaces.clone()
    for fd_spec in image_meta.fd_specs:
        task.fd_table[fd_spec.fd] = fd_spec.clone()
        if fd_spec.kind == "socket":
            yield env.timeout(params.SOCKET_RESTORE_LATENCY)

    if not lazy:
        yield from source.fetch_all_pages(image_meta)
        kernel = task.kernel
        for vpn, content in image_meta.pages.items():
            pte = task.address_space.page_table.ensure(vpn)
            vma = task.address_space.find_vma(vpn)
            pte.map_frame(kernel.frames.alloc(content=content),
                          writable=vma.writable if vma is not None else True)

    # The restored process links the CRIU binary (§6.1 memory comparison).
    container.extra_overhead_bytes += params.CRIU_RUNTIME_OVERHEAD_BYTES
    container.mark_running()
    return container
