"""Checkpoint images: the serialized container state C/R moves around."""

from .. import params


#: Fixed serialized metadata (inventory, core, mm, pagemap headers, ...).
IMAGE_METADATA_BASE_BYTES = 128 * params.KB
IMAGE_METADATA_PER_VMA_BYTES = 512


class VmaSpec:
    """Serialized form of one VMA (enough to rebuild it at restore)."""

    __slots__ = ("start_vpn", "num_pages", "kind", "writable")

    def __init__(self, start_vpn, num_pages, kind, writable):
        self.start_vpn = start_vpn
        self.num_pages = num_pages
        self.kind = kind
        self.writable = writable

    @classmethod
    def of(cls, vma):
        """Serialize a live VMA into a spec."""
        return cls(vma.start_vpn, vma.num_pages, vma.kind, vma.writable)


class CheckpointImage:
    """A well-formed image file set produced by checkpointing a container."""

    def __init__(self, name, container_image, vma_specs, registers,
                 fd_specs, namespaces, pages, file_extra_bytes=0):
        self.name = name
        self.container_image = container_image
        self.vma_specs = vma_specs
        self.registers = registers
        self.fd_specs = fd_specs
        self.namespaces = namespaces
        #: vpn -> content snapshot taken at checkpoint time.
        self.pages = pages
        self.file_extra_bytes = file_extra_bytes

    @property
    def metadata_bytes(self):
        """Serialized non-page metadata size."""
        return (IMAGE_METADATA_BASE_BYTES
                + IMAGE_METADATA_PER_VMA_BYTES * len(self.vma_specs))

    @property
    def pages_bytes(self):
        """Serialized memory-pages size."""
        return len(self.pages) * params.PAGE_SIZE

    @property
    def total_bytes(self):
        """Full on-disk image size — what a copy/DFS transfer must move."""
        return self.metadata_bytes + self.pages_bytes + self.file_extra_bytes

    def __repr__(self):
        return "<CheckpointImage %s %.1fMB (%d pages)>" % (
            self.name, self.total_bytes / params.MB, len(self.pages))
