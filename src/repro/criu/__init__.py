"""CRIU-like checkpoint/restore: the remote warm-start baseline (§2.4).

Includes the paper's optimizations to the baseline: SOCK lean
containerization and Replayable-Execution-style on-demand restore.
"""

from .checkpoint import TmpfsStore, checkpoint
from .images import CheckpointImage, VmaSpec
from .restore import restore
from .sources import (
    DfsPager,
    DfsSource,
    LocalTmpfsSource,
    RcopySource,
    TmpfsPager,
)

__all__ = [
    "CheckpointImage",
    "DfsPager",
    "DfsSource",
    "LocalTmpfsSource",
    "RcopySource",
    "TmpfsPager",
    "TmpfsStore",
    "VmaSpec",
    "checkpoint",
    "restore",
]
