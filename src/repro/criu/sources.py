"""Image sources: where a restore reads its checkpoint image from.

Three sources reproduce the paper's three C/R deployments (Fig. 3):

* :class:`LocalTmpfsSource` — image pre-deployed on the restoring machine
  ("CRIU-tmpfs", the resource-hungry optimum);
* :class:`RcopySource` — image on the origin machine; copy the files over
  RDMA first (the "file copy cost" of §2.4 Issue#1);
* :class:`DfsSource` — image in the Ceph-like DFS ("CRIU-remote").

Each source also builds the lazy *pager* used by on-demand restore [68].
"""

from .. import params


class TmpfsPager:
    """Lazy page-in from a local tmpfs image (userfaultfd-style)."""

    def __init__(self, env, image):
        self.env = env
        self.image = image

    def fetch(self, task, vma, vpn):
        """Page in one lazily-restored page from local tmpfs. Generator."""
        yield self.env.timeout(params.CRIU_LAZY_PAGE_LATENCY)
        return self.image.pages.get(vpn, "zero-from-image")


class DfsPager:
    """Lazy page-in through the DFS — per-page software overhead applies."""

    def __init__(self, env, dfs, image, machine):
        self.env = env
        self.dfs = dfs
        self.image = image
        self.machine = machine

    def fetch(self, task, vma, vpn):
        """Page in one lazily-restored page through the DFS. Generator."""
        yield from self.dfs.page_in(self.machine, self.image.name)
        return self.image.pages.get(vpn, "zero-from-image")


class LocalTmpfsSource:
    """Image already resides in the restoring machine's tmpfs."""

    def __init__(self, env, tmpfs, dest_machine):
        self.env = env
        self.tmpfs = tmpfs
        self.dest_machine = dest_machine

    def fetch_metadata(self, name):
        """Parse image metadata from local tmpfs. Generator -> image."""
        image = self.tmpfs.get(name)
        yield self.env.timeout(params.transfer_time(
            image.metadata_bytes, params.CRIU_PARSE_BANDWIDTH))
        return image

    def fetch_all_pages(self, image):
        """Load + parse every page file from tmpfs (vanilla restore). Generator."""
        yield self.env.timeout(params.transfer_time(
            image.pages_bytes + image.file_extra_bytes,
            params.CRIU_PARSE_BANDWIDTH))

    def make_pager(self, image):
        """A lazy pager reading this image from tmpfs."""
        return TmpfsPager(self.env, image)


class RcopySource:
    """Image on the origin machine's tmpfs; copy files over RDMA first."""

    def __init__(self, env, fabric, origin_tmpfs, dest_machine):
        self.env = env
        self.fabric = fabric
        self.origin_tmpfs = origin_tmpfs
        self.dest_machine = dest_machine
        self._copied = set()

    def fetch_metadata(self, name):
        """Copy the image file-set over the wire (once), then parse metadata. Generator."""
        image = self.origin_tmpfs.get(name)
        if name not in self._copied:
            # The whole file set crosses the wire before restore can begin.
            # The link carries it at line rate, but end-to-end goodput is
            # bounded by the file-copy pipeline (per-file opens, tmpfs
            # reads, destination writes) — §2.4 Issue#1.
            origin_nic = self.fabric.nic_of(self.origin_tmpfs.machine)
            yield from self.fabric.stream(origin_nic, image.total_bytes,
                                          dst_machine=self.dest_machine)
            pipeline_extra = params.transfer_time(
                image.total_bytes, params.RCOPY_BANDWIDTH
            ) - params.transfer_time(image.total_bytes, params.RDMA_BANDWIDTH)
            if pipeline_extra > 0:
                yield self.env.timeout(pipeline_extra)
            yield self.env.timeout(
                params.RDMA_READ_LATENCY + self.fabric.wire_latency(
                    self.origin_tmpfs.machine, self.dest_machine))
            self._copied.add(name)
        yield self.env.timeout(params.transfer_time(
            image.metadata_bytes, params.CRIU_PARSE_BANDWIDTH))
        return image

    def fetch_all_pages(self, image):
        """Parse every page file from the now-local copy. Generator."""
        yield self.env.timeout(params.transfer_time(
            image.pages_bytes + image.file_extra_bytes,
            params.CRIU_PARSE_BANDWIDTH))

    def make_pager(self, image):
        # After the copy the files are local, so lazy loads are tmpfs-speed.
        """A lazy pager over the copied (local) files."""
        return TmpfsPager(self.env, image)


class DfsSource:
    """Image stored in the shared DFS; no per-machine provisioning."""

    def __init__(self, env, dfs, dest_machine):
        self.env = env
        self.dfs = dfs
        self.dest_machine = dest_machine

    #: A CRIU image is a *set* of files (inventory, core, mm, pagemap,
    #: fdinfo, ...); each costs a metadata round trip through the DFS,
    #: which is why DFS restore runs 1.15-1.2x slower (Fig. 2 d,e).
    IMAGE_FILE_COUNT = 12

    def fetch_metadata(self, name):
        """Open + read the image's metadata files through the DFS. Generator."""
        image = self.dfs.payload(name)
        for _ in range(self.IMAGE_FILE_COUNT - 1):
            yield self.env.timeout(params.DFS_METADATA_LATENCY
                                   + 2 * params.DFS_REQUEST_OVERHEAD)
        yield from self.dfs.get_range(self.dest_machine, name,
                                      image.metadata_bytes)
        yield self.env.timeout(params.transfer_time(
            image.metadata_bytes, params.CRIU_PARSE_BANDWIDTH))
        return image

    def fetch_all_pages(self, image):
        """Read the whole object from the DFS and parse it. Generator."""
        yield from self.dfs.get(self.dest_machine, image.name)
        yield self.env.timeout(params.transfer_time(
            image.pages_bytes + image.file_extra_bytes,
            params.CRIU_PARSE_BANDWIDTH))

    def make_pager(self, image):
        """A lazy pager that page_in()s through the DFS."""
        return DfsPager(self.env, self.dfs, image, self.dest_machine)
