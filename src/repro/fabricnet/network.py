"""DCQCN-flavored per-flow pacing and the shared-fabric transfer path.

``FabricNetwork.transfer`` is what ``RdmaFabric.stream`` defers to when
the layer is armed: the sender paces at its flow's current rate, the
bytes are charged against every link on the Clos path, and overflow is
handled the way lossy RoCE handles it — tail drop, a go-back-N
retransmission penalty, bounded retries.  ECN marks on the path feed
the flow's DCQCN state (``alpha`` up, rate cut multiplicatively);
elapsed quiet time recovers the rate additively toward line rate.
"""

from .. import params
from ..metrics import CounterSet
from ..rdma.errors import ConnectionError_
from .topology import ClosFabricTopology


class FabricFlow:  # reprolint: owner=cluster
    """DCQCN rate state for one (src machine, dst machine) flow."""

    def __init__(self, key, line_rate):
        self.key = key
        self.line_rate = line_rate
        #: Current pacing rate, bytes/us; audit invariant:
        #: ``FABRIC_MIN_FLOW_RATE <= rate <= line_rate``.
        self.rate = line_rate
        #: DCQCN congestion estimate in [0, 1]; starts at 1 (the spec's
        #: init) so the first CNP halves the rate instead of shaving it.
        self.alpha = 1.0
        self.last_update = 0.0
        #: Fluid pacer: a FIFO of reserved bytes drained at ``rate``.
        #: Transfers reserve a byte position and sleep until their bytes
        #: drain, re-checking on wake — so a mid-wave rate cut slows
        #: bytes already queued behind the limiter, the way a NIC's
        #: packet pacer does.
        self.pacer_enqueued = 0.0
        self.pacer_released = 0.0
        self._pacer_at = 0.0
        self.marks = 0
        self.bytes_sent = 0

    def observe(self, now):
        """Lazy additive recovery: whole quiet periods since the last
        use raise the rate toward line rate and decay ``alpha`` —
        DCQCN's rate-increase timer without a background process."""
        elapsed = now - self.last_update
        if elapsed <= 0:
            return
        steps = int(elapsed / params.FABRIC_DCQCN_RECOVERY_PERIOD)
        if steps <= 0:
            return
        self._drain(now)
        self.last_update += steps * params.FABRIC_DCQCN_RECOVERY_PERIOD
        if self.rate < self.line_rate:
            self.rate = min(
                self.line_rate,
                self.rate + steps * params.FABRIC_DCQCN_RECOVERY_STEP)
        self.alpha *= (1.0 - params.FABRIC_DCQCN_G) ** steps

    def mark(self, now):
        """One congestion notification: raise ``alpha``, cut the rate.

        Drains the pacer at the old rate up to ``now`` first, so bytes
        already queued behind the limiter are paced at the new rate
        from this instant on — the way a NIC's packet pacer reacts to
        a CNP mid-burst.
        """
        self._drain(now)
        g = params.FABRIC_DCQCN_G
        self.alpha = (1.0 - g) * self.alpha + g
        self.rate *= (1.0 - self.alpha / 2.0)
        if self.rate < params.FABRIC_MIN_FLOW_RATE:
            self.rate = params.FABRIC_MIN_FLOW_RATE
        self.marks += 1

    def _drain(self, now):
        """Advance the pacer's released-byte counter to ``now`` at the
        current rate (piecewise-linear: callers drain before every rate
        change or query)."""
        elapsed = now - self._pacer_at
        if elapsed > 0:
            self.pacer_released = min(
                self.pacer_enqueued,
                self.pacer_released + elapsed * self.rate)
            self._pacer_at = now

    def reserve(self, now, nbytes):
        """FIFO-reserve ``nbytes`` on the pacer; returns the byte
        position the caller's transfer starts at (for :meth:`ready_in`)."""
        self._drain(now)
        position = self.pacer_enqueued
        self.pacer_enqueued += nbytes
        return position

    def ready_in(self, now, position, nbytes):
        """Time until a reservation's bytes have paced out, beyond the
        line-rate serialization the link itself will charge.  Zero for
        an unmarked flow with an idle pacer; recheck on wake — the rate
        (and so the remaining wait) may have dropped mid-sleep.
        """
        self._drain(now)
        outstanding = position + nbytes - self.pacer_released
        if outstanding <= 0:
            return 0.0
        wait = outstanding / self.rate - nbytes / self.line_rate
        # Sub-nanosecond residues are fp noise; at late sim times they
        # are below double epsilon of `now`, so sleeping on them would
        # never advance the clock (and never drain the pacer).
        if wait < 1e-3:
            return 0.0
        return wait


class FabricNetwork:  # reprolint: owner=cluster
    """Front-end the RDMA layer charges transfers against when armed.

    ``mode`` selects the story the incast rig contrasts: ``"flat"``
    keeps the shared links and queue caps but no congestion control
    (drops breed retransmit storms); ``"dcqcn"`` adds the per-flow
    rate loop so marking produces backpressure before the caps hit.
    """

    def __init__(self, env, cluster, mode="dcqcn", topology=None):
        if mode not in ("flat", "dcqcn"):
            raise ValueError("unknown fabric mode %r" % (mode,))
        self.env = env
        self.mode = mode
        self.topology = (topology if topology is not None
                         else ClosFabricTopology(cluster))
        self._flows = {}
        self.counters = CounterSet()

    # -- flow state -----------------------------------------------------

    def flow(self, src_machine, dst_machine):
        """The (created-on-first-use) flow state for src -> dst."""
        key = (src_machine.machine_id, dst_machine.machine_id)
        fabric_flow = self._flows.get(key)
        if fabric_flow is None:
            line = self.topology.host_up[src_machine.machine_id].capacity
            fabric_flow = FabricFlow(key, line)
            self._flows[key] = fabric_flow
        return fabric_flow

    def flows(self):
        """Every flow created so far, in a deterministic order."""
        return [self._flows[key] for key in sorted(self._flows)]

    # -- the transfer path ----------------------------------------------

    def transfer(self, src_machine, dst_machine, nbytes, extra_time=0.0):
        """Move ``nbytes`` src -> dst across the shared fabric.

        Generator (runs on the caller's process).  Raises
        :class:`ConnectionError_` when the path stays cut through the
        retry budget; tail drops inside an uncut path never raise —
        they pay go-back-N penalties and force-complete on the last
        attempt, which is what makes the flat-mode incast collapse a
        latency story rather than an error story.
        """
        env = self.env
        if nbytes <= 0:
            if extra_time > 0:
                yield env.timeout(extra_time)
            return
        path = self.topology.path(src_machine, dst_machine)
        if not path:
            # Loopback: no shared links, serialization only.
            yield env.timeout(params.transfer_time(
                nbytes, self.topology.host_bandwidth) + extra_time)
            return
        tracer = env.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.start_span(
                "fabric.transfer", src=src_machine.machine_id,
                dst=dst_machine.machine_id, nbytes=nbytes, mode=self.mode)
        try:
            fabric_flow = self.flow(src_machine, dst_machine)
            if self.mode == "dcqcn":
                fabric_flow.observe(env.now)
                position = fabric_flow.reserve(env.now, nbytes)
                paced = False
                while True:
                    wait = fabric_flow.ready_in(env.now, position, nbytes)
                    if wait <= 0:
                        break
                    if not paced:
                        paced = True
                        self.counters.incr("fabric.paced")
                    yield env.timeout(wait)
            attempt = 0
            while True:
                if any(fabric_link.cut for fabric_link in path):
                    if attempt >= params.FABRIC_MAX_RETX:
                        raise ConnectionError_(
                            "fabric path m%d->m%d down"
                            % (src_machine.machine_id,
                               dst_machine.machine_id))
                    attempt += 1
                    self.counters.incr("fabric.retransmits")
                    yield env.timeout(params.FABRIC_RETX_PENALTY * attempt)
                    continue
                force = attempt >= params.FABRIC_MAX_RETX
                delay, marked, dropped = self._admit_path(
                    path, nbytes, force)
                if not dropped:
                    break
                # Tail drop: the sender times out, replays, and (in dcqcn
                # mode) treats the loss as the strongest congestion signal.
                self.counters.incr("fabric.drops")
                self.counters.incr("fabric.retransmits")
                if tracer is not None and tracer.enabled:
                    tracer.annotate("fabric_retx",
                                    src=src_machine.machine_id,
                                    dst=dst_machine.machine_id)
                if self.mode == "dcqcn":
                    fabric_flow.mark(env.now)
                attempt += 1
                yield env.timeout(params.FABRIC_RETX_PENALTY * attempt)
            if marked:
                self.counters.incr("fabric.ecn_marks")
                if self.mode == "dcqcn":
                    fabric_flow.mark(env.now)
            self.counters.incr("fabric.transfers")
            completed = False
            try:
                yield env.timeout(delay + extra_time)
                completed = True
            finally:
                # Interrupted mid-flight (e.g. a cancelled hedge leg)
                # counts as dropped so link conservation still balances.
                for fabric_link in path:
                    if completed:
                        fabric_link.deliver(nbytes)
                    else:
                        fabric_link.drop_inflight(nbytes)
                if completed:
                    fabric_flow.bytes_sent += nbytes
        finally:
            if span is not None:
                span.end()

    def _admit_path(self, path, nbytes, force):
        """Charge every link on ``path``; first drop aborts the walk.

        Links upstream of a drop carried the bytes to the drop point,
        so they are credited delivered immediately.  The path delay is
        the slowest link's queue-wait + serialization (the fluid flow
        pipelines across hops) plus per-hop propagation.
        """
        now = self.env.now
        delay = 0.0
        marked = False
        for index, fabric_link in enumerate(path):
            link_delay, link_marked, dropped = fabric_link.admit(
                now, nbytes, force=force)
            if dropped:
                for upstream in path[:index]:
                    upstream.deliver(nbytes)
                return 0.0, False, True
            if link_delay > delay:
                delay = link_delay
            marked = marked or link_marked
        return delay + params.FABRIC_HOP_LATENCY * len(path), marked, False

    # -- congestion queries ----------------------------------------------

    def nic_hot(self, machine_id):
        """True when either host link of ``machine_id`` has a standing
        backlog at or past the hot threshold — the pager's signal to
        defer range fetches and shed prefetch."""
        up, down = self.topology.host_links(machine_id)
        now = self.env.now
        threshold = params.FABRIC_HOT_THRESHOLD_BYTES
        return (up.backlog(now) >= threshold
                or down.backlog(now) >= threshold)

    # -- fault-injection surface (driven by repro.faults) -----------------

    def _scope_links(self, scope):
        kind, ident = scope
        if kind == "host":
            return list(self.topology.host_links(ident))
        if kind == "tor":
            return list(self.topology.rack_links(ident))
        raise ValueError("unknown fabric scope %r" % (scope,))

    def degrade_scope(self, scope, factor):
        """Brown out the links in ``scope`` by ``factor``."""
        for fabric_link in self._scope_links(scope):
            fabric_link.degrade(factor)

    def restore_scope(self, scope, factor):
        """Undo one :meth:`degrade_scope` with the same factor."""
        for fabric_link in self._scope_links(scope):
            fabric_link.restore(factor)

    def cut_scope(self, scope):
        """Cut the links in ``scope`` (cuts may nest)."""
        for fabric_link in self._scope_links(scope):
            fabric_link.cut_link()

    def uncut_scope(self, scope):
        """Undo one :meth:`cut_scope`."""
        for fabric_link in self._scope_links(scope):
            fabric_link.uncut_link()

    def saturate(self, machine_id, backlog_bytes, factor):
        """Seed-NIC saturation storm: an immediate backlog burst plus a
        capacity cut on both host links for the storm window."""
        now = self.env.now
        for fabric_link in self.topology.host_links(machine_id):
            # Degrade first so the injected backlog stands (and drains)
            # at the storm's reduced rate, not the line rate.
            fabric_link.degrade(factor)
            fabric_link.inject_backlog(now, backlog_bytes)

    def unsaturate(self, machine_id, factor):
        """End one :meth:`saturate` storm's capacity cut (the injected
        backlog drains on its own)."""
        for fabric_link in self.topology.host_links(machine_id):
            fabric_link.restore(factor)

    # -- reporting --------------------------------------------------------

    def stats(self):
        """Aggregate link/flow state for rig reports and JSON output."""
        links = self.topology.links()
        flows = self.flows()
        return {
            "mode": self.mode,
            "transfers": self.counters["fabric.transfers"],
            "retransmits": self.counters["fabric.retransmits"],
            "drops": sum(fl.drops for fl in links),
            "ecn_marks": sum(fl.ecn_marks for fl in links),
            "bytes_delivered": sum(fl.bytes_delivered for fl in links),
            "bytes_dropped": sum(fl.bytes_dropped for fl in links),
            "peak_backlog_bytes": max(
                (fl.peak_backlog for fl in links), default=0.0),
            "flows": len(flows),
            "min_flow_rate": min(
                (fw.rate for fw in flows), default=None),
        }
