"""Shared-fabric model: oversubscribed Clos topology + DCQCN pacing.

The seed repo charges every RDMA verb a fixed point-to-point cost
(latency + ``nbytes / RDMA_BANDWIDTH``), which cannot express the
failure mode that actually kills remote fork at scale: thousands of
children pulling pages from a handful of seed hosts melt the seed NIC
and the oversubscribed spine long before per-verb costs matter
(ROADMAP item 4).  This package models that fabric:

* :class:`ClosFabricTopology` — host NIC -> ToR -> spine link graph
  with per-link capacities (ToR uplinks oversubscribed);
* :class:`FabricLink` — fluid-model link: a virtual clock tracks the
  busy horizon, so backlog, serialization and queuing delay fall out
  of arithmetic instead of per-packet events;
* :class:`FabricFlow` — DCQCN-flavored per-(src, dst) rate state:
  ECN marks raise ``alpha`` and cut the rate multiplicatively,
  elapsed time recovers it additively toward line rate;
* :class:`FabricNetwork` — the front-end ``RdmaFabric.stream`` defers
  to when armed: pace at the flow rate, charge every link on the
  path, tail-drop + bounded go-back-N retransmit on overflow.

Gating invariant (same contract as every optional layer): the model is
**off by default** (``RdmaFabric.net is None``) and arming is explicit
(``FnCluster.enable_fabric()`` or ``REPRO_FABRIC=flat|dcqcn``).  With
it off, not one line here runs and the fail-free event sequence is
byte-identical to the seed's.
"""

import os

from .topology import ClosFabricTopology, FabricLink
from .network import FabricFlow, FabricNetwork

#: Accepted ``REPRO_FABRIC`` values and the mode each selects.
FABRIC_MODES = ("flat", "dcqcn")


def default_fabric_mode():
    """The fabric mode ``REPRO_FABRIC`` selects, or ``None`` (off).

    ``flat`` arms topology + queues without congestion control (the
    incast-collapse strawman); ``dcqcn`` (or ``1``) adds the rate
    loop.  Unset / ``0`` / ``off`` keep the layer disarmed.
    """
    raw = os.environ.get("REPRO_FABRIC", "").strip().lower()
    if raw in ("", "0", "off", "none"):
        return None
    if raw == "1":
        return "dcqcn"
    if raw in FABRIC_MODES:
        return raw
    raise ValueError("REPRO_FABRIC=%r (expected one of %s, 0/1)"
                     % (raw, "/".join(FABRIC_MODES)))


__all__ = [
    "ClosFabricTopology",
    "FabricLink",
    "FabricFlow",
    "FabricNetwork",
    "FABRIC_MODES",
    "default_fabric_mode",
]
