"""Clos link graph + fluid-model links with virtual-clock queues.

Each unidirectional link keeps a *busy horizon* (``busy_until``): the
simulated instant its transmit queue drains.  Admitting ``nbytes``
pushes the horizon forward by the serialization time, and the standing
backlog in bytes is just ``(busy_until - now) * rate`` — queuing delay
without modelling packets.  Conservation counters (enqueued =
delivered + dropped) feed the ``audit_fabric`` sanitizer.
"""

from .. import params


class FabricLink:  # reprolint: owner=cluster
    """One unidirectional fabric link (host<->ToR or ToR<->spine)."""

    def __init__(self, name, capacity,
                 ecn_threshold=params.FABRIC_ECN_THRESHOLD_BYTES,
                 max_queue=params.FABRIC_MAX_QUEUE_BYTES):
        if capacity <= 0:
            raise ValueError("link capacity must be positive")
        self.name = name
        #: Line rate, bytes/us; ``rate()`` divides by the degrade factor.
        self.capacity = capacity
        self.ecn_threshold = ecn_threshold
        self.max_queue = max_queue
        #: Capacity divisor while a FabricDegrade / saturation storm is
        #: active; composes multiplicatively across overlapping faults.
        self.degrade_factor = 1.0
        #: Nesting count of active cuts (link down while > 0).
        self.cut = 0
        self.busy_until = 0.0
        # Conservation counters, audited by sanitizers.audit_fabric:
        # every admitted byte is eventually delivered or dropped.
        self.bytes_enqueued = 0
        self.bytes_delivered = 0
        self.bytes_dropped = 0
        self.ecn_marks = 0
        self.drops = 0
        self.peak_backlog = 0.0

    def rate(self):
        """Effective drain rate (bytes/us) under any active degrade."""
        return self.capacity / self.degrade_factor

    def backlog(self, now):
        """Standing queue, in bytes, as of ``now``."""
        if self.busy_until <= now:
            return 0.0
        return (self.busy_until - now) * self.rate()

    def admit(self, now, nbytes, force=False):
        """Charge ``nbytes`` against the link; returns a verdict tuple.

        ``(delay, marked, dropped)``: queue-wait + serialization delay
        until the last byte clears the link, whether the standing
        backlog crossed the ECN threshold, and whether the transfer
        tail-dropped (queue cap exceeded, or link cut).  ``force``
        bypasses the cap — the last go-back-N attempt of a retransmit
        loop, which must terminate.
        """
        fabric_link = self
        fabric_link.bytes_enqueued += nbytes
        if fabric_link.cut:
            fabric_link.bytes_dropped += nbytes
            fabric_link.drops += 1
            return 0.0, False, True
        rate = fabric_link.rate()
        backlog = fabric_link.backlog(now)
        depth = backlog + nbytes
        if depth > fabric_link.max_queue and not force:
            fabric_link.bytes_dropped += nbytes
            fabric_link.drops += 1
            return 0.0, False, True
        start = fabric_link.busy_until
        if start < now:
            start = now
        fabric_link.busy_until = start + nbytes / rate
        if depth > fabric_link.peak_backlog:
            fabric_link.peak_backlog = depth
        marked = depth >= fabric_link.ecn_threshold
        if marked:
            fabric_link.ecn_marks += 1
        return fabric_link.busy_until - now, marked, False

    def deliver(self, nbytes):
        """Credit ``nbytes`` admitted earlier as delivered."""
        self.bytes_delivered += nbytes

    def drop_inflight(self, nbytes):
        """Write off ``nbytes`` admitted earlier (transfer abandoned)."""
        self.bytes_dropped += nbytes

    def inject_backlog(self, now, nbytes):
        """Push the busy horizon as if ``nbytes`` of background traffic
        were queued — the seed-NIC saturation storm's burst."""
        start = self.busy_until
        if start < now:
            start = now
        self.busy_until = start + nbytes / self.rate()
        depth = self.backlog(now)
        if depth > self.peak_backlog:
            self.peak_backlog = depth

    def degrade(self, factor):
        """Divide capacity by ``factor`` (brownouts may nest)."""
        if factor <= 1.0:
            raise ValueError("degrade factor must be > 1")
        self.degrade_factor *= factor

    def restore(self, factor):
        """Undo one :meth:`degrade` with the same factor."""
        self.degrade_factor /= factor
        if self.degrade_factor < 1.0:
            self.degrade_factor = 1.0

    def cut_link(self):
        """Take the link down (cuts may nest)."""
        self.cut += 1

    def uncut_link(self):
        """Undo one :meth:`cut_link`."""
        if self.cut > 0:
            self.cut -= 1

    def __repr__(self):
        return ("FabricLink(%s, cap=%.1f B/us, backlog_peak=%.0f B)"
                % (self.name, self.capacity, self.peak_backlog))


class ClosFabricTopology:  # reprolint: owner=cluster
    """Two-tier Clos: per-host access links, oversubscribed ToR uplinks.

    Every machine gets an up link (host -> ToR) and a down link
    (ToR -> host) at NIC line rate.  Every rack gets an up/down pair
    toward a single spine, sized ``hosts_per_rack * host_bw /
    oversubscription`` — the shared bottleneck cross-rack incast piles
    onto.  Same-rack paths never touch the spine.
    """

    def __init__(self, cluster,
                 host_bandwidth=params.FABRIC_HOST_BANDWIDTH,
                 oversubscription=params.FABRIC_OVERSUBSCRIPTION):
        self.cluster = cluster
        self.host_bandwidth = host_bandwidth
        self.oversubscription = oversubscription
        self.host_up = {}
        self.host_down = {}
        self.rack_of = {}
        racks = {}
        for machine in cluster.machines:
            mid = machine.machine_id
            self.rack_of[mid] = machine.rack
            racks.setdefault(machine.rack, []).append(mid)
            self.host_up[mid] = FabricLink(
                "host-up:m%d" % mid, host_bandwidth)
            self.host_down[mid] = FabricLink(
                "host-down:m%d" % mid, host_bandwidth)
        hosts_per_rack = max(len(members) for members in racks.values())
        tor_capacity = hosts_per_rack * host_bandwidth / oversubscription
        self.tor_up = {}
        self.tor_down = {}
        for rack in sorted(racks):
            self.tor_up[rack] = FabricLink(
                "tor-up:r%d" % rack, tor_capacity)
            self.tor_down[rack] = FabricLink(
                "tor-down:r%d" % rack, tor_capacity)

    def path(self, src_machine, dst_machine):
        """Ordered links a flow src -> dst crosses (empty = loopback)."""
        src = src_machine.machine_id
        dst = dst_machine.machine_id
        if src == dst:
            return []
        if src_machine.rack == dst_machine.rack:
            return [self.host_up[src], self.host_down[dst]]
        return [self.host_up[src],
                self.tor_up[src_machine.rack],
                self.tor_down[dst_machine.rack],
                self.host_down[dst]]

    def host_links(self, machine_id):
        """The (up, down) access-link pair of one machine."""
        return self.host_up[machine_id], self.host_down[machine_id]

    def rack_links(self, rack):
        """The (up, down) spine-facing pair of one rack's ToR."""
        return self.tor_up[rack], self.tor_down[rack]

    def links(self):
        """Every link, in a deterministic order."""
        out = []
        for mid in sorted(self.host_up):
            out.append(self.host_up[mid])
            out.append(self.host_down[mid])
        for rack in sorted(self.tor_up):
            out.append(self.tor_up[rack])
            out.append(self.tor_down[rack])
        return out
